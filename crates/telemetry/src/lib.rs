//! `qos-telemetry`: observability for the management plane itself.
//!
//! The paper's architecture observes *applications* (probes → sensors →
//! coordinator → host/domain manager); this crate observes the
//! *management plane*: how long from QoS violation to diagnosis to
//! recovery, how many rule firings that cost, what the fault layer
//! actually dropped. Two primitives, one handle:
//!
//! - a **metrics registry** ([`Registry`]): named families of labeled
//!   series — counters, gauges, log-bucketed histograms — behind
//!   pre-resolved handles whose probe cost is one relaxed atomic op;
//! - **structured event tracing** ([`TraceEvent`]): lifecycle-stage
//!   events carrying a correlation id minted when a sensor first trips
//!   and propagated through violation reports, inference, adaptation
//!   and recovery, so each violation is one reconstructable causal
//!   chain ([`reconstruct`]) with per-stage latencies and MTTR.
//!
//! Timestamps are plain `u64` microseconds: virtual time in the
//! simulation, wall time in live mode. Exporters ([`export`]) emit
//! JSONL, Chrome `trace_event` JSON and registry-snapshot JSON; the
//! [`record`] module adds a binary **flight recorder** (bounded ring +
//! rotating segment files + tolerant replay) so a run's trace survives
//! the process. The human-readable summary table lives in
//! `qos-core::report` (this crate sits below everything and depends on
//! nothing but the vendored `parking_lot` and the dependency-free
//! `qos-buggify`).
//!
//! # Cost model
//!
//! Guided by Bickson et al.'s low-overhead monitoring constraint and
//! the paper's own §7 budget (~11 µs per instrumented pass), probe
//! sites must be effectively free when observability is off:
//!
//! - **runtime disable**: a default [`Telemetry`] handle is inert — the
//!   inner state is `None`, so every probe is a branch on an `Option`
//!   and metric handles resolve to no-ops;
//! - **compile-time disable**: the `telemetry-off` feature makes every
//!   handle zero-sized and every probe method an empty inlined body, so
//!   the instrumented build is bit-for-bit equivalent to never having
//!   instrumented at all.

mod events;
mod export;
mod lifecycle;
mod metrics;
pub mod record;

pub use events::{Stage, TraceEvent};
pub use export::{metrics_to_json, parse_event, parse_jsonl, to_chrome_trace, to_jsonl};
pub use lifecycle::{reconstruct, stage_latencies, Lifecycle, StageLatencies};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, Registry,
    RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use record::{
    read_recording, read_recording_dir, FlightRecorder, RecError, Record, Recording, SegmentWriter,
    SnapshotRecord,
};

/// Everything a probe site needs.
pub mod prelude {
    pub use crate::{
        metrics_to_json, parse_jsonl, read_recording, read_recording_dir, reconstruct,
        stage_latencies, to_chrome_trace, to_jsonl, Counter, FlightRecorder, Gauge, Histogram,
        Lifecycle, MetricValue, Record, Recording, Registry, SegmentWriter, Stage, Telemetry,
        TraceEvent,
    };
}

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use events::EventBuf;
use parking_lot::Mutex;

/// Default bounded event-buffer capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    registry: Registry,
    events: Mutex<EventBuf>,
    next_corr: AtomicU64,
    /// Attached flight recorder; `has_recorder` is the hot-path gate so
    /// the common (no recorder) case costs one relaxed load.
    recorder: Mutex<Option<FlightRecorder>>,
    has_recorder: AtomicBool,
}

/// The shared telemetry handle: a registry plus a bounded event buffer
/// plus the correlation-id mint. Cloning is cheap (an `Arc`); a
/// [`Telemetry::default`] (or [`Telemetry::disabled`]) handle carries
/// no state and makes every probe a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// An enabled handle with the default event-buffer capacity.
    pub fn enabled() -> Self {
        Telemetry::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` events (oldest
    /// evicted first). With the `telemetry-off` feature this still
    /// returns an inert handle.
    pub fn with_capacity(capacity: usize) -> Self {
        #[cfg(not(feature = "telemetry-off"))]
        {
            Telemetry {
                inner: Some(Arc::new(Inner {
                    enabled: AtomicBool::new(true),
                    registry: Registry::new(),
                    events: Mutex::new(EventBuf::new(capacity)),
                    next_corr: AtomicU64::new(1),
                    recorder: Mutex::new(None),
                    has_recorder: AtomicBool::new(false),
                })),
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = capacity;
            Telemetry { inner: None }
        }
    }

    /// An inert handle: every probe is a no-op.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Is this handle live (constructed enabled, not runtime-paused)?
    pub fn is_enabled(&self) -> bool {
        self.active().is_some()
    }

    /// Pause or resume event emission and correlation minting at run
    /// time. Metric handles already resolved keep their cells; new
    /// events and correlation ids stop flowing while paused.
    pub fn set_enabled(&self, on: bool) {
        if let Some(i) = &self.inner {
            i.enabled.store(on, Ordering::Relaxed);
        }
    }

    #[inline]
    fn active(&self) -> Option<&Inner> {
        match &self.inner {
            Some(i) if i.enabled.load(Ordering::Relaxed) => Some(i),
            _ => None,
        }
    }

    /// Mint a fresh correlation id (0 when disabled — 0 means "not part
    /// of a lifecycle" everywhere downstream).
    pub fn next_corr(&self) -> u64 {
        match self.active() {
            Some(i) => i.next_corr.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Resolve a counter handle (no-op when disabled).
    pub fn counter(&self, family: &str, label: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(family, label),
            None => Counter::noop(),
        }
    }

    /// Resolve a gauge handle (no-op when disabled).
    pub fn gauge(&self, family: &str, label: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(family, label),
            None => Gauge::noop(),
        }
    }

    /// Resolve a histogram handle (no-op when disabled).
    pub fn histogram(&self, family: &str, label: &str) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(family, label),
            None => Histogram::noop(),
        }
    }

    /// Emit one structured event. The closure style keeps disabled
    /// probe sites free: arguments are only built when a live handle
    /// will store them.
    #[inline]
    pub fn event(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(i) = self.active() {
            let ev = make();
            if i.has_recorder.load(Ordering::Relaxed) {
                if let Some(rec) = &*i.recorder.lock() {
                    rec.record_event(&ev);
                }
            }
            i.events.lock().push(ev);
        }
    }

    /// Attach (or detach, with `None`) a flight recorder: every event
    /// emitted through this handle is also encoded into the recorder's
    /// ring (and its segment files, if it writes through). Under
    /// `telemetry-off` this is a no-op — the hook compiles out with the
    /// rest of the probe path.
    pub fn set_recorder(&self, rec: Option<FlightRecorder>) {
        if let Some(i) = &self.inner {
            i.has_recorder.store(rec.is_some(), Ordering::Relaxed);
            *i.recorder.lock() = rec;
        }
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<FlightRecorder> {
        self.inner.as_ref().and_then(|i| i.recorder.lock().clone())
    }

    /// Record the current registry snapshot into the attached flight
    /// recorder (no-op without one).
    pub fn record_metrics(&self, at_us: u64) {
        if let Some(i) = self.active() {
            if i.has_recorder.load(Ordering::Relaxed) {
                if let Some(rec) = &*i.recorder.lock() {
                    rec.record_snapshot(at_us, &i.registry.snapshot());
                }
            }
        }
    }

    /// Convenience: emit a lifecycle-stage event.
    #[inline]
    pub fn stage(
        &self,
        at_us: u64,
        corr: u64,
        stage: Stage,
        component: &str,
        name: &str,
        fields: impl FnOnce() -> Vec<(String, f64)>,
    ) {
        self.event(|| TraceEvent {
            at_us,
            corr,
            stage,
            component: component.to_string(),
            name: name.to_string(),
            fields: fields(),
        });
    }

    /// Copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(i) => i.events.lock().events(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the bounded buffer so far.
    pub fn events_dropped(&self) -> u64 {
        match &self.inner {
            Some(i) => i.events.lock().dropped(),
            None => 0,
        }
    }

    /// Deterministically ordered snapshot of every metric series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => Vec::new(),
        }
    }

    /// Current value of a counter series (0 when absent/disabled) —
    /// the assertion-side accessor used by tests.
    pub fn counter_value(&self, family: &str, label: &str) -> u64 {
        self.snapshot()
            .iter()
            .find(|m| m.family == family && m.label == label)
            .map_or(0, |m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
    }

    /// Current value of a gauge series (0.0 when absent/disabled).
    pub fn gauge_value(&self, family: &str, label: &str) -> f64 {
        self.snapshot()
            .iter()
            .find(|m| m.family == family && m.label == label)
            .map_or(0.0, |m| match &m.value {
                MetricValue::Gauge(v) => *v,
                _ => 0.0,
            })
    }

    /// Reconstruct violation lifecycles from the buffered events.
    pub fn lifecycles(&self) -> Vec<Lifecycle> {
        reconstruct(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.next_corr(), 0);
        t.counter("a", "b").inc();
        t.event(|| unreachable!("disabled handle must not build events"));
        assert!(t.events().is_empty());
        assert!(t.snapshot().is_empty());
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn enabled_handle_collects() {
        let t = Telemetry::enabled();
        assert!(t.is_enabled());
        let c1 = t.next_corr();
        let c2 = t.next_corr();
        assert!(c1 >= 1 && c2 == c1 + 1, "monotone correlation ids");
        t.counter("hm.violations", "h0").add(2);
        t.stage(10, c1, Stage::Detect, "client-0", "example1", || {
            vec![("fps".into(), 19.0)]
        });
        assert_eq!(t.counter_value("hm.violations", "h0"), 2);
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].corr, c1);
        assert_eq!(evs[0].field("fps"), Some(19.0));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn runtime_pause_stops_events_and_corr() {
        let t = Telemetry::enabled();
        t.set_enabled(false);
        assert!(!t.is_enabled());
        assert_eq!(t.next_corr(), 0);
        t.event(|| unreachable!("paused handle must not build events"));
        t.set_enabled(true);
        assert!(t.next_corr() >= 1);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("c", "").inc();
        u.counter("c", "").inc();
        assert_eq!(t.counter_value("c", ""), 2);
        u.stage(1, 1, Stage::Mark, "x", "y", Vec::new);
        assert_eq!(t.events().len(), 1);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn attached_recorder_mirrors_events_and_metrics() {
        let t = Telemetry::enabled();
        let rec = FlightRecorder::new(record::DEFAULT_RING_BYTES);
        t.set_recorder(Some(rec.clone()));
        t.counter("hm.violations", "h0").add(3);
        t.stage(10, 1, Stage::Detect, "client-0", "example1", || {
            vec![("fps".into(), 19.0)]
        });
        t.record_metrics(20);
        assert_eq!(rec.records(), 2, "one event + one snapshot");
        let recs = rec.ring_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0],
            Record::Event(t.events().remove(0)),
            "recorded event is bit-identical to the buffered one"
        );
        match &recs[1] {
            Record::Snapshot(s) => {
                assert_eq!(s.at_us, 20);
                assert_eq!(s.metrics, t.snapshot());
            }
            other => panic!("expected snapshot record, got {other:?}"),
        }
        t.set_recorder(None);
        t.stage(30, 2, Stage::Mark, "x", "y", Vec::new);
        assert_eq!(rec.records(), 2, "detached recorder sees nothing");
        assert!(t.recorder().is_none());
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn feature_off_makes_enabled_inert() {
        let t = Telemetry::enabled();
        assert!(!t.is_enabled());
        assert_eq!(t.next_corr(), 0);
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn check<T: Send + Sync + Clone>() {}
        check::<Telemetry>();
        check::<Counter>();
        check::<Gauge>();
        check::<Histogram>();
    }
}
