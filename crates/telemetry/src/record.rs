//! Flight recorder: durable binary telemetry records.
//!
//! In-process telemetry dies with the process; the flight recorder
//! makes a run's trace durable and replayable. Every record is a
//! length-prefixed binary frame mirroring the `qos-wire` framing
//! discipline (magic + version + kind + `u32` LE length), so the same
//! reader tolerance rules apply: a torn tail is a clean truncation, a
//! corrupt byte is a typed error, and nothing ever panics on untrusted
//! bytes.
//!
//! Three layers:
//!
//! - the **record codec** ([`encode_event`], [`encode_snapshot`],
//!   [`decode_record`], [`decode_records`], [`scan_records`]): one
//!   [`TraceEvent`] or one timestamped registry snapshot per record;
//! - the **[`FlightRecorder`]**: a bounded, byte-budgeted drop-oldest
//!   ring of encoded records (lock-light: encode outside the lock, one
//!   short mutex hold per record), optionally write-through to a
//!   rotating [`SegmentWriter`] (`<prefix>-NNNNNN.qrec` segments,
//!   oldest deleted beyond a retention cap);
//! - the **reader** ([`Recording`], [`read_recording`],
//!   [`read_recording_dir`]): replays a recording back into
//!   [`TraceEvent`]s, lifecycle chains and metrics snapshots,
//!   recovering everything before a torn tail or corrupt byte.
//!
//! The `rec.write.tear` buggify point simulates a crash mid-append: the
//! segment keeps a half-written record and writing resumes on a fresh
//! segment, exactly what a restart would leave on disk.

use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::events::{Stage, TraceEvent};
use crate::lifecycle::{reconstruct, Lifecycle};
use crate::metrics::{
    HistogramSnapshot, MetricSnapshot, MetricValue, RegistrySnapshot, HISTOGRAM_BUCKETS,
};

/// Recording magic: `"QR"` (the wire protocol uses `"QW"`).
pub const REC_MAGIC: [u8; 2] = [0x51, 0x52];
/// Recording format version.
pub const REC_VERSION: u8 = 1;
/// Fixed header: magic (2) + version (1) + kind (1) + length (4).
pub const REC_HEADER_LEN: usize = 8;
/// Upper bound on one record's payload, mirroring `MAX_FRAME_LEN`.
pub const MAX_RECORD_LEN: u32 = 1 << 20;
/// File extension of recording segments.
pub const SEGMENT_EXT: &str = "qrec";
/// Default ring budget: 8 MiB of encoded records.
pub const DEFAULT_RING_BYTES: usize = 8 << 20;

const KIND_EVENT: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;

/// Typed decode error. Decoders return these for any byte sequence;
/// they never panic. [`RecError::Truncated`] specifically means "the
/// buffer ends mid-record" — a torn tail — and is what the tolerant
/// readers treat as clean truncation; every other variant is
/// corruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecError {
    /// The buffer ends before the record does.
    Truncated {
        /// Bytes needed to finish the record.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// First two bytes are not `"QR"`.
    BadMagic([u8; 2]),
    /// Version byte this reader does not speak.
    UnsupportedVersion(u8),
    /// Kind byte outside the known record kinds.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_RECORD_LEN`].
    RecordTooLarge(u32),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A payload field is structurally invalid (overrun, bad tag, ...).
    BadValue(&'static str),
    /// The payload is longer than its record's content.
    TrailingBytes(usize),
}

impl std::fmt::Display for RecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecError::Truncated { needed, have } => {
                write!(f, "truncated record: need {needed} bytes, have {have}")
            }
            RecError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            RecError::UnsupportedVersion(v) => write!(f, "unsupported recording version {v}"),
            RecError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            RecError::RecordTooLarge(n) => write!(f, "record payload {n} exceeds maximum"),
            RecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            RecError::BadValue(what) => write!(f, "bad value: {what}"),
            RecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record payload"),
        }
    }
}

impl std::error::Error for RecError {}

/// One decoded record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A single trace event.
    Event(TraceEvent),
    /// A timestamped metrics-registry snapshot.
    Snapshot(SnapshotRecord),
}

/// A registry snapshot with the time it was taken.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotRecord {
    /// Timestamp, µs (same clock as the surrounding trace events).
    pub at_us: u64,
    /// Every series at that instant, (family, label)-ordered.
    pub metrics: RegistrySnapshot,
}

// ---------------------------------------------------------------- codec

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct RecReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        RecReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecError> {
        if self.remaining() < n {
            return Err(RecError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, RecError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, RecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64, RecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_f64(&mut self) -> Result<f64, RecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn get_str(&mut self) -> Result<String, RecError> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RecError::BadUtf8)
    }
}

fn frame_into(out: &mut Vec<u8>, kind: u8, body: impl FnOnce(&mut Vec<u8>)) {
    debug_assert!(out.is_empty(), "frame_into wants a cleared buffer");
    out.reserve(96);
    out.extend_from_slice(&REC_MAGIC);
    out.push(REC_VERSION);
    out.push(kind);
    out.extend_from_slice(&[0; 4]);
    body(out);
    let len = (out.len() - REC_HEADER_LEN) as u32;
    out[4..8].copy_from_slice(&len.to_le_bytes());
}

fn frame(kind: u8, body: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    frame_into(&mut out, kind, body);
    out
}

/// Encode one trace event as a framed record.
pub fn encode_event(ev: &TraceEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    encode_event_into(ev, &mut out);
    out
}

/// Encode one trace event into a cleared buffer (the hot-path variant:
/// callers recycle `out`'s capacity).
fn encode_event_into(ev: &TraceEvent, out: &mut Vec<u8>) {
    frame_into(out, KIND_EVENT, |out| {
        put_u64(out, ev.at_us);
        put_u64(out, ev.corr);
        out.push(ev.stage.tag());
        put_str(out, &ev.component);
        put_str(out, &ev.name);
        put_u32(out, ev.fields.len() as u32);
        for (k, v) in &ev.fields {
            put_str(out, k);
            put_u64(out, v.to_bits());
        }
    })
}

/// Encode one registry snapshot as a framed record. Histograms are
/// stored sparsely: only non-zero buckets, as (index, count) pairs.
pub fn encode_snapshot(at_us: u64, metrics: &[MetricSnapshot]) -> Vec<u8> {
    frame(KIND_SNAPSHOT, |out| {
        put_u64(out, at_us);
        put_u32(out, metrics.len() as u32);
        for m in metrics {
            put_str(out, &m.family);
            put_str(out, &m.label);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push(0);
                    put_u64(out, *v);
                }
                MetricValue::Gauge(v) => {
                    out.push(1);
                    put_u64(out, v.to_bits());
                }
                MetricValue::Histogram(h) => {
                    out.push(2);
                    put_u64(out, h.count);
                    put_u64(out, h.sum);
                    put_u64(out, h.max);
                    let nonzero: Vec<(usize, u64)> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c != 0)
                        .map(|(i, &c)| (i, c))
                        .collect();
                    put_u32(out, nonzero.len() as u32);
                    for (i, c) in nonzero {
                        put_u32(out, i as u32);
                        put_u64(out, c);
                    }
                }
            }
        }
    })
}

fn decode_event(r: &mut RecReader<'_>) -> Result<TraceEvent, RecError> {
    let at_us = r.get_u64()?;
    let corr = r.get_u64()?;
    let stage = Stage::from_tag(r.get_u8()?).ok_or(RecError::BadValue("stage tag"))?;
    let component = r.get_str()?;
    let name = r.get_str()?;
    let n = r.get_u32()? as usize;
    // A field is at least 12 bytes; cap preallocation by what's left.
    let mut fields = Vec::with_capacity(n.min(r.remaining() / 12));
    for _ in 0..n {
        let k = r.get_str()?;
        let v = r.get_f64()?;
        fields.push((k, v));
    }
    Ok(TraceEvent {
        at_us,
        corr,
        stage,
        component,
        name,
        fields,
    })
}

fn decode_snapshot(r: &mut RecReader<'_>) -> Result<SnapshotRecord, RecError> {
    let at_us = r.get_u64()?;
    let n = r.get_u32()? as usize;
    // A series is at least 9 bytes; cap preallocation by what's left.
    let mut metrics = Vec::with_capacity(n.min(r.remaining() / 9));
    for _ in 0..n {
        let family = r.get_str()?;
        let label = r.get_str()?;
        let value = match r.get_u8()? {
            0 => MetricValue::Counter(r.get_u64()?),
            1 => MetricValue::Gauge(r.get_f64()?),
            2 => {
                let mut h = HistogramSnapshot::empty();
                h.count = r.get_u64()?;
                h.sum = r.get_u64()?;
                h.max = r.get_u64()?;
                let k = r.get_u32()? as usize;
                if k > HISTOGRAM_BUCKETS {
                    return Err(RecError::BadValue("histogram bucket count"));
                }
                for _ in 0..k {
                    let ix = r.get_u32()? as usize;
                    if ix >= HISTOGRAM_BUCKETS {
                        return Err(RecError::BadValue("histogram bucket index"));
                    }
                    h.buckets[ix] = r.get_u64()?;
                }
                MetricValue::Histogram(Box::new(h))
            }
            _ => return Err(RecError::BadValue("metric value tag")),
        };
        metrics.push(MetricSnapshot {
            family,
            label,
            value,
        });
    }
    Ok(SnapshotRecord { at_us, metrics })
}

/// Decode the record at the start of `buf`. Returns the record and the
/// total bytes consumed (header + payload). [`RecError::Truncated`] is
/// returned only when the *buffer* ends mid-record; a payload whose
/// inner fields overrun its declared length is [`RecError::BadValue`]
/// (corruption, not a torn tail).
pub fn decode_record(buf: &[u8]) -> Result<(Record, usize), RecError> {
    if buf.len() < REC_HEADER_LEN {
        return Err(RecError::Truncated {
            needed: REC_HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf[0..2] != REC_MAGIC {
        return Err(RecError::BadMagic([buf[0], buf[1]]));
    }
    if buf[2] != REC_VERSION {
        return Err(RecError::UnsupportedVersion(buf[2]));
    }
    let kind = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Err(RecError::RecordTooLarge(len));
    }
    let total = REC_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(RecError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let mut r = RecReader::new(&buf[REC_HEADER_LEN..total]);
    let overrun = |e| match e {
        RecError::Truncated { .. } => RecError::BadValue("payload overruns record length"),
        other => other,
    };
    let rec = match kind {
        KIND_EVENT => Record::Event(decode_event(&mut r).map_err(overrun)?),
        KIND_SNAPSHOT => Record::Snapshot(decode_snapshot(&mut r).map_err(overrun)?),
        k => return Err(RecError::UnknownKind(k)),
    };
    if r.remaining() != 0 {
        return Err(RecError::TrailingBytes(r.remaining()));
    }
    Ok((rec, total))
}

/// Strictly decode a whole buffer of concatenated records; any torn
/// tail or corruption is an error.
pub fn decode_records(buf: &[u8]) -> Result<Vec<Record>, RecError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let (rec, n) = decode_record(&buf[pos..])?;
        out.push(rec);
        pos += n;
    }
    Ok(out)
}

/// Result of a tolerant [`scan_records`] pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Scan {
    /// Records decoded before the buffer ended (or went bad).
    pub records: Vec<Record>,
    /// Bytes consumed by those records.
    pub consumed: usize,
    /// The buffer ended mid-record (a torn tail — expected after a
    /// crash mid-append).
    pub truncated: bool,
    /// Decoding stopped on corruption (anything other than a torn
    /// tail); the typed error that stopped it.
    pub corrupt: Option<RecError>,
}

/// Tolerantly decode a buffer: everything before the first torn tail
/// or corrupt byte is recovered. Never panics, never errors.
pub fn scan_records(buf: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0;
    let (mut truncated, mut corrupt) = (false, None);
    while pos < buf.len() {
        match decode_record(&buf[pos..]) {
            Ok((rec, n)) => {
                records.push(rec);
                pos += n;
            }
            Err(RecError::Truncated { .. }) => {
                truncated = true;
                break;
            }
            Err(e) => {
                corrupt = Some(e);
                break;
            }
        }
    }
    Scan {
        records,
        consumed: pos,
        truncated,
        corrupt,
    }
}

// ------------------------------------------------------------- recorder

#[derive(Debug)]
struct Ring {
    buf: VecDeque<Vec<u8>>,
    bytes: usize,
    max_bytes: usize,
    dropped: u64,
    /// Records ever pushed (kept under the ring lock so the hot path
    /// pays no extra atomic).
    total: u64,
    /// Capacity recycled from the last eviction: in steady state
    /// (ring full) each push reuses the evicted record's allocation
    /// instead of paying an alloc/free pair per event.
    spare: Vec<u8>,
}

impl Ring {
    fn push(&mut self, rec: Vec<u8>) {
        self.total += 1;
        while !self.buf.is_empty() && self.bytes + rec.len() > self.max_bytes {
            let old = self.buf.pop_front().expect("non-empty ring");
            self.bytes -= old.len();
            self.dropped += 1;
            if old.capacity() > self.spare.capacity() {
                self.spare = old;
            }
        }
        self.bytes += rec.len();
        self.buf.push_back(rec);
    }

    fn take_spare(&mut self) -> Vec<u8> {
        let mut spare = std::mem::take(&mut self.spare);
        spare.clear();
        spare
    }
}

#[derive(Debug)]
struct RecorderInner {
    ring: Mutex<Ring>,
    writer: Mutex<Option<SegmentWriter>>,
    has_writer: AtomicBool,
    write_errors: AtomicU64,
}

/// The flight recorder: a byte-budgeted drop-oldest ring of encoded
/// records, optionally write-through to a rotating [`SegmentWriter`].
/// Cloning shares the recorder (an `Arc`); encoding happens outside
/// the lock so the per-record critical section is a deque push.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// A ring-only recorder retaining at most `max_ring_bytes` of
    /// encoded records (oldest evicted first).
    pub fn new(max_ring_bytes: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                ring: Mutex::new(Ring {
                    buf: VecDeque::new(),
                    bytes: 0,
                    max_bytes: max_ring_bytes.max(REC_HEADER_LEN),
                    dropped: 0,
                    total: 0,
                    spare: Vec::new(),
                }),
                writer: Mutex::new(None),
                has_writer: AtomicBool::new(false),
                write_errors: AtomicU64::new(0),
            }),
        }
    }

    /// A recorder that also writes every record through to rotating
    /// segment files.
    pub fn with_writer(max_ring_bytes: usize, writer: SegmentWriter) -> Self {
        let rec = FlightRecorder::new(max_ring_bytes);
        *rec.inner.writer.lock() = Some(writer);
        rec.inner.has_writer.store(true, Ordering::Relaxed);
        rec
    }

    fn push(&self, encoded: Vec<u8>) {
        if self.inner.has_writer.load(Ordering::Relaxed) {
            let mut w = self.inner.writer.lock();
            if let Some(w) = w.as_mut() {
                if w.append(&encoded).is_err() {
                    self.inner.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.inner.ring.lock().push(encoded);
    }

    /// Record one trace event. Ring-only recorders (the probe-site hot
    /// path) encode straight into capacity recycled from the eviction
    /// side of the ring — steady state is alloc-free.
    pub fn record_event(&self, ev: &TraceEvent) {
        if self.inner.has_writer.load(Ordering::Relaxed) {
            self.push(encode_event(ev));
            return;
        }
        let mut ring = self.inner.ring.lock();
        let mut buf = ring.take_spare();
        encode_event_into(ev, &mut buf);
        ring.push(buf);
    }

    /// Record one registry snapshot.
    pub fn record_snapshot(&self, at_us: u64, metrics: &[MetricSnapshot]) {
        self.push(encode_snapshot(at_us, metrics));
    }

    /// Total records accepted so far.
    pub fn records(&self) -> u64 {
        self.inner.ring.lock().total
    }

    /// Records evicted from the ring by the byte budget.
    pub fn ring_dropped(&self) -> u64 {
        self.inner.ring.lock().dropped
    }

    /// Encoded bytes currently held in the ring.
    pub fn ring_bytes(&self) -> usize {
        self.inner.ring.lock().bytes
    }

    /// Segment-append failures (I/O errors); the ring still kept those
    /// records.
    pub fn write_errors(&self) -> u64 {
        self.inner.write_errors.load(Ordering::Relaxed)
    }

    /// Decode the records currently in the ring, oldest first.
    pub fn ring_records(&self) -> Vec<Record> {
        let ring = self.inner.ring.lock();
        ring.buf
            .iter()
            .filter_map(|b| decode_record(b).ok().map(|(r, _)| r))
            .collect()
    }

    /// Write the ring's current contents to a single recording file.
    pub fn dump(&self, path: &Path) -> io::Result<()> {
        let chunks: Vec<Vec<u8>> = {
            let ring = self.inner.ring.lock();
            ring.buf.iter().cloned().collect()
        };
        let mut out = BufWriter::new(File::create(path)?);
        for c in &chunks {
            out.write_all(c)?;
        }
        out.flush()
    }

    /// Flush the segment writer, if any.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(w) = self.inner.writer.lock().as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Paths of the retained segments, oldest first (empty for a
    /// ring-only recorder).
    pub fn segments(&self) -> Vec<PathBuf> {
        self.inner
            .writer
            .lock()
            .as_ref()
            .map_or_else(Vec::new, |w| w.segments())
    }
}

/// Rotating segment writer: appends records to
/// `<dir>/<prefix>-NNNNNN.qrec`, starts a new segment when the current
/// one would exceed `max_segment_bytes`, and deletes the oldest
/// segment beyond `max_segments`.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    prefix: String,
    max_segment_bytes: u64,
    max_segments: usize,
    seq: u32,
    out: BufWriter<File>,
    current_bytes: u64,
    retained: VecDeque<PathBuf>,
    torn: u64,
}

impl SegmentWriter {
    /// Create a writer in `dir` (created if missing), starting at
    /// segment 0. Existing files with the same prefix are overwritten
    /// as their sequence numbers come up.
    pub fn create(
        dir: &Path,
        prefix: &str,
        max_segment_bytes: u64,
        max_segments: usize,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let first = segment_path(dir, prefix, 0);
        let out = BufWriter::new(File::create(&first)?);
        let mut retained = VecDeque::new();
        retained.push_back(first);
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            max_segment_bytes: max_segment_bytes.max(REC_HEADER_LEN as u64),
            max_segments: max_segments.max(1),
            seq: 0,
            out,
            current_bytes: 0,
            retained,
            torn: 0,
        })
    }

    /// Append one encoded record, rotating first if it would overflow
    /// the current segment.
    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        if self.current_bytes > 0
            && self.current_bytes + record.len() as u64 > self.max_segment_bytes
        {
            self.rotate()?;
        }
        if record.len() > REC_HEADER_LEN && qos_buggify::buggify!("rec.write.tear") {
            // Simulated crash mid-append: leave a half-written record
            // at this segment's tail and resume on a fresh segment, as
            // a restart would.
            let cut = record.len() / 2;
            self.out.write_all(&record[..cut])?;
            self.current_bytes += cut as u64;
            self.torn += 1;
            return self.rotate();
        }
        self.out.write_all(record)?;
        self.current_bytes += record.len() as u64;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.seq += 1;
        let path = segment_path(&self.dir, &self.prefix, self.seq);
        self.out = BufWriter::new(File::create(&path)?);
        self.current_bytes = 0;
        self.retained.push_back(path);
        while self.retained.len() > self.max_segments {
            if let Some(old) = self.retained.pop_front() {
                let _ = fs::remove_file(old);
            }
        }
        Ok(())
    }

    /// Flush buffered bytes to the current segment file.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Paths of the retained segments, oldest first.
    pub fn segments(&self) -> Vec<PathBuf> {
        self.retained.iter().cloned().collect()
    }

    /// Appends torn by the `rec.write.tear` buggify point.
    pub fn torn_writes(&self) -> u64 {
        self.torn
    }
}

fn segment_path(dir: &Path, prefix: &str, seq: u32) -> PathBuf {
    dir.join(format!("{prefix}-{seq:06}.{SEGMENT_EXT}"))
}

// --------------------------------------------------------------- reader

/// A replayed recording: every record recovered from one or more
/// segments, plus what (if anything) stopped each segment early.
#[derive(Clone, Debug, PartialEq)]
pub struct Recording {
    /// All recovered records, in write order across segments.
    pub records: Vec<Record>,
    /// At least one segment ended mid-record (torn tail).
    pub truncated: bool,
    /// First corruption encountered (decoding of that segment stopped
    /// there; later segments were still read).
    pub corrupt: Option<RecError>,
    /// Number of segments read.
    pub segments: usize,
}

impl Recording {
    /// Tolerantly decode a single in-memory segment.
    pub fn from_bytes(buf: &[u8]) -> Recording {
        let scan = scan_records(buf);
        Recording {
            records: scan.records,
            truncated: scan.truncated,
            corrupt: scan.corrupt,
            segments: 1,
        }
    }

    /// The recovered trace events, in write order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Event(ev) => Some(ev.clone()),
                Record::Snapshot(_) => None,
            })
            .collect()
    }

    /// The recovered metrics snapshots, in write order.
    pub fn snapshots(&self) -> Vec<&SnapshotRecord> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Snapshot(s) => Some(s),
                Record::Event(_) => None,
            })
            .collect()
    }

    /// The last (most recent) metrics snapshot, if any.
    pub fn last_snapshot(&self) -> Option<&SnapshotRecord> {
        self.records.iter().rev().find_map(|r| match r {
            Record::Snapshot(s) => Some(s),
            Record::Event(_) => None,
        })
    }

    /// Reconstruct violation lifecycles from the recovered events.
    pub fn lifecycles(&self) -> Vec<Lifecycle> {
        reconstruct(&self.events())
    }
}

/// Read one recording file tolerantly (torn tails and corruption
/// recover the prefix; only I/O failures error).
pub fn read_recording(path: &Path) -> io::Result<Recording> {
    let bytes = fs::read(path)?;
    Ok(Recording::from_bytes(&bytes))
}

/// Read every `<prefix>-*.qrec` segment in `dir`, in sequence order,
/// merging them into one recording.
pub fn read_recording_dir(dir: &Path, prefix: &str) -> io::Result<Recording> {
    let want_prefix = format!("{prefix}-");
    let want_suffix = format!(".{SEGMENT_EXT}");
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&want_prefix) && n.ends_with(&want_suffix))
        })
        .collect();
    // Zero-padded sequence numbers make lexicographic order write order.
    paths.sort();
    let mut rec = Recording {
        records: Vec::new(),
        truncated: false,
        corrupt: None,
        segments: 0,
    };
    for p in &paths {
        let bytes = fs::read(p)?;
        let scan = scan_records(&bytes);
        rec.records.extend(scan.records);
        rec.truncated |= scan.truncated;
        if rec.corrupt.is_none() {
            rec.corrupt = scan.corrupt;
        }
        rec.segments += 1;
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, corr: u64, stage: Stage) -> TraceEvent {
        TraceEvent {
            at_us: at,
            corr,
            stage,
            component: "client-0".into(),
            name: "NotifyQoSViolation".into(),
            fields: vec![("fps".into(), 19.5), ("budget".into(), 25.0)],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qrec-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn event_and_snapshot_records_roundtrip() {
        let e = ev(10, 7, Stage::Detect);
        let mut h = HistogramSnapshot::empty();
        h.count = 3;
        h.sum = 12;
        h.max = 8;
        h.buckets[0] = 1;
        h.buckets[4] = 2;
        let metrics = vec![
            MetricSnapshot {
                family: "hm.violations".into(),
                label: "h0".into(),
                value: MetricValue::Counter(5),
            },
            MetricSnapshot {
                family: "video.fps".into(),
                label: "client-0".into(),
                value: MetricValue::Gauge(24.5),
            },
            MetricSnapshot {
                family: "lat".into(),
                label: "".into(),
                value: MetricValue::Histogram(Box::new(h)),
            },
        ];
        let mut buf = encode_event(&e);
        buf.extend_from_slice(&encode_snapshot(99, &metrics));
        let recs = decode_records(&buf).expect("clean buffer decodes strictly");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], Record::Event(e));
        assert_eq!(
            recs[1],
            Record::Snapshot(SnapshotRecord { at_us: 99, metrics })
        );
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let mut buf = Vec::new();
        for i in 0..3u64 {
            buf.extend_from_slice(&encode_event(&ev(i, i + 1, Stage::Mark)));
        }
        let cut = buf.len() - 5;
        let scan = scan_records(&buf[..cut]);
        assert_eq!(scan.records.len(), 2);
        assert!(scan.truncated);
        assert_eq!(scan.corrupt, None);
        // Strict decode reports the torn tail as a typed error.
        assert!(matches!(
            decode_records(&buf[..cut]),
            Err(RecError::Truncated { .. })
        ));
    }

    #[test]
    fn corruption_yields_typed_errors_never_panics() {
        let one = encode_event(&ev(5, 1, Stage::Report));
        // Flip the magic of a second record mid-stream.
        let mut buf = one.clone();
        let mut bad = one.clone();
        bad[0] = b'X';
        buf.extend_from_slice(&bad);
        let scan = scan_records(&buf);
        assert_eq!(scan.records.len(), 1);
        assert!(!scan.truncated);
        assert_eq!(scan.corrupt, Some(RecError::BadMagic([b'X', b'R'])));

        // Every single-byte mutation decodes to Ok or a typed error.
        for i in 0..one.len() {
            let mut m = one.clone();
            m[i] ^= 0xff;
            let _ = decode_record(&m);
            let _ = scan_records(&m);
        }
        // Bad version, kind, oversized length, payload overrun.
        let mut v = one.clone();
        v[2] = 9;
        assert_eq!(decode_record(&v), Err(RecError::UnsupportedVersion(9)));
        let mut k = one.clone();
        k[3] = 42;
        assert_eq!(decode_record(&k), Err(RecError::UnknownKind(42)));
        let mut big = one.clone();
        big[4..8].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        assert_eq!(
            decode_record(&big),
            Err(RecError::RecordTooLarge(MAX_RECORD_LEN + 1))
        );
        // Inflate an inner string length: overrun is corruption, not
        // truncation.
        let mut over = one.clone();
        over[REC_HEADER_LEN + 17..REC_HEADER_LEN + 21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_record(&over),
            Err(RecError::BadValue("payload overruns record length"))
        );
    }

    #[test]
    fn ring_evicts_oldest_by_byte_budget() {
        let one_len = encode_event(&ev(0, 1, Stage::Mark)).len();
        let rec = FlightRecorder::new(one_len * 3);
        for i in 0..10u64 {
            rec.record_event(&ev(i, i + 1, Stage::Mark));
        }
        assert_eq!(rec.records(), 10);
        assert_eq!(rec.ring_dropped(), 7);
        assert!(rec.ring_bytes() <= one_len * 3);
        let ats: Vec<u64> = rec
            .ring_records()
            .iter()
            .map(|r| match r {
                Record::Event(e) => e.at_us,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ats, [7, 8, 9], "newest records survive");
    }

    #[test]
    fn dump_and_read_recording_roundtrip() {
        let dir = temp_dir("dump");
        fs::create_dir_all(&dir).unwrap();
        let rec = FlightRecorder::new(DEFAULT_RING_BYTES);
        for i in 0..5u64 {
            rec.record_event(&ev(i * 10, i + 1, Stage::Detect));
        }
        rec.record_snapshot(
            60,
            &[MetricSnapshot {
                family: "c".into(),
                label: "".into(),
                value: MetricValue::Counter(5),
            }],
        );
        let path = dir.join("run.qrec");
        rec.dump(&path).unwrap();
        let replay = read_recording(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.corrupt, None);
        assert_eq!(replay.records.len(), 6);
        assert_eq!(replay.events().len(), 5);
        assert_eq!(replay.last_snapshot().unwrap().at_us, 60);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_writer_rotates_and_retains() {
        let dir = temp_dir("rotate");
        let one_len = encode_event(&ev(0, 1, Stage::Mark)).len() as u64;
        // Two records per segment, keep at most three segments.
        let w = SegmentWriter::create(&dir, "run", one_len * 2, 3).unwrap();
        let rec = FlightRecorder::with_writer(DEFAULT_RING_BYTES, w);
        for i in 0..10u64 {
            rec.record_event(&ev(i, i + 1, Stage::Mark));
        }
        rec.flush().unwrap();
        let segs = rec.segments();
        assert_eq!(segs.len(), 3, "retention cap holds");
        let replay = read_recording_dir(&dir, "run").unwrap();
        assert_eq!(replay.segments, 3);
        assert!(!replay.truncated);
        assert_eq!(replay.corrupt, None);
        let ats: Vec<u64> = replay.events().iter().map(|e| e.at_us).collect();
        assert_eq!(ats, [4, 5, 6, 7, 8, 9], "oldest segments were deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(debug_assertions)]
    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn torn_append_recovers_everything_but_the_torn_record() {
        if !qos_buggify::compiled_in() {
            return;
        }
        let dir = temp_dir("tear");
        let w = SegmentWriter::create(&dir, "run", 1 << 20, 16).unwrap();
        let rec = FlightRecorder::with_writer(DEFAULT_RING_BYTES, w);
        qos_buggify::enable_with(42, 0.0);
        rec.record_event(&ev(0, 1, Stage::Detect));
        qos_buggify::force("rec.write.tear", 1);
        rec.record_event(&ev(1, 2, Stage::Detect)); // torn
        rec.record_event(&ev(2, 3, Stage::Detect));
        qos_buggify::disable();
        rec.flush().unwrap();
        let replay = read_recording_dir(&dir, "run").unwrap();
        assert!(replay.truncated, "torn tail must be visible");
        assert_eq!(replay.corrupt, None, "a tear is truncation, not corruption");
        let ats: Vec<u64> = replay.events().iter().map(|e| e.at_us).collect();
        assert_eq!(ats, [0, 2], "records on either side of the tear survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_inputs_are_clean() {
        assert_eq!(decode_records(&[]).unwrap(), Vec::new());
        let scan = scan_records(&[]);
        assert!(scan.records.is_empty() && !scan.truncated && scan.corrupt.is_none());
        let r = Recording::from_bytes(&[]);
        assert!(r.events().is_empty() && r.lifecycles().is_empty());
    }
}
