//! Exporters: JSONL event dumps (one object per line, with a matching
//! parser so tests can round-trip a trace file), the Chrome
//! `trace_event` format for `about://tracing` / Perfetto, and a JSON
//! rendering of a registry snapshot.
//!
//! JSON is written and read by hand — the workspace is hermetic (no
//! serde); the grammar here is the tiny subset our own exporters emit:
//! one-level objects with string/number values plus a flat `fields`
//! object.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::events::{Stage, TraceEvent};
use crate::metrics::{MetricValue, RegistrySnapshot};

/// Escape a string for a JSON string literal.
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Format an f64 the way our parser reads it back (finite shortest
/// round-trip; non-finite values become 0).
fn num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// One event as a single-line JSON object.
fn event_json(e: &TraceEvent, out: &mut String) {
    let _ = write!(
        out,
        "{{\"at_us\":{},\"corr\":{},\"stage\":\"",
        e.at_us, e.corr
    );
    out.push_str(e.stage.name());
    out.push_str("\",\"component\":\"");
    esc(&e.component, out);
    out.push_str("\",\"name\":\"");
    esc(&e.name, out);
    out.push_str("\",\"fields\":{");
    for (i, (k, v)) in e.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        esc(k, out);
        out.push_str("\":");
        num(*v, out);
    }
    out.push_str("}}");
}

/// Serialize events as JSONL: one JSON object per line.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        event_json(e, &mut out);
        out.push('\n');
    }
    out
}

// ------------------------------------------------------------------
// Minimal JSON value parser (objects, numbers, strings) — enough to
// round-trip our own JSONL output.
// ------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while self.i < self.b.len() {
            let c = self.b[self.i];
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 from the original str.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.i - 1;
                        let mut end = self.i;
                        while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.b[start..end]).map_err(|e| e.to_string())?,
                        );
                        self.i = end;
                    }
                }
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'"' => Ok(Json::Str(self.string()?)),
            _ => Ok(Json::Num(self.number()?)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Parse one JSONL line back into a [`TraceEvent`].
pub fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let Json::Obj(obj) = Parser::new(line).object()? else {
        return Err("not an object".into());
    };
    let get = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let num_of = |k: &str| -> Result<f64, String> {
        match get(k) {
            Some(Json::Num(n)) => Ok(*n),
            _ => Err(format!("missing numeric field '{k}'")),
        }
    };
    let str_of = |k: &str| -> Result<String, String> {
        match get(k) {
            Some(Json::Str(s)) => Ok(s.clone()),
            _ => Err(format!("missing string field '{k}'")),
        }
    };
    let stage_name = str_of("stage")?;
    let stage =
        Stage::from_name(&stage_name).ok_or_else(|| format!("unknown stage '{stage_name}'"))?;
    let mut fields = Vec::new();
    if let Some(Json::Obj(fs)) = get("fields") {
        for (k, v) in fs {
            if let Json::Num(n) = v {
                fields.push((k.clone(), *n));
            }
        }
    }
    Ok(TraceEvent {
        at_us: num_of("at_us")? as u64,
        corr: num_of("corr")? as u64,
        stage,
        component: str_of("component")?,
        name: str_of("name")?,
        fields,
    })
}

/// Parse a whole JSONL dump (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_event)
        .collect()
}

/// Serialize events in the Chrome `trace_event` format (load the file
/// in `about://tracing` or Perfetto). Each event becomes a complete
/// ("X") slice on its component's thread row; each correlation id that
/// both begins (detect) and ends (back-in-spec) becomes an async span
/// stretching over the whole lifecycle.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    // Stable component → tid mapping, in order of first appearance.
    let mut tids: Vec<&str> = Vec::new();
    let mut tid_of = BTreeMap::new();
    for e in events {
        if !tid_of.contains_key(e.component.as_str()) {
            tid_of.insert(e.component.as_str(), tids.len() as u64);
            tids.push(&e.component);
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };
    // Thread-name metadata so rows are labeled by component.
    for (i, c) in tids.iter().enumerate() {
        let mut name = String::new();
        esc(c, &mut name);
        emit(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    // Per-stage slices.
    for e in events {
        let tid = tid_of[e.component.as_str()];
        let mut line = String::new();
        line.push_str("{\"name\":\"");
        esc(e.stage.name(), &mut line);
        line.push_str(": ");
        esc(&e.name, &mut line);
        let _ = write!(
            line,
            "\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"corr\":{}",
            e.stage.name(),
            e.at_us,
            e.corr
        );
        for (k, v) in &e.fields {
            line.push_str(",\"");
            esc(k, &mut line);
            line.push_str("\":");
            num(*v, &mut line);
        }
        line.push_str("}}");
        emit(&mut out, &mut first, &line);
    }
    // Async lifecycle spans per correlation id.
    let mut spans: BTreeMap<u64, (Option<u64>, Option<u64>, String)> = BTreeMap::new();
    for e in events.iter().filter(|e| e.corr != 0) {
        let entry = spans
            .entry(e.corr)
            .or_insert_with(|| (None, None, e.name.clone()));
        match e.stage {
            Stage::Detect => entry.0 = Some(entry.0.unwrap_or(e.at_us).min(e.at_us)),
            Stage::BackInSpec => entry.1 = Some(entry.1.unwrap_or(e.at_us).max(e.at_us)),
            _ => {}
        }
    }
    for (corr, (begin, end, name)) in &spans {
        if let (Some(b), Some(e)) = (begin, end) {
            let mut n = String::new();
            esc(name, &mut n);
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"violation {n}\",\"cat\":\"lifecycle\",\"ph\":\"b\",\
                     \"id\":{corr},\"ts\":{b},\"pid\":1,\"tid\":0,\"args\":{{}}}}"
                ),
            );
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"violation {n}\",\"cat\":\"lifecycle\",\"ph\":\"e\",\
                     \"id\":{corr},\"ts\":{e},\"pid\":1,\"tid\":0,\"args\":{{}}}}"
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render a registry snapshot as a JSON object keyed
/// `family{label}` → value (histograms become `{count, p50, p95, max,
/// mean}` summaries).
pub fn metrics_to_json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\n");
    for (i, m) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  \"");
        esc(&m.family, &mut out);
        if !m.label.is_empty() {
            out.push('{');
            esc(&m.label, &mut out);
            out.push('}');
        }
        out.push_str("\": ");
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => num(*v, &mut out),
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"count\":{},\"p50\":{},\"p95\":{},\"max\":{},\"mean\":",
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.max
                );
                num(h.mean(), &mut out);
                out.push('}');
            }
        }
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at_us: 100,
                corr: 7,
                stage: Stage::Detect,
                component: "client-0".into(),
                name: "example1".into(),
                fields: vec![("fps".into(), 19.5), ("cond".into(), 2.0)],
            },
            TraceEvent {
                at_us: 250,
                corr: 7,
                stage: Stage::BackInSpec,
                component: "client-0".into(),
                name: "example1".into(),
                fields: vec![],
            },
            TraceEvent {
                at_us: 300,
                corr: 0,
                stage: Stage::Mark,
                component: "sim".into(),
                name: "tick \"q\"\\n".into(),
                fields: vec![("depth".into(), 4.0)],
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let evs = sample_events();
        let text = to_jsonl(&evs);
        assert_eq!(text.lines().count(), 3);
        let back = parse_jsonl(&text).expect("parse own output");
        assert_eq!(back, evs, "round-trip must be lossless");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_event("not json").is_err());
        assert!(parse_event("{\"at_us\":1}").is_err(), "missing fields");
        assert!(
            parse_event(
                "{\"at_us\":1,\"corr\":0,\"stage\":\"nope\",\
                 \"component\":\"c\",\"name\":\"n\",\"fields\":{}}"
            )
            .is_err(),
            "unknown stage"
        );
    }

    #[test]
    fn chrome_trace_has_spans_and_slices() {
        let text = to_chrome_trace(&sample_events());
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\":\"X\""), "stage slices");
        assert!(
            text.contains("\"ph\":\"b\"") && text.contains("\"ph\":\"e\""),
            "async lifecycle span"
        );
        assert!(text.contains("thread_name"));
        // Balanced braces as a cheap well-formedness check.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn metrics_json_renders_all_kinds() {
        use crate::metrics::Registry;
        let r = Registry::new();
        r.counter("c", "x").add(3);
        r.gauge("g", "").set(1.5);
        r.histogram("h", "lat").record(100);
        let json = metrics_to_json(&r.snapshot());
        #[cfg(not(feature = "telemetry-off"))]
        {
            assert!(json.contains("\"c{x}\": 3"), "{json}");
            assert!(json.contains("\"g\": 1.5"), "{json}");
            assert!(json.contains("\"count\":1"), "{json}");
        }
        #[cfg(feature = "telemetry-off")]
        assert_eq!(json, "{\n\n}\n");
    }
}
