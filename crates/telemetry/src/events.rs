//! Structured trace events: the violation lifecycle stages plus generic
//! marks, each stamped with a correlation id so one violation's path
//! through the management plane (detect → report → diagnose → adapt →
//! back-in-spec) is a single reconstructable causal chain.
//!
//! Timestamps are plain `u64` microseconds: virtual time in the
//! simulation, wall time (via `LiveClock`) in live mode. The event
//! buffer is bounded; when full the oldest events are evicted and
//! counted, never silently.

#![cfg_attr(feature = "telemetry-off", allow(dead_code))]

use std::collections::VecDeque;

/// Lifecycle stage (or generic kind) of a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// A sensor tripped and the coordinator entered violation; the
    /// correlation id is minted here.
    Detect,
    /// The coordinator/application sent a violation report upstream.
    Report,
    /// The host manager ran inference over the report.
    Diagnose,
    /// A resource/application adaptation was issued.
    Adapt,
    /// The host manager escalated to the domain manager (optional
    /// stage, between diagnose and adapt).
    Escalate,
    /// The violated policy recovered: observed values back in
    /// specification.
    BackInSpec,
    /// A generic annotation outside the five lifecycle stages.
    Mark,
}

impl Stage {
    /// Canonical position in the lifecycle (escalate shares the adapt
    /// slot; marks sort last).
    pub fn order(self) -> u8 {
        match self {
            Stage::Detect => 0,
            Stage::Report => 1,
            Stage::Diagnose => 2,
            Stage::Escalate => 3,
            Stage::Adapt => 3,
            Stage::BackInSpec => 4,
            Stage::Mark => 5,
        }
    }

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Detect => "detect",
            Stage::Report => "report",
            Stage::Diagnose => "diagnose",
            Stage::Adapt => "adapt",
            Stage::Escalate => "escalate",
            Stage::BackInSpec => "back_in_spec",
            Stage::Mark => "mark",
        }
    }

    /// Parse a wire name back into a stage.
    pub fn from_name(s: &str) -> Option<Stage> {
        Some(match s {
            "detect" => Stage::Detect,
            "report" => Stage::Report,
            "diagnose" => Stage::Diagnose,
            "adapt" => Stage::Adapt,
            "escalate" => Stage::Escalate,
            "back_in_spec" => Stage::BackInSpec,
            "mark" => Stage::Mark,
            _ => return None,
        })
    }

    /// Stable single-byte tag used by the binary codecs (the flight
    /// recorder and the wire protocol). Distinct from [`Stage::order`],
    /// which collapses escalate onto the adapt slot.
    pub fn tag(self) -> u8 {
        match self {
            Stage::Detect => 0,
            Stage::Report => 1,
            Stage::Diagnose => 2,
            Stage::Adapt => 3,
            Stage::Escalate => 4,
            Stage::BackInSpec => 5,
            Stage::Mark => 6,
        }
    }

    /// Parse a binary tag back into a stage.
    pub fn from_tag(t: u8) -> Option<Stage> {
        Some(match t {
            0 => Stage::Detect,
            1 => Stage::Report,
            2 => Stage::Diagnose,
            3 => Stage::Adapt,
            4 => Stage::Escalate,
            5 => Stage::BackInSpec,
            6 => Stage::Mark,
            _ => return None,
        })
    }

    /// All five stages a *complete* lifecycle must pass through, in
    /// order.
    pub const LIFECYCLE: [Stage; 5] = [
        Stage::Detect,
        Stage::Report,
        Stage::Diagnose,
        Stage::Adapt,
        Stage::BackInSpec,
    ];
}

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Timestamp, µs (virtual in-sim, wall in live mode).
    pub at_us: u64,
    /// Correlation id of the violation lifecycle this event belongs to
    /// (0 = not part of a lifecycle).
    pub corr: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Emitting component, e.g. `client-0`, `hm:h0`, `domain`, `sim`.
    pub component: String,
    /// Event detail: the policy, rule or action name.
    pub name: String,
    /// Numeric payload fields (rule firings, agenda size, fps, ...).
    pub fields: Vec<(String, f64)>,
}

impl TraceEvent {
    /// Look up a payload field by key.
    pub fn field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Bounded in-memory event buffer; oldest events are evicted first.
#[derive(Debug)]
pub(crate) struct EventBuf {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventBuf {
    pub fn new(capacity: usize) -> Self {
        EventBuf {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at_us: at,
            corr: 1,
            stage: Stage::Mark,
            component: "t".into(),
            name: "n".into(),
            fields: vec![("x".into(), 1.0)],
        }
    }

    #[test]
    fn stage_names_roundtrip() {
        for s in [
            Stage::Detect,
            Stage::Report,
            Stage::Diagnose,
            Stage::Adapt,
            Stage::Escalate,
            Stage::BackInSpec,
            Stage::Mark,
        ] {
            assert_eq!(Stage::from_name(s.name()), Some(s));
            assert_eq!(Stage::from_tag(s.tag()), Some(s));
        }
        assert_eq!(Stage::from_name("bogus"), None);
        assert_eq!(Stage::from_tag(7), None);
    }

    #[test]
    fn lifecycle_order_is_monotone() {
        let orders: Vec<u8> = Stage::LIFECYCLE.iter().map(|s| s.order()).collect();
        let mut sorted = orders.clone();
        sorted.sort_unstable();
        assert_eq!(orders, sorted);
    }

    #[test]
    fn event_buf_evicts_oldest() {
        let mut b = EventBuf::new(3);
        for t in 0..5 {
            b.push(ev(t));
        }
        let ts: Vec<u64> = b.events().iter().map(|e| e.at_us).collect();
        assert_eq!(ts, [2, 3, 4], "oldest evicted first");
        assert_eq!(b.dropped(), 2);
    }

    #[test]
    fn field_lookup() {
        let e = ev(0);
        assert_eq!(e.field("x"), Some(1.0));
        assert_eq!(e.field("y"), None);
    }
}
