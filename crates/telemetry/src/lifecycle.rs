//! Violation-lifecycle reconstruction: group a trace by correlation id
//! and rebuild each violation's causal chain (detect → report →
//! diagnose → adapt → back-in-spec) with per-stage latencies and MTTR.

use std::collections::BTreeMap;

use crate::events::{Stage, TraceEvent};
use crate::metrics::HistogramSnapshot;

/// One reconstructed violation lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub struct Lifecycle {
    /// Correlation id.
    pub corr: u64,
    /// Policy (or detail) name from the detect event, if seen.
    pub policy: String,
    /// First timestamp observed for each lifecycle stage, in stage
    /// order; stages never observed are absent.
    pub stages: Vec<(Stage, u64)>,
    /// Number of events carrying this correlation id.
    pub events: usize,
}

impl Lifecycle {
    /// First timestamp of `stage`, if observed.
    pub fn stage_at(&self, stage: Stage) -> Option<u64> {
        self.stages
            .iter()
            .find(|&&(s, _)| s == stage)
            .map(|&(_, t)| t)
    }

    /// Did the violation pass through all five lifecycle stages?
    pub fn complete(&self) -> bool {
        Stage::LIFECYCLE.iter().all(|&s| self.stage_at(s).is_some())
    }

    /// Are the observed stage timestamps monotonically non-decreasing
    /// in lifecycle order?
    pub fn monotonic(&self) -> bool {
        let mut ordered: Vec<(u8, u64)> = self
            .stages
            .iter()
            .filter(|(s, _)| *s != Stage::Mark)
            .map(|&(s, t)| (s.order(), t))
            .collect();
        ordered.sort_by_key(|&(o, _)| o);
        ordered.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// Mean-time-to-repair: detect → back-in-spec, µs. `None` until the
    /// violation recovers.
    pub fn mttr_us(&self) -> Option<u64> {
        let detect = self.stage_at(Stage::Detect)?;
        let back = self.stage_at(Stage::BackInSpec)?;
        Some(back.saturating_sub(detect))
    }
}

/// Group events by correlation id (ignoring `corr == 0`) and rebuild
/// each lifecycle, ordered by correlation id.
pub fn reconstruct(events: &[TraceEvent]) -> Vec<Lifecycle> {
    let mut by_corr: BTreeMap<u64, Lifecycle> = BTreeMap::new();
    for e in events.iter().filter(|e| e.corr != 0) {
        let lc = by_corr.entry(e.corr).or_insert_with(|| Lifecycle {
            corr: e.corr,
            policy: String::new(),
            stages: Vec::new(),
            events: 0,
        });
        lc.events += 1;
        if e.stage == Stage::Detect && lc.policy.is_empty() {
            lc.policy = e.name.clone();
        }
        match lc.stages.iter_mut().find(|(s, _)| *s == e.stage) {
            Some((_, t)) => *t = (*t).min(e.at_us),
            None => lc.stages.push((e.stage, e.at_us)),
        }
    }
    let mut out: Vec<Lifecycle> = by_corr.into_values().collect();
    for lc in &mut out {
        lc.stages.sort_by_key(|&(s, t)| (s.order(), t));
    }
    out
}

/// Aggregated per-stage transition latencies over a set of lifecycles,
/// as log-bucketed distributions: detect→report, report→diagnose,
/// diagnose→adapt, adapt→back-in-spec, plus end-to-end MTTR.
#[derive(Clone, Debug)]
pub struct StageLatencies {
    /// (transition name, distribution) in lifecycle order.
    pub transitions: Vec<(&'static str, HistogramSnapshot)>,
    /// Detect → back-in-spec distribution over completed lifecycles.
    pub mttr: HistogramSnapshot,
    /// Lifecycles that recovered (reached back-in-spec).
    pub completed: usize,
    /// Lifecycles still open at the end of the trace.
    pub open: usize,
}

/// Compute per-stage latency distributions for a set of lifecycles.
pub fn stage_latencies(lifecycles: &[Lifecycle]) -> StageLatencies {
    const PAIRS: [(&str, Stage, Stage); 4] = [
        ("detect→report", Stage::Detect, Stage::Report),
        ("report→diagnose", Stage::Report, Stage::Diagnose),
        ("diagnose→adapt", Stage::Diagnose, Stage::Adapt),
        ("adapt→back-in-spec", Stage::Adapt, Stage::BackInSpec),
    ];
    // Accumulate via raw bucket math on HistogramSnapshot by recording
    // into a local core-free accumulator.
    let mut accs: Vec<(&'static str, Vec<u64>)> =
        PAIRS.iter().map(|&(n, _, _)| (n, Vec::new())).collect();
    let mut mttr_vals = Vec::new();
    let mut completed = 0;
    let mut open = 0;
    for lc in lifecycles {
        for (i, &(_, from, to)) in PAIRS.iter().enumerate() {
            if let (Some(a), Some(b)) = (lc.stage_at(from), lc.stage_at(to)) {
                accs[i].1.push(b.saturating_sub(a));
            }
        }
        match lc.mttr_us() {
            Some(m) => {
                completed += 1;
                mttr_vals.push(m);
            }
            None => open += 1,
        }
    }
    let to_hist = |vals: &[u64]| {
        let mut h = HistogramSnapshot::empty();
        for &v in vals {
            let ix = if v == 0 {
                0
            } else {
                64 - v.leading_zeros() as usize
            };
            h.buckets[ix] += 1;
            h.count += 1;
            h.sum += v;
            h.max = h.max.max(v);
        }
        h
    };
    StageLatencies {
        transitions: accs.iter().map(|(n, v)| (*n, to_hist(v))).collect(),
        mttr: to_hist(&mttr_vals),
        completed,
        open,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, corr: u64, stage: Stage, name: &str) -> TraceEvent {
        TraceEvent {
            at_us: at,
            corr,
            stage,
            component: "t".into(),
            name: name.into(),
            fields: vec![],
        }
    }

    #[test]
    fn reconstructs_complete_lifecycle() {
        let events = vec![
            ev(10, 1, Stage::Detect, "example1"),
            ev(10, 1, Stage::Report, "example1"),
            ev(12, 1, Stage::Diagnose, "raise-priority"),
            ev(12, 1, Stage::Adapt, "adjust-cpu"),
            ev(500, 1, Stage::BackInSpec, "example1"),
            // A second, unfinished violation interleaved.
            ev(20, 2, Stage::Detect, "example2"),
            ev(21, 2, Stage::Report, "example2"),
            // corr 0 noise must be ignored.
            ev(1, 0, Stage::Mark, "noise"),
        ];
        let lcs = reconstruct(&events);
        assert_eq!(lcs.len(), 2);
        let a = &lcs[0];
        assert_eq!(a.corr, 1);
        assert_eq!(a.policy, "example1");
        assert!(a.complete());
        assert!(a.monotonic());
        assert_eq!(a.mttr_us(), Some(490));
        let b = &lcs[1];
        assert!(!b.complete());
        assert_eq!(b.mttr_us(), None);
    }

    #[test]
    fn repeated_stage_keeps_earliest_timestamp() {
        let events = vec![
            ev(50, 3, Stage::Report, "p"),
            ev(40, 3, Stage::Report, "p"),
            ev(30, 3, Stage::Detect, "p"),
        ];
        let lcs = reconstruct(&events);
        assert_eq!(lcs[0].stage_at(Stage::Report), Some(40));
        assert_eq!(lcs[0].events, 3);
    }

    #[test]
    fn non_monotonic_chain_is_flagged() {
        let events = vec![
            ev(100, 4, Stage::Detect, "p"),
            ev(90, 4, Stage::Report, "p"),
        ];
        let lcs = reconstruct(&events);
        assert!(!lcs[0].monotonic());
    }

    #[test]
    fn latency_aggregation() {
        let events = vec![
            ev(0, 1, Stage::Detect, "p"),
            ev(100, 1, Stage::Report, "p"),
            ev(150, 1, Stage::Diagnose, "p"),
            ev(150, 1, Stage::Adapt, "p"),
            ev(1150, 1, Stage::BackInSpec, "p"),
            ev(0, 2, Stage::Detect, "p"),
        ];
        let lat = stage_latencies(&reconstruct(&events));
        assert_eq!(lat.completed, 1);
        assert_eq!(lat.open, 1);
        assert_eq!(lat.mttr.count, 1);
        assert_eq!(lat.mttr.max, 1150);
        let dr = &lat.transitions[0];
        assert_eq!(dr.0, "detect→report");
        assert_eq!(dr.1.max, 100);
        let da = &lat.transitions[2];
        assert_eq!(da.1.max, 0, "diagnose and adapt at the same instant");
    }
}
