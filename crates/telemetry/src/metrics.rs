//! Metrics registry: named families of labeled series — counters,
//! gauges and log-bucketed histograms — behind cheap pre-resolved
//! handles.
//!
//! Handles are resolved once (a lock + map lookup) and then cost one
//! relaxed atomic read-modify-write per probe. Relaxed atomics on an
//! uncontended cell compile to ordinary load/store on every target we
//! care about, so the same handle type serves both the single-threaded
//! simulation ("plain cells") and the live-mode thread pool without a
//! second implementation. With the `telemetry-off` feature every handle
//! is an empty struct and every probe method is an empty body.

#![cfg_attr(feature = "telemetry-off", allow(unused_imports, dead_code))]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of power-of-two histogram buckets: bucket `i` holds values
/// `v` with `floor(log2(v)) + 1 == i` (bucket 0 holds `v == 0`), so the
/// full `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    #[cfg(not(feature = "telemetry-off"))]
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that counts nothing (disabled telemetry).
    pub fn noop() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed));
        #[cfg(feature = "telemetry-off")]
        0
    }
}

/// A gauge handle holding the latest sampled value (f64).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    #[cfg(not(feature = "telemetry-off"))]
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A handle that records nothing (disabled telemetry).
    pub fn noop() -> Self {
        Gauge::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(not(feature = "telemetry-off"))]
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self
            .cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)));
        #[cfg(feature = "telemetry-off")]
        0.0
    }
}

/// Shared state of one histogram series.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let ix = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A log-bucketed histogram handle (record `u64` values, usually
/// latencies in microseconds).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    #[cfg(not(feature = "telemetry-off"))]
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A handle that records nothing (disabled telemetry).
    pub fn noop() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        if let Some(c) = &self.core {
            c.record(v);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Snapshot of the distribution (empty for a no-op handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(not(feature = "telemetry-off"))]
        return self
            .core
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot());
        #[cfg(feature = "telemetry-off")]
        HistogramSnapshot::empty()
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i > 0` holds `2^(i-1) <= v < 2^i`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty distribution.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the log buckets: the
    /// upper bound of the bucket where the cumulative count crosses
    /// `q * count`, clamped by the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i == 0 {
                    0u64
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The value of one series in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Latest gauge sample.
    Gauge(f64),
    /// Histogram distribution (boxed: the bucket array is large).
    Histogram(Box<HistogramSnapshot>),
}

/// One (family, label) series with its current value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name, e.g. `hm.adaptations`.
    pub family: String,
    /// Series label within the family, e.g. the host id (may be empty).
    pub label: String,
    /// Current value.
    pub value: MetricValue,
}

/// A point-in-time copy of every series, deterministically ordered by
/// (family, label).
pub type RegistrySnapshot = Vec<MetricSnapshot>;

#[cfg(not(feature = "telemetry-off"))]
#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// The registry: interns (family, label) series and hands out
/// pre-resolved handles. Resolving the same series twice returns
/// handles over the same cell.
#[derive(Debug, Default)]
pub struct Registry {
    #[cfg(not(feature = "telemetry-off"))]
    series: Mutex<BTreeMap<(String, String), Cell>>,
    #[cfg(feature = "telemetry-off")]
    _series: (),
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolve (or create) a counter series.
    pub fn counter(&self, family: &str, label: &str) -> Counter {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut s = self.series.lock();
            let cell = s
                .entry((family.to_string(), label.to_string()))
                .or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0))));
            match cell {
                Cell::Counter(c) => Counter {
                    cell: Some(Arc::clone(c)),
                },
                _ => Counter::noop(),
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = (family, label);
            Counter::noop()
        }
    }

    /// Resolve (or create) a gauge series.
    pub fn gauge(&self, family: &str, label: &str) -> Gauge {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut s = self.series.lock();
            let cell = s
                .entry((family.to_string(), label.to_string()))
                .or_insert_with(|| Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
            match cell {
                Cell::Gauge(c) => Gauge {
                    cell: Some(Arc::clone(c)),
                },
                _ => Gauge::noop(),
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = (family, label);
            Gauge::noop()
        }
    }

    /// Resolve (or create) a histogram series.
    pub fn histogram(&self, family: &str, label: &str) -> Histogram {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut s = self.series.lock();
            let cell = s
                .entry((family.to_string(), label.to_string()))
                .or_insert_with(|| Cell::Histogram(Arc::new(HistogramCore::new())));
            match cell {
                Cell::Histogram(c) => Histogram {
                    core: Some(Arc::clone(c)),
                },
                _ => Histogram::noop(),
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = (family, label);
            Histogram::noop()
        }
    }

    /// Deterministically ordered copy of every series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let s = self.series.lock();
            s.iter()
                .map(|((family, label), cell)| MetricSnapshot {
                    family: family.clone(),
                    label: label.clone(),
                    value: match cell {
                        Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Cell::Gauge(c) => {
                            MetricValue::Gauge(f64::from_bits(c.load(Ordering::Relaxed)))
                        }
                        Cell::Histogram(c) => MetricValue::Histogram(Box::new(c.snapshot())),
                    },
                })
                .collect()
        }
        #[cfg(feature = "telemetry-off")]
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let r = Registry::new();
        let a = r.counter("fam", "x");
        let b = r.counter("fam", "x");
        a.inc();
        b.add(2);
        #[cfg(not(feature = "telemetry-off"))]
        {
            assert_eq!(a.get(), 3, "handles share the series cell");
            assert_eq!(b.get(), 3);
        }
        #[cfg(feature = "telemetry-off")]
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn noop_handles_are_inert() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.record(9);
        assert_eq!(h.snapshot().count, 0);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn gauge_stores_latest() {
        let r = Registry::new();
        let g = r.gauge("fps", "client-0");
        g.set(24.5);
        g.set(25.5);
        assert_eq!(g.get(), 25.5);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat", "detect");
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1, "zero bucket");
        assert_eq!(s.buckets[1], 1, "v=1");
        assert_eq!(s.buckets[2], 2, "v=2,3");
        assert!(s.quantile(0.0) <= s.quantile(0.5));
        assert!(s.quantile(0.5) <= s.quantile(1.0));
        assert_eq!(s.quantile(1.0), 1_000_000, "p100 clamps to exact max");
        // p50 (rank 4 of 7) falls in the v=2,3 bucket [2, 4): upper
        // bound 3, which is also the exact median.
        assert_eq!(s.quantile(0.5), 3);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("z", "1").inc();
        r.counter("a", "2").inc();
        r.gauge("m", "").set(1.0);
        let snap = r.snapshot();
        let names: Vec<_> = snap.iter().map(|m| m.family.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }
}
