//! `qosctl` — the softqos cockpit.
//!
//! A small operator CLI over the live management plane and the flight
//! recorder:
//!
//! * `hosts` — the processes a live manager has registered;
//! * `metrics` — one metrics snapshot pulled from the live stream;
//! * `tail` — follow violation-lifecycle events as the manager handles
//!   them;
//! * `record` — write the live stream into rotating `.qrec` segments;
//! * `replay` — decode a recording back into events (tolerant of torn
//!   tails and corruption — a crash mid-write costs the tail, never the
//!   recording);
//! * `report` — per-stage latency / MTTR table from a recording;
//! * `domains` — the federation tree (domain hierarchy and per-shard
//!   host counts) rebuilt from the discovery plane's `disc.*` gauges.
//!
//! Addresses are `uds:<path>`, `tcp:<host:port>`, or a bare socket
//! path. All subcommands speak the ordinary `qos-wire` protocol; the
//! manager treats the cockpit as just another telemetry subscriber with
//! drop-oldest backpressure, so a stalled `qosctl` can never wedge the
//! management plane.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use qos_core::prelude::*;
use qos_core::telemetry::record::DEFAULT_RING_BYTES;
use qos_core::telemetry::MetricSnapshot;

const USAGE: &str = "\
qosctl — softqos cockpit

usage: qosctl <command> [flags]

commands:
  hosts    --addr <a>                      registered processes + manager counters
  metrics  --addr <a> [--json]             one metrics snapshot from the live stream
  tail     --addr <a> [--for-ms N] [--jsonl]
                                           follow lifecycle events as they happen
  record   --addr <a> --out <dir> [--for-ms N]
           [--segment-bytes N] [--segments N]
                                           record the live stream to rotating segments
  replay   --in <file|dir> [--jsonl]       decode a recording back into events
  report   --in <file|dir>                 per-stage latency / MTTR table
  domains  --addr <a>                      federation tree from the discovery gauges

  <a> is uds:<path>, tcp:<host:port>, or a bare socket path.
  --in takes one .qrec file or a directory of qosctl-*.qrec segments.
";

/// Prefix used for segments written by `qosctl record` (and expected by
/// `replay`/`report` when pointed at a directory).
const SEGMENT_PREFIX: &str = "qosctl";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_addr(s: &str) -> SockAddr {
    if let Some(rest) = s.strip_prefix("uds:") {
        return SockAddr::Uds(PathBuf::from(rest));
    }
    if let Some(rest) = s.strip_prefix("tcp:") {
        return SockAddr::Tcp(rest.to_string());
    }
    if s.contains('/') {
        SockAddr::Uds(PathBuf::from(s))
    } else {
        SockAddr::Tcp(s.to_string())
    }
}

fn require_addr(args: &[String]) -> Result<SockAddr, String> {
    flag_value(args, "--addr")
        .map(|a| parse_addr(&a))
        .ok_or_else(|| "--addr is required".into())
}

fn for_ms(args: &[String], default_ms: u64) -> Duration {
    Duration::from_millis(
        flag_value(args, "--for-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Connect a subscriber, retrying briefly — the cockpit often races the
/// manager binding its socket.
fn tap_connect(
    addr: &SockAddr,
    subscriber: &str,
    want_events: bool,
    want_metrics: bool,
) -> Result<TelemetryTap, String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TelemetryTap::connect(addr, subscriber, want_events, want_metrics) {
            Ok(t) => return Ok(t),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("cannot reach manager at {addr}: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Pull batches until one carries a metrics snapshot.
fn first_snapshot(tap: &mut TelemetryTap) -> Result<(u64, Vec<MetricSnapshot>), String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match tap.next_batch(Duration::from_millis(250)) {
            Ok(Some(b)) => {
                if let Some(m) = b.metrics {
                    return Ok(m);
                }
            }
            Ok(None) => {}
            Err(e) => return Err(format!("stream failed: {e}")),
        }
    }
    Err("manager never published a metrics snapshot".into())
}

fn fields_str(fields: &[(String, f64)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn print_events_text(events: &[TraceEvent]) {
    for e in events {
        println!(
            "{:>12} corr={:016x} {:<12} {:<20} {} {}",
            e.at_us,
            e.corr,
            e.stage.name(),
            e.component,
            e.name,
            fields_str(&e.fields),
        );
    }
}

fn metric_value_str(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => format!("{c}"),
        MetricValue::Gauge(g) => format!("{g:.3}"),
        MetricValue::Histogram(h) => format!(
            "count={} p50={} p95={} max={}",
            h.count,
            h.quantile(0.50),
            h.quantile(0.95),
            h.max
        ),
    }
}

fn metrics_table(snapshot: &[MetricSnapshot]) -> String {
    let mut t = Table::new(&["metric", "label", "value"]);
    for m in snapshot {
        t.row(&[
            m.family.clone(),
            m.label.clone(),
            metric_value_str(&m.value),
        ]);
    }
    t.render()
}

fn cmd_hosts(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let mut tap = tap_connect(&addr, "qosctl-hosts", false, true)?;
    let (at_us, snapshot) = first_snapshot(&mut tap)?;
    let mut hosts = Table::new(&["process", "registered"]);
    let mut n = 0;
    for m in snapshot.iter().filter(|m| m.family == "live.registered") {
        hosts.row(&[m.label.clone(), metric_value_str(&m.value)]);
        n += 1;
    }
    println!("registered processes at {addr} (snapshot t={at_us}us):");
    if n == 0 {
        println!("  (none — or the manager runs without telemetry)");
    } else {
        print!("{}", hosts.render());
    }
    let live: Vec<&MetricSnapshot> = snapshot
        .iter()
        .filter(|m| m.family.starts_with("live.") && m.family != "live.registered")
        .collect();
    if !live.is_empty() {
        println!("\nmanager counters:");
        let mut t = Table::new(&["counter", "label", "value"]);
        for m in live {
            t.row(&[
                m.family.clone(),
                m.label.clone(),
                metric_value_str(&m.value),
            ]);
        }
        print!("{}", t.render());
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let mut tap = tap_connect(&addr, "qosctl-metrics", false, true)?;
    let (at_us, snapshot) = first_snapshot(&mut tap)?;
    if has_flag(args, "--json") {
        println!("{}", metrics_to_json(&snapshot));
    } else {
        println!("metrics at {addr} (snapshot t={at_us}us):");
        print!("{}", metrics_table(&snapshot));
    }
    Ok(())
}

fn cmd_tail(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let window = for_ms(args, u64::MAX / 2);
    let jsonl = has_flag(args, "--jsonl");
    let mut tap = tap_connect(&addr, "qosctl-tail", true, false)?;
    let deadline = Instant::now() + window;
    let mut last_seq = 0u64;
    while Instant::now() < deadline {
        let left = deadline.saturating_duration_since(Instant::now());
        match tap.next_batch(left.min(Duration::from_millis(250))) {
            Ok(Some(b)) => {
                if last_seq != 0 && b.seq > last_seq + 1 {
                    eprintln!(
                        "qosctl: {} batch(es) dropped by backpressure",
                        b.seq - last_seq - 1
                    );
                }
                last_seq = b.seq;
                if jsonl {
                    print!("{}", to_jsonl(&b.events));
                } else {
                    print_events_text(&b.events);
                }
            }
            Ok(None) => {}
            Err(e) => return Err(format!("stream failed: {e}")),
        }
    }
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let out = PathBuf::from(flag_value(args, "--out").ok_or("--out <dir> is required")?);
    let window = for_ms(args, 5_000);
    let seg_bytes: u64 = flag_value(args, "--segment-bytes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4 << 20);
    let max_segs: usize = flag_value(args, "--segments")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let writer = SegmentWriter::create(&out, SEGMENT_PREFIX, seg_bytes, max_segs)
        .map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let rec = FlightRecorder::with_writer(DEFAULT_RING_BYTES, writer);
    let mut tap = tap_connect(&addr, "qosctl-record", true, true)?;
    let deadline = Instant::now() + window;
    let (mut events, mut snapshots) = (0u64, 0u64);
    while Instant::now() < deadline {
        let left = deadline.saturating_duration_since(Instant::now());
        match tap.next_batch(left.min(Duration::from_millis(250))) {
            Ok(Some(b)) => {
                for e in &b.events {
                    rec.record_event(e);
                    events += 1;
                }
                if let Some((at_us, metrics)) = b.metrics {
                    rec.record_snapshot(at_us, &metrics);
                    snapshots += 1;
                }
            }
            Ok(None) => {}
            Err(e) => return Err(format!("stream failed: {e}")),
        }
    }
    rec.flush().map_err(|e| format!("flush failed: {e}"))?;
    eprintln!(
        "recorded {events} events + {snapshots} snapshots into {} segment(s) under {} \
         ({} write errors)",
        rec.segments().len(),
        out.display(),
        rec.write_errors(),
    );
    Ok(())
}

/// Load a recording from a single `.qrec` file or a directory of
/// `qosctl-*.qrec` segments.
fn load_recording(input: &Path) -> Result<Recording, String> {
    let rec = if input.is_dir() {
        read_recording_dir(input, SEGMENT_PREFIX)
    } else {
        read_recording(input)
    }
    .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    if rec.truncated {
        eprintln!("qosctl: recording has a torn tail (crash mid-write); prefix recovered");
    }
    if let Some(err) = &rec.corrupt {
        eprintln!("qosctl: recording corrupt past the recovered prefix: {err}");
    }
    Ok(rec)
}

fn require_input(args: &[String]) -> Result<Recording, String> {
    let input = PathBuf::from(flag_value(args, "--in").ok_or("--in <file|dir> is required")?);
    load_recording(&input)
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let rec = require_input(args)?;
    let events = rec.events();
    if has_flag(args, "--jsonl") {
        print!("{}", to_jsonl(&events));
    } else {
        print_events_text(&events);
        eprintln!(
            "{} events + {} snapshots from {} segment(s)",
            events.len(),
            rec.snapshots().len(),
            rec.segments
        );
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let rec = require_input(args)?;
    let events = rec.events();
    let lifecycles = rec.lifecycles();
    print!("{}", lifecycle_table(&lifecycles));
    println!(
        "{} events + {} snapshots from {} segment(s)",
        events.len(),
        rec.snapshots().len(),
        rec.segments
    );
    if let Some(snap) = rec.last_snapshot() {
        println!("\nlast metrics snapshot (t={}us):", snap.at_us);
        print!("{}", metrics_table(&snap.metrics));
    }
    Ok(())
}

/// One domain as the discovery gauges describe it.
#[derive(Debug, Default, Clone, Copy)]
struct DomainRow {
    parent: Option<u32>,
    is_root: bool,
    hosts: Option<f64>,
}

/// Rebuild the federation tree from `disc.domain.parent` /
/// `disc.shard.hosts` gauges (labels are `d<id>`; a parent of -1 marks
/// the root). Returns rows keyed by domain id.
fn federation_rows(snapshot: &[MetricSnapshot]) -> std::collections::BTreeMap<u32, DomainRow> {
    let mut rows: std::collections::BTreeMap<u32, DomainRow> = std::collections::BTreeMap::new();
    for m in snapshot {
        let MetricValue::Gauge(g) = &m.value else {
            continue;
        };
        let Some(id) = m
            .label
            .strip_prefix('d')
            .and_then(|r| r.parse::<u32>().ok())
        else {
            continue;
        };
        let row = rows.entry(id).or_default();
        match m.family.as_str() {
            "disc.domain.parent" => {
                if *g < 0.0 {
                    row.is_root = true;
                } else {
                    row.parent = Some(*g as u32);
                }
            }
            "disc.shard.hosts" => row.hosts = Some(*g),
            _ => {}
        }
    }
    rows
}

fn print_domain_subtree(
    rows: &std::collections::BTreeMap<u32, DomainRow>,
    children: &std::collections::BTreeMap<u32, Vec<u32>>,
    id: u32,
    depth: usize,
) {
    let row = rows.get(&id).copied().unwrap_or_default();
    let hosts = row
        .hosts
        .map(|h| format!("{h:.0} host(s)"))
        .unwrap_or_else(|| "?".into());
    println!(
        "{:indent$}d{id}{} — {hosts}",
        "",
        if row.is_root { " [root]" } else { "" },
        indent = depth * 2,
    );
    for &c in children.get(&id).map(Vec::as_slice).unwrap_or_default() {
        print_domain_subtree(rows, children, c, depth + 1);
    }
}

fn cmd_domains(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let mut tap = tap_connect(&addr, "qosctl-domains", false, true)?;
    let (at_us, snapshot) = first_snapshot(&mut tap)?;
    let rows = federation_rows(&snapshot);
    println!("federation at {addr} (snapshot t={at_us}us):");
    if rows.is_empty() {
        println!("  (no discovery gauges — is a discovery server publishing here?)");
    } else {
        let mut children: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (&id, row) in &rows {
            if let Some(p) = row.parent {
                children.entry(p).or_default().push(id);
            }
        }
        for (&id, row) in &rows {
            // Roots, plus any domain whose parent the gauges never named
            // (a partial snapshot mid-registration).
            if row.is_root || row.parent.is_none() {
                print_domain_subtree(&rows, &children, id, 1);
            }
        }
    }
    let disc: Vec<&MetricSnapshot> = snapshot
        .iter()
        .filter(|m| m.family.starts_with("disc.") && matches!(m.value, MetricValue::Counter(_)))
        .collect();
    if !disc.is_empty() {
        println!("\ndiscovery counters:");
        let mut t = Table::new(&["counter", "label", "value"]);
        for m in disc {
            t.row(&[
                m.family.clone(),
                m.label.clone(),
                metric_value_str(&m.value),
            ]);
        }
        print!("{}", t.render());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "hosts" => cmd_hosts(rest),
        "metrics" => cmd_metrics(rest),
        "tail" => cmd_tail(rest),
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "report" => cmd_report(rest),
        "domains" => cmd_domains(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qosctl: {e}");
            ExitCode::from(2)
        }
    }
}
