//! Two-OS-process cockpit smoke test: a live manager in this process,
//! real `qosctl record` and `qosctl tail` child processes subscribed
//! over a Unix-domain socket. The acceptance bar is end-to-end fidelity:
//! the lifecycle table replayed from the recording and the one rebuilt
//! from `tail --jsonl` output must be identical to each other — and,
//! when telemetry is compiled in, to the manager's own local telemetry.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use qos_core::prelude::*;
use qos_core::repository::prelude::Registration;

/// How long the children stay subscribed. Long enough for several
/// publish ticks (100 ms cadence) and at least one metrics snapshot
/// (500 ms cadence) after the violations land.
const WINDOW_MS: u64 = 4_000;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qosctl-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Drive the fps sensor below its 23 fps floor with manual timestamps
/// (frames 200 ms apart => 5 fps) and push the resulting violation
/// reports at the manager.
fn force_violations(p: &mut LiveProcess) -> usize {
    let fps = p.sensors.fps().expect("video pipeline has an fps sensor");
    let mut now = 0u64;
    let mut alarms = Vec::new();
    for _ in 0..20 {
        now += 200_000;
        alarms.extend(fps.frame_displayed(now));
    }
    let mut generated = 0;
    for a in &alarms {
        for pix in p.coordinator.on_alarm(a) {
            if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                p.report(r);
                generated += 1;
            }
        }
    }
    generated
}

#[test]
fn record_tail_replay_see_the_same_lifecycles() {
    let dir = scratch_dir("roundtrip");
    let sock = dir.join("mgr.sock");
    let rec_dir = dir.join("rec");
    let addr_arg = format!("uds:{}", sock.display());

    let t = Telemetry::enabled();
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(sock.clone())))
        .telemetry(&t)
        .spawn()
        .expect("spawn UDS manager");

    // Real OS-process cockpit children, one recording and one tailing.
    let bin = env!("CARGO_BIN_EXE_qosctl");
    let for_ms = format!("{WINDOW_MS}");
    let mut rec_child = Command::new(bin)
        .args([
            "record",
            "--addr",
            &addr_arg,
            "--out",
            &rec_dir.display().to_string(),
            "--for-ms",
            &for_ms,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qosctl record");
    let tail_child = Command::new(bin)
        .args(["tail", "--addr", &addr_arg, "--for-ms", &for_ms, "--jsonl"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qosctl tail");

    // Both children must be subscribed before any violation fires, so
    // each observes the complete event stream.
    let deadline = Instant::now() + Duration::from_secs(10);
    while mgr.stats.subscribers.load(Ordering::Relaxed) < 2 {
        assert!(
            Instant::now() < deadline,
            "children never subscribed (subscribers={})",
            mgr.stats.subscribers.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A managed process connects over the same socket and misbehaves.
    let (repo, mut agent) = standard_live_repo();
    let transport =
        SocketTransport::connect_retry(SockAddr::Uds(sock.clone()), Duration::from_secs(5))
            .expect("connect managed process");
    let registration = Registration {
        process: "smoke:p1".into(),
        executable: "VideoApplication".into(),
        application: "VideoPlayback".into(),
        role: "*".into(),
    };
    let mut p = LiveProcess::start(&registration, &repo, &mut agent, Box::new(transport))
        .expect("manager reachable over UDS");
    assert!(force_violations(&mut p) >= 1, "no violation generated");
    assert!(p.sync(), "manager drains the violation reports");

    let rec_out = rec_child.wait().expect("record child exits");
    let tail_out = tail_child
        .wait_with_output()
        .expect("tail child exits with output");
    assert!(rec_out.success(), "qosctl record failed");
    assert!(
        tail_out.status.success(),
        "qosctl tail failed: {}",
        String::from_utf8_lossy(&tail_out.stderr)
    );
    mgr.shutdown();

    // Rebuild the lifecycle view from each of the three vantage points.
    let tail_events =
        parse_jsonl(&String::from_utf8_lossy(&tail_out.stdout)).expect("tail emits valid JSONL");
    assert!(
        tail_events.iter().any(|e| e.stage == Stage::Detect),
        "tail never observed a Detect event"
    );
    let recording = read_recording_dir(&rec_dir, "qosctl").expect("read recording");
    assert!(!recording.truncated, "clean shutdown leaves no torn tail");
    assert!(recording.corrupt.is_none(), "recording must decode cleanly");
    assert!(
        recording.last_snapshot().is_some(),
        "recording must carry at least one metrics snapshot"
    );

    let tail_table = lifecycle_table(&reconstruct(&tail_events));
    let replay_table = lifecycle_table(&recording.lifecycles());
    assert!(tail_table.contains("MTTR"));
    assert_eq!(
        tail_table, replay_table,
        "replayed recording must reproduce the tailed per-stage stats"
    );

    // With telemetry compiled in, the manager's own local trace agrees
    // bit-for-bit with what the remote cockpit saw.
    if t.is_enabled() {
        let mgr_table = lifecycle_table(&t.lifecycles());
        assert_eq!(
            mgr_table, tail_table,
            "cockpit view must match the manager's local telemetry"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_renders_lifecycle_table_from_recording() {
    let dir = scratch_dir("report");
    let rec_path = dir.join("ring.qrec");

    // Synthesize a complete lifecycle straight into a ring recorder and
    // dump it — `qosctl report` must render per-stage stats from it.
    let rec = FlightRecorder::new(1 << 20);
    let mk = |at_us: u64, stage: Stage| TraceEvent {
        at_us,
        corr: 42,
        stage,
        component: "hm:h0".into(),
        name: "example1".into(),
        fields: Vec::new(),
    };
    rec.record_event(&mk(0, Stage::Detect));
    rec.record_event(&mk(120, Stage::Report));
    rec.record_event(&mk(300, Stage::Diagnose));
    rec.record_event(&mk(340, Stage::Adapt));
    rec.record_event(&mk(5_340, Stage::BackInSpec));
    rec.record_snapshot(6_000, &[]);
    rec.dump(&rec_path).expect("dump ring");

    let out = Command::new(env!("CARGO_BIN_EXE_qosctl"))
        .args(["report", "--in", &rec_path.display().to_string()])
        .output()
        .expect("run qosctl report");
    assert!(out.status.success(), "qosctl report failed");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violation lifecycles"));
    assert!(text.contains("MTTR"));
    assert!(text.contains("1 completed, 0 still open"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn domains_renders_federation_tree_from_discovery_gauges() {
    if !Telemetry::enabled().is_enabled() {
        return; // probe-free build: no gauges to render
    }
    let dir = scratch_dir("domains");
    let sock = dir.join("mgr.sock");
    let addr_arg = format!("uds:{}", sock.display());

    // A live manager publishes the stream; a discovery core sharing its
    // telemetry handle mirrors the federation gauges into it — the same
    // wiring the simulated testbed and the socket daemon use.
    let t = Telemetry::enabled();
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(sock.clone())))
        .telemetry(&t)
        .spawn()
        .expect("spawn UDS manager");
    let mut core = DiscoveryCore::new(Dur::from_secs(4)).with_telemetry(&t);
    use qos_core::wire::messages::{DiscAnnounceMsg, DiscDomainRegisterMsg};
    let reg = |domain: u32, parent: Option<u32>| DiscDomainRegisterMsg {
        domain: DomainId(domain),
        manager: Endpoint::new(HostId(100 + domain), DOMAIN_MANAGER_PORT),
        parent: parent.map(DomainId),
    };
    core.on_domain_register(reg(0, None));
    core.on_domain_register(reg(1, Some(0)));
    core.on_domain_register(reg(2, Some(0)));
    for h in 1..=4u32 {
        core.on_announce(
            0,
            DiscAnnounceMsg {
                host: HostId(h),
                manager: Endpoint::new(HostId(h), HOST_MANAGER_PORT),
                epoch: 1,
            },
        );
    }

    let out = Command::new(env!("CARGO_BIN_EXE_qosctl"))
        .args(["domains", "--addr", &addr_arg])
        .output()
        .expect("run qosctl domains");
    drop(mgr);
    assert!(
        out.status.success(),
        "qosctl domains failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("d0 [root]"), "root rendered:\n{text}");
    assert!(text.contains("d1"), "leaf d1 rendered:\n{text}");
    assert!(text.contains("d2"), "leaf d2 rendered:\n{text}");
    // The four announced hosts partition across the two leaves; each
    // leaf line carries its shard count and the counts sum to 4.
    let shard_total: u32 = text
        .lines()
        .filter(|l| {
            let lt = l.trim_start();
            lt.starts_with("d1 ") || lt.starts_with("d2 ")
        })
        .filter_map(|l| {
            l.split("— ")
                .nth(1)?
                .split_whitespace()
                .next()?
                .parse::<u32>()
                .ok()
        })
        .sum();
    assert_eq!(
        shard_total, 4,
        "leaf shard counts sum to the host count:\n{text}"
    );
    assert!(
        text.contains("disc.assignments"),
        "discovery counters listed:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
