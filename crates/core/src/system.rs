//! Assembly of the complete managed system: hosts, network, the video
//! pipeline, load generators, QoS host managers, the domain manager, and
//! policy distribution through the repository + policy agent — the whole
//! architecture of Figures 1 and 2 of the paper, wired together.

use std::collections::HashMap;

use qos_apps::prelude::*;
use qos_manager::prelude::*;
use qos_repository::prelude::*;
use qos_sim::prelude::*;
use qos_telemetry::Telemetry;

/// Which CPU resource-management strategy the host managers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuPolicy {
    /// Time-sharing user-priority boosts (the prototype's default).
    TsBoost,
    /// Real-time CPU units.
    RtUnits,
}

/// Administrative rule variant (Section 2's constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminRules {
    /// Equal treatment: all applications degrade equally.
    FairShare,
    /// Weighted by user role: important applications win.
    Differentiated,
}

/// Configuration of the standard testbed.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Deploy QoS host managers (and the CPU resource manager)?
    pub managed: bool,
    /// Deploy the QoS Domain Manager (needed for cross-host faults)?
    pub domain: bool,
    /// CPU strategy for host managers.
    pub cpu_policy: CpuPolicy,
    /// Administrative rule variant.
    pub admin: AdminRules,
    /// Stream rate offered by the server (fps).
    pub stream_fps: f64,
    /// Client decode cost per frame.
    pub decode_cost: Dur,
    /// Frame size on the wire.
    pub frame_bytes: u32,
    /// Number of video clients on the client host (they share one
    /// server each at `stream_fps`).
    pub clients: usize,
    /// Weights assigned to clients (cycled; all 1.0 if empty).
    pub client_weights: Vec<f64>,
    /// Role-scoped frame-rate targets per client (±2 tolerance). When
    /// non-empty, client `i` runs under role `role-i` and the repository
    /// holds a per-role policy — the paper's "different users have
    /// different QoS requirements for the same application". Empty: all
    /// clients share the standard Example 1 policy (25 ± 2).
    pub client_targets: Vec<f64>,
    /// Spawn the baseline background daemons (load ≈ 0.7)?
    pub baseline_daemons: bool,
    /// Disable the client's socket-buffer sensor (ablation for E6).
    pub disable_buffer_sensor: bool,
    /// Proactive QoS (Section 10): install the buffer-growth trend
    /// sensor, distribute the proactive policy and load the proactive
    /// rules into the host managers.
    pub proactive: bool,
    /// Overload handling (Section 10): load the overload rules so the
    /// managers direct application-level adaptation (quality actuator)
    /// when no allocation can satisfy the requirement.
    pub overload_adaptation: bool,
    /// Distribute policies through an in-simulation Policy Agent process
    /// on the management host (registration request + reply over the
    /// network) instead of resolving them at build time. The full
    /// Figure 2 path.
    pub in_sim_distribution: bool,
    /// Run the discovery plane: a Discovery Server on the management
    /// host assigns the client and server hosts to the domain manager
    /// (which joins the federation as `d1`). Host managers are built
    /// with *no* domain endpoint and must discover it; lease expiry and
    /// re-announce replace hand-wiring. Requires `domain`.
    pub discovery: bool,
    /// Telemetry handle shared by every component (inert by default):
    /// the world samples `sim.*` series, clients mint violation
    /// correlation ids and emit lifecycle stage events, managers emit
    /// Diagnose/Adapt events and mirror their counters.
    pub telemetry: Telemetry,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 1,
            managed: true,
            domain: false,
            cpu_policy: CpuPolicy::TsBoost,
            admin: AdminRules::FairShare,
            stream_fps: 30.0,
            decode_cost: Dur::from_micros(20_000),
            frame_bytes: 12_000,
            clients: 1,
            client_weights: Vec::new(),
            client_targets: Vec::new(),
            baseline_daemons: true,
            disable_buffer_sensor: false,
            proactive: false,
            overload_adaptation: false,
            in_sim_distribution: false,
            discovery: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The assembled system.
pub struct Testbed {
    /// The simulation world.
    pub world: World,
    /// Host running the video client(s) and competing load.
    pub client_host: HostId,
    /// Host running the video server(s).
    pub server_host: HostId,
    /// Management host (domain manager).
    pub mgmt_host: HostId,
    /// Client process(es).
    pub clients: Vec<Pid>,
    /// Server process(es), parallel to `clients`.
    pub servers: Vec<Pid>,
    /// Client-side host manager (if managed).
    pub client_hm: Option<Pid>,
    /// Server-side host manager (if managed).
    pub server_hm: Option<Pid>,
    /// Domain manager (if enabled).
    pub domain_mgr: Option<Pid>,
    /// The shared data-path switch hop between client and server.
    pub primary_hop: HopId,
    /// The pre-provisioned backup path.
    pub backup_hop: HopId,
    /// The repository the policies were distributed from.
    pub repository: Repository,
    /// The configuration this testbed was built from (kept so crashed
    /// components can be rebuilt identically on restart).
    pub cfg: TestbedConfig,
}

/// Build one QoS Host Manager as configured (shared between initial
/// assembly and crash-restart).
fn make_host_manager(cfg: &TestbedConfig, domain_ep: Option<Endpoint>) -> QosHostManager {
    let mut hm = QosHostManager::new(domain_ep).with_cpu_manager(match cfg.cpu_policy {
        CpuPolicy::TsBoost => CpuManager::ts_default(),
        CpuPolicy::RtUnits => CpuManager::new(CpuStrategy::RtUnits {
            // 40 ms units (two decoded frames per second of budget):
            // fine enough that a ±2 fps band always contains a
            // reachable allocation.
            rtpri: 10,
            unit: Dur::from_millis(40),
            initial_units: 4,
            max_units: 22,
        }),
    });
    if let AdminRules::Differentiated = cfg.admin {
        hm.load_rules(&host_rules_differentiated());
    }
    if cfg.proactive {
        hm.load_rules(proactive_rules());
    }
    if cfg.overload_adaptation {
        hm.load_rules(overload_rules());
    }
    hm.with_telemetry(&cfg.telemetry)
}

impl Testbed {
    /// Build the standard two-host-plus-management testbed.
    pub fn build(cfg: &TestbedConfig) -> Testbed {
        let mut world = World::new(cfg.seed);
        world.set_telemetry(&cfg.telemetry);
        let client_host = world.add_host("client", 1 << 16);
        let server_host = world.add_host("server", 1 << 16);
        let mgmt_host = world.add_host("mgmt", 1 << 16);

        // Data path: client <-> switch <-> server, with an idle backup
        // path the domain manager can fail over to. Management traffic
        // uses dedicated links so control survives data-path congestion.
        let primary_hop = world.net_mut().add_hop(
            "data-switch",
            10_000_000.0,
            Dur::from_millis(1),
            Dur::from_millis(500),
        );
        let backup_hop = world.net_mut().add_hop(
            "backup-switch",
            10_000_000.0,
            Dur::from_millis(2),
            Dur::from_millis(500),
        );
        let mgmt_c = world.net_mut().add_hop(
            "mgmt-client",
            1_000_000.0,
            Dur::from_millis(1),
            Dur::from_secs(1),
        );
        let mgmt_s = world.net_mut().add_hop(
            "mgmt-server",
            1_000_000.0,
            Dur::from_millis(1),
            Dur::from_secs(1),
        );
        world
            .net_mut()
            .set_route_symmetric(client_host, server_host, vec![primary_hop]);
        world
            .net_mut()
            .set_route_symmetric(client_host, mgmt_host, vec![mgmt_c]);
        world
            .net_mut()
            .set_route_symmetric(server_host, mgmt_host, vec![mgmt_s]);

        // --- Policy distribution (Section 6): the repository holds the
        // information model and the Example 1 policy; the Policy Agent
        // resolves it for each registering client.
        let model = {
            let mut m = qos_policy::model::InfoModel::new();
            let fps = m.add_sensor("fps_sensor", &["frame_rate"]);
            let jitter = m.add_sensor("jitter_sensor", &["jitter_rate"]);
            let buffer = m.add_sensor("buffer_sensor", &["buffer_size"]);
            let mut sensors = vec![fps, jitter, buffer];
            if cfg.proactive {
                sensors.push(m.add_sensor("trend_sensor", &["buffer_growth"]));
            }
            let exec = m.add_executable("VideoApplication", &sensors);
            m.add_application("VideoPlayback", &[exec]);
            m
        };
        let mut repository = Repository::new();
        repository.store_model(&model).expect("fresh repository");
        if cfg.client_targets.is_empty() {
            repository
                .store_policy(&StoredPolicy {
                    name: "NotifyQoSViolation".into(),
                    application: "VideoPlayback".into(),
                    executable: "VideoApplication".into(),
                    role: "*".into(),
                    source: EXAMPLE1_SOURCE.into(),
                    enabled: true,
                })
                .expect("fresh repository");
        } else {
            // One role-scoped policy per client target.
            for (i, &target) in cfg.client_targets.iter().enumerate() {
                repository
                    .store_policy(&StoredPolicy {
                        name: format!("NotifyQoSViolation-role-{i}"),
                        application: "VideoPlayback".into(),
                        executable: "VideoApplication".into(),
                        role: format!("role-{i}"),
                        source: role_policy_source(&format!("NotifyQoSViolation_role_{i}"), target),
                        enabled: true,
                    })
                    .expect("fresh repository");
            }
        }
        if cfg.proactive {
            repository
                .store_policy(&StoredPolicy {
                    name: "ProactiveBufferPressure".into(),
                    application: "VideoPlayback".into(),
                    executable: "VideoApplication".into(),
                    role: "*".into(),
                    source: PROACTIVE_SOURCE.into(),
                    enabled: true,
                })
                .expect("fresh repository");
        }
        let mut agent = PolicyAgent::new();
        let agent_ep = cfg
            .in_sim_distribution
            .then(|| Endpoint::new(mgmt_host, POLICY_AGENT_PORT));

        // --- Management plane.
        let domain_ep = Endpoint::new(mgmt_host, DOMAIN_MANAGER_PORT);
        let mut client_hm = None;
        let mut server_hm = None;
        let mut domain_mgr = None;
        if cfg.managed {
            let disc_ep = Endpoint::new(mgmt_host, DISCOVERY_PORT);
            let mk_hm = |salt: u64| {
                let hm =
                    make_host_manager(cfg, (cfg.domain && !cfg.discovery).then_some(domain_ep));
                if cfg.discovery {
                    hm.with_discovery(disc_ep, cfg.seed ^ salt)
                } else {
                    hm
                }
            };
            // Managers run in the RT class above every managed workload
            // (the analogue of Solaris's SYS-class daemons): the
            // management plane must keep running even when the
            // allocations it granted saturate the CPU, or it could never
            // take an over-grant back.
            let mgr_class = SchedClass::RealTime {
                rtpri: 50,
                budget: None,
            };
            client_hm = Some(
                world.spawn(
                    client_host,
                    ProcConfig::new("QoSHostManager")
                        .class(mgr_class)
                        .port(HOST_MANAGER_PORT, 1 << 20),
                    mk_hm(1),
                ),
            );
            server_hm = Some(
                world.spawn(
                    server_host,
                    ProcConfig::new("QoSHostManager")
                        .class(mgr_class)
                        .port(HOST_MANAGER_PORT, 1 << 20),
                    mk_hm(2),
                ),
            );
            if cfg.domain {
                let mut hms = HashMap::new();
                if cfg.discovery {
                    // The registry stays empty here: the discovery
                    // server pins both managed hosts to domain `d1`
                    // and the domain manager learns its shard (and the
                    // host managers their domain manager) at run time.
                    let mut server = qos_discovery::DiscoveryServer::new(DISCOVERY_LEASE)
                        .with_telemetry(&cfg.telemetry);
                    server.core.pin(client_host, DomainId(1));
                    server.core.pin(server_host, DomainId(1));
                    world.spawn(
                        mgmt_host,
                        ProcConfig::new("DiscoveryServer")
                            .class(SchedClass::RealTime {
                                rtpri: 50,
                                budget: None,
                            })
                            .port(DISCOVERY_PORT, 1 << 20),
                        server,
                    );
                } else {
                    hms.insert(client_host, Endpoint::new(client_host, HOST_MANAGER_PORT));
                    hms.insert(server_host, Endpoint::new(server_host, HOST_MANAGER_PORT));
                }
                let mut dm = QosDomainManager::new(hms).with_telemetry(&cfg.telemetry);
                if cfg.discovery {
                    dm = dm.with_federation(DomainId(1), None, disc_ep);
                }
                dm.add_backup_route(client_host, server_host, vec![backup_hop]);
                domain_mgr = Some(
                    world.spawn(
                        mgmt_host,
                        ProcConfig::new("QoSDomainManager")
                            .class(SchedClass::RealTime {
                                rtpri: 50,
                                budget: None,
                            })
                            .port(DOMAIN_MANAGER_PORT, 1 << 20),
                        dm,
                    ),
                );
            }
        }

        if cfg.in_sim_distribution {
            // The Policy Agent as a process on the management host,
            // serving a replica of the repository (Figure 2).
            world.spawn(
                mgmt_host,
                ProcConfig::new("PolicyAgent")
                    .class(SchedClass::RealTime {
                        rtpri: 50,
                        budget: None,
                    })
                    .port(POLICY_AGENT_PORT, 1 << 20),
                PolicyAgentProcess::new(repository.clone()),
            );
        }

        // --- Workloads.
        if cfg.baseline_daemons {
            // The Figure 3 baseline of ~0.70 is the video session itself
            // (the decoding client contributes ~0.6 runnable) plus light
            // system daemons.
            for _ in 0..3 {
                world.spawn(
                    client_host,
                    ProcConfig::new("daemon"),
                    BackgroundDaemon { duty: 0.04 },
                );
            }
        }
        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for i in 0..cfg.clients {
            let video_port = VIDEO_PORT + i as Port;
            let weight = if cfg.client_weights.is_empty() {
                1.0
            } else {
                cfg.client_weights[i % cfg.client_weights.len()]
            };
            let role = if cfg.client_targets.is_empty() {
                "*".to_string()
            } else {
                format!("role-{i}")
            };
            // The agent resolves the client's policies, exactly as a
            // process registration would (Section 6.2). With in-sim
            // distribution, the client instead registers over the
            // network at startup and starts with no policies.
            let policies = if cfg.in_sim_distribution {
                Vec::new()
            } else {
                let resolution = agent.register(
                    &repository,
                    &Registration {
                        process: format!("client-{i}"),
                        executable: "VideoApplication".into(),
                        application: "VideoPlayback".into(),
                        role: role.clone(),
                    },
                );
                assert!(resolution.errors.is_empty(), "policy delivery failed");
                resolution.policies
            };
            // Servers spawn first so clients can name them as upstream.
            let server_pid = Pid {
                host: server_host,
                local: world_proc_count(&world, server_host),
            };
            let client_cfg = VideoClientConfig {
                video_port,
                role,
                proactive: cfg.proactive,
                policy_agent: agent_ep,
                decode_cost: cfg.decode_cost,
                host_manager: cfg
                    .managed
                    .then_some(Endpoint::new(client_host, HOST_MANAGER_PORT)),
                upstream: Some(Upstream {
                    host: server_host,
                    pid: server_pid,
                }),
                weight,
                telemetry: cfg.telemetry.clone(),
                ..VideoClientConfig::default()
            };
            let client_logic = VideoClient::new(client_cfg, policies);
            if cfg.disable_buffer_sensor {
                client_logic
                    .sensors()
                    .buffer()
                    .expect("standard video sensors")
                    .sensor
                    .set_enabled(false);
            }
            // A period-accurate kernel socket buffer (~64 KB, five
            // frames): deep userspace backlogs did not exist in the
            // prototype, and bounding the backlog keeps catch-up bursts
            // from reading as over-achievement.
            let client = world.spawn(
                client_host,
                ProcConfig::new("VideoApplication").port(video_port, 1 << 16),
                client_logic,
            );
            let server = world.spawn(
                server_host,
                ProcConfig::new("VideoServer"),
                VideoServer::new(VideoServerConfig {
                    client: Endpoint::new(client_host, video_port),
                    fps: cfg.stream_fps,
                    frame_bytes: cfg.frame_bytes,
                    cpu_per_frame: Dur::from_micros(2_000),
                    burst: 1,
                }),
            );
            debug_assert_eq!(server, server_pid, "upstream pid prediction");
            clients.push(client);
            servers.push(server);
        }

        Testbed {
            world,
            client_host,
            server_host,
            mgmt_host,
            clients,
            servers,
            client_hm,
            server_hm,
            domain_mgr,
            primary_hop,
            backup_hop,
            repository,
            cfg: cfg.clone(),
        }
    }

    /// Crash-and-restart a QoS Host Manager mid-run: the old process dies
    /// (losing its registry, working-memory facts and allocation
    /// bookkeeping) and a fresh manager binds the same well-known port.
    /// Heartbeating clients repair the registry within one
    /// re-registration period. Returns the new manager pid, or `None` if
    /// `host` has no manager.
    pub fn restart_host_manager(&mut self, host: HostId) -> Option<Pid> {
        let old = if host == self.client_host {
            self.client_hm
        } else if host == self.server_host {
            self.server_hm
        } else {
            None
        }?;
        // Kill first: death releases the well-known port for the
        // replacement to bind.
        self.world.kill(old);
        let domain_ep = Endpoint::new(self.mgmt_host, DOMAIN_MANAGER_PORT);
        let hm = make_host_manager(
            &self.cfg,
            (self.cfg.domain && !self.cfg.discovery).then_some(domain_ep),
        );
        let hm = if self.cfg.discovery {
            // Fresh manager, fresh discovery epoch: it re-announces and
            // is re-assigned rather than inheriting stale bindings.
            hm.with_discovery(
                Endpoint::new(self.mgmt_host, DISCOVERY_PORT),
                self.cfg.seed ^ (0x10 + host.0 as u64),
            )
        } else {
            hm
        };
        let new = self.world.spawn(
            host,
            ProcConfig::new("QoSHostManager")
                .class(SchedClass::RealTime {
                    rtpri: 50,
                    budget: None,
                })
                .port(HOST_MANAGER_PORT, 1 << 20),
            hm,
        );
        if host == self.client_host {
            self.client_hm = Some(new);
        } else {
            self.server_hm = Some(new);
        }
        Some(new)
    }

    /// Mean displayed fps of client `i` from `from` onward, from the
    /// recorded per-poll series. Robust for steady playback; for bursty
    /// regimes prefer displayed-count deltas ([`Testbed::displayed`]).
    pub fn client_fps(&self, i: usize, from: SimTime) -> f64 {
        let c: &VideoClient = self
            .world
            .logic(self.clients[i])
            .expect("client logic type");
        c.stats.fps_series.mean_from(from)
    }

    /// Total frames client `i` has displayed so far. Deltas of this count
    /// give unbiased throughput over any window.
    pub fn displayed(&self, i: usize) -> u64 {
        self.client(i).stats.displayed
    }

    /// The client logic, for detailed inspection.
    pub fn client(&self, i: usize) -> &VideoClient {
        self.world
            .logic(self.clients[i])
            .expect("client logic type")
    }

    /// The client-side host manager's statistics.
    pub fn client_hm_stats(&self) -> Option<HostMgrStats> {
        let pid = self.client_hm?;
        self.world.logic::<QosHostManager>(pid).map(|h| h.stats)
    }

    /// The domain manager's decision log.
    pub fn domain_actions(&self) -> Vec<DomainAction> {
        self.domain_mgr
            .and_then(|pid| self.world.logic::<QosDomainManager>(pid))
            .map(|d| d.stats.actions.clone())
            .unwrap_or_default()
    }
}

/// Number of processes already spawned on `host` (to predict the next
/// pid).
fn world_proc_count(world: &World, host: HostId) -> u32 {
    // Probe pids upward until an unknown one is found.
    let mut n = 0;
    while world
        .host(host)
        .proc_state(Pid { host, local: n })
        .is_some()
    {
        n += 1;
    }
    n
}

/// The proactive policy (Section 10): violated while the communication
/// buffer sits more than half full — frames are accumulating faster than
/// they are consumed, a leading indicator that crosses *before* the
/// (3-second-windowed) frame rate leaves specification.
pub const PROACTIVE_SOURCE: &str = "oblig ProactiveBufferPressure {     subject (...)/VideoApplication/qosl_coordinator     target buffer_sensor, (...)QoSHostManager     on not (buffer_size < 36000)     do buffer_sensor->read(out buffer_size);        (...)/QoSHostManager->notify(buffer_size); }";

/// An Example-1-shaped policy with a role-specific frame-rate target.
pub fn role_policy_source(name: &str, target: f64) -> String {
    format!(
        "oblig {name} {{ \
         subject (...)/VideoApplication/qosl_coordinator \
         target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
         on not (frame_rate = {target}(+2)(-2) AND jitter_rate < 1.25) \
         do fps_sensor->read(out frame_rate); \
            jitter_sensor->read(out jitter_rate); \
            buffer_sensor->read(out buffer_size); \
            (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }}"
    )
}

/// The paper's Example 1 policy, source form (stored in the repository
/// and distributed by the agent).
pub const EXAMPLE1_SOURCE: &str = "oblig NotifyQoSViolation { \
    subject (...)/VideoApplication/qosl_coordinator \
    target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
    on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25) \
    do fps_sensor->read(out frame_rate); \
       jitter_sensor->read(out jitter_rate); \
       buffer_sensor->read(out buffer_size); \
       (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_assembles_and_streams() {
        let cfg = TestbedConfig {
            seed: 3,
            managed: true,
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(&cfg);
        tb.world.run_for(Dur::from_secs(20));
        let fps = tb.client_fps(0, SimTime::from_micros(5_000_000));
        assert!(fps > 25.0, "baseline-loaded managed client: {fps}");
        assert!(tb.client(0).stats.received > 400);
    }

    #[test]
    fn unmanaged_testbed_has_no_managers() {
        let cfg = TestbedConfig {
            managed: false,
            ..TestbedConfig::default()
        };
        let tb = Testbed::build(&cfg);
        assert!(tb.client_hm.is_none());
        assert!(tb.server_hm.is_none());
        assert!(tb.domain_mgr.is_none());
        assert!(tb.client_hm_stats().is_none());
    }

    #[test]
    fn policy_distribution_reaches_coordinator() {
        // The coordinator loads its policies during process start-up, so
        // let the world run briefly before inspecting.
        let mut tb = Testbed::build(&TestbedConfig::default());
        tb.world.run_for(Dur::from_millis(10));
        assert_eq!(tb.client(0).coordinator().policy_count(), 1);
        assert_eq!(tb.client(0).coordinator().global_conditions().len(), 3);
    }
}
