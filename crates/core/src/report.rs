//! Plain-text table formatting for the experiment binaries (the rows and
//! series the paper's evaluation reports).

/// A simple aligned-column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float to a fixed number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["load", "fps"]);
        t.row(&[f(0.7, 2), f(28.31, 1)]);
        t.row(&[f(10.0, 2), f(4.2, 1)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("load"));
        assert!(lines[2].ends_with("28.3"));
        assert!(lines[3].ends_with("4.2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".to_string()]);
    }
}
