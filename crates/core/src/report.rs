//! Plain-text table formatting for the experiment binaries (the rows and
//! series the paper's evaluation reports), plus the human-readable
//! telemetry summary and trace/metrics file writers.

use qos_telemetry::{
    stage_latencies, to_chrome_trace, to_jsonl, Lifecycle, MetricValue, Telemetry,
};

/// A simple aligned-column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float to a fixed number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Headline counter families surfaced in [`telemetry_summary`]: the
/// write-only stats the fault layer and the managers keep are mirrored
/// into the registry under these names.
const HEADLINE_COUNTERS: [&str; 13] = [
    "sim.fault.msgs_dropped",
    "sim.fault.msgs_duplicated",
    "sim.fault.msgs_delayed",
    "sim.fault.kills",
    "live.reports_dropped",
    "live.reconnects",
    "live.decode_errors",
    "live.telemetry_dropped",
    "live.flush.deadline_hits",
    "wire.batch.frames",
    "dm.late_replies",
    "hm.liveness_reaps",
    "hm.unhandled",
];

/// Histogram families surfaced in [`telemetry_summary`] alongside the
/// headline counters (rendered as count/p50/p95/max).
const HEADLINE_HISTOGRAMS: [&str; 1] = ["wire.batch.msgs_per_frame"];

/// Render the per-stage latency + MTTR table for a set of reconstructed
/// lifecycles — the shared core of [`telemetry_summary`] and `qosctl
/// report` (which feeds it lifecycles replayed from a flight recording
/// rather than a live handle).
pub fn lifecycle_table(lifecycles: &[Lifecycle]) -> String {
    let lat = stage_latencies(lifecycles);
    let mut out = String::new();
    let mut stages = Table::new(&["stage", "count", "p50 (us)", "p95 (us)", "max (us)"]);
    for (name, h) in lat
        .transitions
        .iter()
        .map(|(n, h)| (*n, h))
        .chain(std::iter::once(("detect→back-in-spec (MTTR)", &lat.mttr)))
    {
        stages.row(&[
            name.into(),
            format!("{}", h.count),
            format!("{}", h.quantile(0.50)),
            format!("{}", h.quantile(0.95)),
            format!("{}", h.max),
        ]);
    }
    out.push_str("violation lifecycles\n");
    out.push_str(&stages.render());
    out.push_str(&format!(
        "lifecycles: {} completed, {} still open\n",
        lat.completed, lat.open
    ));
    out
}

/// Render the chaos layer's point coverage (times evaluated vs times
/// fired, per point). Empty when buggify is compiled out or no point
/// was ever reached on this thread.
pub fn buggify_coverage() -> String {
    let seen = qos_buggify::points_seen();
    if seen.is_empty() {
        return String::new();
    }
    let hit = qos_buggify::points_hit();
    let mut tb = Table::new(&["buggify point", "seen", "hit"]);
    for (name, n) in &seen {
        let h = hit
            .iter()
            .find(|(p, _)| p == name)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        tb.row(&[name.clone(), format!("{n}"), format!("{h}")]);
    }
    format!(
        "buggify coverage ({} fired total)\n{}",
        qos_buggify::fired_total(),
        tb.render()
    )
}

/// Render the violation-lifecycle summary for a telemetry handle: one
/// row per stage transition (p50/p95/max latency), the end-to-end MTTR
/// distribution, completed/open lifecycle counts, the headline
/// fault/drop counters, and — when the chaos layer is live — buggify
/// point coverage. Empty string for a disabled handle.
pub fn telemetry_summary(t: &Telemetry) -> String {
    if !t.is_enabled() {
        return String::new();
    }
    let lifecycles = t.lifecycles();
    let mut out = lifecycle_table(&lifecycles);
    // Splice the event-buffer accounting into the lifecycle footer.
    out.pop();
    out.push_str(&format!(
        "; {} trace events ({} evicted)\n",
        t.events().len(),
        t.events_dropped()
    ));

    let snapshot = t.snapshot();
    let mut counters = Table::new(&["counter", "label", "value"]);
    let mut any = false;
    for m in snapshot
        .iter()
        .filter(|m| HEADLINE_COUNTERS.contains(&m.family.as_str()))
    {
        if let MetricValue::Counter(v) = &m.value {
            counters.row(&[m.family.clone(), m.label.clone(), format!("{v}")]);
            any = true;
        }
    }
    for m in snapshot
        .iter()
        .filter(|m| HEADLINE_HISTOGRAMS.contains(&m.family.as_str()))
    {
        if let MetricValue::Histogram(h) = &m.value {
            counters.row(&[
                m.family.clone(),
                m.label.clone(),
                format!(
                    "count={} p50={} p95={} max={}",
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.max
                ),
            ]);
            any = true;
        }
    }
    if any {
        out.push_str("\nfault & drop counters\n");
        out.push_str(&counters.render());
    }
    let chaos = buggify_coverage();
    if !chaos.is_empty() {
        out.push('\n');
        out.push_str(&chaos);
    }
    out
}

/// Write the buffered event trace to `path`: Chrome `trace_event` JSON
/// (load it at `chrome://tracing`) when the extension is `.json`, JSONL
/// (one event per line, [`qos_telemetry::parse_jsonl`]-compatible)
/// otherwise.
pub fn write_trace(t: &Telemetry, path: &str) -> std::io::Result<()> {
    let events = t.events();
    let body = if path.ends_with(".json") {
        to_chrome_trace(&events)
    } else {
        to_jsonl(&events)
    };
    std::fs::write(path, body)
}

/// Write the registry snapshot to `path` as JSON.
pub fn write_metrics(t: &Telemetry, path: &str) -> std::io::Result<()> {
    std::fs::write(path, qos_telemetry::metrics_to_json(&t.snapshot()))
}

/// Value of `--name <value>` or `--name=<value>` on the command line.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

/// Did the command line ask for a telemetry artifact (`--trace-out` or
/// `--metrics-out`)? Experiment binaries use this to decide whether to
/// run an instrumented scenario at all.
pub fn telemetry_requested() -> bool {
    arg_value("--trace-out").is_some() || arg_value("--metrics-out").is_some()
}

/// Write whatever telemetry artifacts the command line asked for:
/// `--trace-out <path>` (Chrome trace for `.json`, JSONL otherwise) and
/// `--metrics-out <path>` (registry-snapshot JSON).
pub fn emit_telemetry_outputs(t: &Telemetry) -> std::io::Result<()> {
    if let Some(path) = arg_value("--trace-out") {
        write_trace(t, &path)?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = arg_value("--metrics-out") {
        write_metrics(t, &path)?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["load", "fps"]);
        t.row(&[f(0.7, 2), f(28.31, 1)]);
        t.row(&[f(10.0, 2), f(4.2, 1)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("load"));
        assert!(lines[2].ends_with("28.3"));
        assert!(lines[3].ends_with("4.2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".to_string()]);
    }

    #[test]
    fn telemetry_summary_renders_lifecycles_and_counters() {
        use qos_telemetry::Stage;
        let t = Telemetry::enabled();
        if !t.is_enabled() {
            // telemetry-off build: the summary degrades to empty.
            assert!(telemetry_summary(&t).is_empty());
            return;
        }
        let c = t.next_corr();
        t.stage(0, c, Stage::Detect, "h0:p4", "example1", Vec::new);
        t.stage(100, c, Stage::Report, "h0:p4", "example1", Vec::new);
        t.stage(220, c, Stage::Diagnose, "hm:h0", "example1", Vec::new);
        t.stage(230, c, Stage::Adapt, "hm:h0", "adjust-cpu", Vec::new);
        t.stage(5230, c, Stage::BackInSpec, "h0:p4", "example1", Vec::new);
        t.counter("sim.fault.msgs_dropped", "").add(7);
        let s = telemetry_summary(&t);
        assert!(s.contains("detect→report"));
        assert!(s.contains("MTTR"));
        assert!(s.contains("1 completed, 0 still open"));
        assert!(s.contains("sim.fault.msgs_dropped"));
        assert!(telemetry_summary(&Telemetry::disabled()).is_empty());
    }

    #[test]
    fn summary_surfaces_live_counters_and_chaos_coverage() {
        let t = Telemetry::enabled();
        if !t.is_enabled() {
            return;
        }
        t.counter("live.reconnects", "live:p1").add(3);
        t.counter("live.telemetry_dropped", "host-manager").add(2);
        t.counter("live.decode_errors", "host-manager").inc();
        if qos_buggify::compiled_in() {
            // Probability 0: the point is *seen* but never fires.
            qos_buggify::enable_with(7, 0.0);
            assert!(!qos_buggify::fire("report.test.point"));
        }
        let s = telemetry_summary(&t);
        assert!(s.contains("live.reconnects"));
        assert!(s.contains("live.telemetry_dropped"));
        assert!(s.contains("live.decode_errors"));
        if qos_buggify::compiled_in() {
            assert!(s.contains("buggify coverage"));
            assert!(s.contains("report.test.point"));
            qos_buggify::disable();
        } else {
            assert!(!s.contains("buggify coverage"));
        }
    }

    #[test]
    fn summary_surfaces_batching_counters_and_histogram() {
        let t = Telemetry::enabled();
        if !t.is_enabled() {
            return;
        }
        t.counter("wire.batch.frames", "host-manager").add(5);
        t.counter("live.flush.deadline_hits", "live:p1").add(2);
        let h = t.histogram("wire.batch.msgs_per_frame", "host-manager");
        for n in [1, 16, 16, 64] {
            h.record(n);
        }
        let s = telemetry_summary(&t);
        assert!(s.contains("wire.batch.frames"));
        assert!(s.contains("live.flush.deadline_hits"));
        assert!(s.contains("wire.batch.msgs_per_frame"));
        assert!(s.contains("count=4"), "histogram row renders stats: {s}");
    }

    #[test]
    fn lifecycle_table_works_on_replayed_events() {
        use qos_telemetry::{reconstruct, Stage, TraceEvent};
        let mk = |at_us, corr, stage| TraceEvent {
            at_us,
            corr,
            stage,
            component: "h0:p1".into(),
            name: "example1".into(),
            fields: Vec::new(),
        };
        let events = vec![
            mk(0, 1, Stage::Detect),
            mk(50, 1, Stage::Report),
            mk(90, 1, Stage::Diagnose),
            mk(120, 1, Stage::Adapt),
            mk(900, 1, Stage::BackInSpec),
        ];
        let s = lifecycle_table(&reconstruct(&events));
        assert!(s.contains("1 completed, 0 still open"));
        assert!(s.contains("MTTR"));
    }
}
