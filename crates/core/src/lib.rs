//! # qos-core — policy-based management of soft QoS requirements
//!
//! The facade crate of the `softqos` workspace: assembles the complete
//! system of *"Managing Soft QoS Requirements in Distributed Systems"*
//! (Molenkamp, Katchabaw, Lutfiyya, Bauer; ICPP 2000 workshops) and hosts
//! the experiment harnesses that regenerate the paper's evaluation.
//!
//! The stack, bottom to top:
//!
//! * [`qos_sim`] — deterministic discrete-event substrate (Solaris-style
//!   scheduler, memory, network);
//! * [`qos_inference`] — the CLIPS-style forward-chaining shell;
//! * [`qos_policy`] — the `oblig` policy language, compiler and
//!   information model;
//! * [`qos_repository`] — LDAP-like repository, LDIF, policy agent,
//!   management application;
//! * [`qos_instrument`] — sensors / actuators / probes / coordinator;
//! * [`qos_manager`] — QoS host managers, domain manager, resource
//!   managers, rule sets, live mode;
//! * [`qos_apps`] — instrumented workloads (video pipeline, load
//!   generators, web server, game loop);
//! * [`system`] (here) — the assembled testbed, with policy distribution
//!   from repository to coordinator;
//! * [`experiment`] (here) — harnesses for Figure 3, convergence,
//!   contention, fault localization;
//! * [`report`] (here) — table output for the experiment binaries.
//!
//! ## Quickstart
//!
//! ```
//! use qos_core::prelude::*;
//!
//! // Build the standard managed testbed and run it for a few seconds.
//! let cfg = TestbedConfig { seed: 7, ..TestbedConfig::default() };
//! let mut tb = Testbed::build(&cfg);
//! tb.world.run_for(Dur::from_secs(10));
//! let fps = tb.client_fps(0, SimTime::from_micros(5_000_000));
//! assert!(fps > 20.0);
//! ```

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod experiment;
pub mod federation;
pub mod report;
pub mod system;

pub use qos_apps as apps;
pub use qos_discovery as discovery;
pub use qos_inference as inference;
pub use qos_instrument as instrument;
pub use qos_manager as manager;
pub use qos_policy as policy;
pub use qos_repository as repository;
pub use qos_sim as sim;
pub use qos_telemetry as telemetry;
pub use qos_wire as wire;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::experiment::{
        contention, convergence, fig3_point, fig3_point_with, figure3, localization,
        localization_with, overload, overload_with, parallel_map, proactive, ContentionRow,
        ConvergenceTrace, Fault, Fig3Row, LocalizationResult, OverloadOutcome, ProactiveOutcome,
        RUN_LEN, WARMUP,
    };
    pub use crate::federation::{
        FedReporter, Federation, FederationConfig, FED_REPORTER_PORT_BASE,
    };
    pub use crate::report::{
        arg_value, buggify_coverage, emit_telemetry_outputs, f, lifecycle_table,
        telemetry_requested, telemetry_summary, write_metrics, write_trace, Table,
    };
    pub use crate::system::{
        role_policy_source, AdminRules, CpuPolicy, Testbed, TestbedConfig, EXAMPLE1_SOURCE,
        PROACTIVE_SOURCE,
    };
    pub use qos_apps::prelude::*;
    pub use qos_discovery::{
        DiscAction, DiscBugs, DiscClient, DiscEvent, DiscPhase, DiscStats, DiscoveryCore,
        DiscoveryServer, MAX_RENEW_MISSES,
    };
    pub use qos_instrument::prelude::*;
    pub use qos_manager::prelude::*;
    pub use qos_sim::prelude::*;
    pub use qos_telemetry::prelude::*;
}

pub use prelude::*;
