//! Experiment harnesses regenerating the paper's evaluation artifacts
//! (see DESIGN.md's experiment index). Parameter sweeps run one
//! simulation per point, in parallel with crossbeam scoped threads —
//! each simulation is an independent, deterministic world.

use crossbeam::thread;
use qos_apps::prelude::*;
use qos_manager::prelude::*;
use qos_sim::prelude::*;
use qos_telemetry::Telemetry;

use crate::system::{AdminRules, CpuPolicy, Testbed, TestbedConfig};

/// Measurement window: statistics are taken after this warm-up.
pub const WARMUP: Dur = Dur::from_secs(30);
/// Default experiment length.
pub const RUN_LEN: Dur = Dur::from_secs(120);

// ----------------------------------------------------------------------
// E1 / Figure 3
// ----------------------------------------------------------------------

/// One point of Figure 3.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Target CPU load average.
    pub target_load: f64,
    /// Load average actually measured over the run.
    pub measured_load: f64,
    /// Mean video playback throughput (fps) with normal scheduling.
    pub fps_normal: f64,
    /// Mean throughput with the QoS Host Manager + CPU resource manager.
    pub fps_managed: f64,
}

/// Reproduce Figure 3: video playback throughput vs CPU load average,
/// normal Solaris-style scheduling vs the managed system. The paper's
/// x-axis points are `[0.70, 3.00, 5.00, 7.00, 10.00]`.
pub fn figure3(seed: u64, loads: &[f64]) -> Vec<Fig3Row> {
    let runs: Vec<(f64, bool)> = loads
        .iter()
        .flat_map(|&l| [(l, false), (l, true)])
        .collect();
    let results = parallel_map(&runs, |&(load, managed)| {
        let (fps, measured) = fig3_point(seed, load, managed);
        (load, managed, fps, measured)
    });
    loads
        .iter()
        .map(|&l| {
            let normal = results
                .iter()
                .find(|r| r.0 == l && !r.1)
                .expect("every load has an unmanaged run");
            let managed = results
                .iter()
                .find(|r| r.0 == l && r.1)
                .expect("every load has a managed run");
            Fig3Row {
                target_load: l,
                measured_load: (normal.3 + managed.3) / 2.0,
                fps_normal: normal.2,
                fps_managed: managed.2,
            }
        })
        .collect()
}

/// One Figure 3 run: returns (mean fps, measured load average).
pub fn fig3_point(seed: u64, target_load: f64, managed: bool) -> (f64, f64) {
    fig3_point_with(seed, target_load, managed, &Telemetry::disabled())
}

/// [`fig3_point`] with a telemetry handle attached to the testbed, for
/// the `--trace-out` / `--metrics-out` flags of the experiment binary.
pub fn fig3_point_with(
    seed: u64,
    target_load: f64,
    managed: bool,
    telemetry: &Telemetry,
) -> (f64, f64) {
    let cfg = TestbedConfig {
        seed: seed ^ (target_load.to_bits().rotate_left(17)) ^ (managed as u64),
        managed,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    // The baseline daemons + client contribute roughly 0.7; hogs make up
    // the difference to the target.
    let mix = mix_for_target(target_load, 0.7);
    spawn_mix(&mut tb.world, tb.client_host, mix);
    tb.world.run_for(WARMUP);
    let d0 = tb.displayed(0);
    tb.world.run_for(RUN_LEN.saturating_sub(WARMUP));
    let from = SimTime::ZERO + WARMUP;
    let window = RUN_LEN.saturating_sub(WARMUP).as_secs_f64();
    let fps = (tb.displayed(0) - d0) as f64 / window;
    let load = tb
        .world
        .host(tb.client_host)
        .runnable_series()
        .mean_from(from);
    (fps, load)
}

// ----------------------------------------------------------------------
// E4: convergence of the feedback loop
// ----------------------------------------------------------------------

/// Time series of the adaptation: (t seconds, fps, client upri boost).
#[derive(Debug, Clone)]
pub struct ConvergenceTrace {
    /// Displayed-fps points over time.
    pub fps: Vec<(f64, f64)>,
    /// CPU boost applied by the manager over time.
    pub boost: Vec<(f64, i16)>,
    /// Time (s) at which fps first re-entered `[lo, hi]` and stayed for
    /// 5 consecutive samples, if it did.
    pub settled_at: Option<f64>,
}

/// E4: start an already-loaded host, watch the manager pull the client
/// back into specification step by step.
pub fn convergence(seed: u64, hogs: u32, managed: bool) -> ConvergenceTrace {
    let cfg = TestbedConfig {
        seed,
        managed,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    spawn_mix(
        &mut tb.world,
        tb.client_host,
        LoadMix {
            hogs,
            fraction: 0.0,
        },
    );
    let mut fps = Vec::new();
    let mut boost = Vec::new();
    let step = Dur::from_secs(1);
    let total_secs = 90;
    for s in 1..=total_secs {
        tb.world.run_for(step);
        let t = s as f64;
        let last = tb.client(0).stats.fps_series.last().unwrap_or(0.0);
        fps.push((t, last));
        let upri = tb
            .world
            .host(tb.client_host)
            .proc_upri(tb.clients[0])
            .unwrap_or(0);
        boost.push((t, upri));
    }
    // Settling: 5 consecutive in-spec samples.
    let mut settled_at = None;
    let mut streak = 0;
    for &(t, f) in &fps {
        if (23.0..=30.0).contains(&f) {
            streak += 1;
            if streak >= 5 && settled_at.is_none() {
                settled_at = Some(t - 4.0);
            }
        } else {
            streak = 0;
            settled_at = None;
        }
    }
    ConvergenceTrace {
        fps,
        boost,
        settled_at,
    }
}

// ----------------------------------------------------------------------
// E5: multi-application contention under administrative policies
// ----------------------------------------------------------------------

/// Result of the contention experiment for one client.
#[derive(Debug, Clone, Copy)]
pub struct ContentionRow {
    /// Client index.
    pub client: usize,
    /// Administrative weight.
    pub weight: f64,
    /// Mean fps achieved.
    pub fps: f64,
}

/// E5: several video clients on one host with insufficient CPU for all.
/// Under fair-share rules all degrade roughly equally; under
/// differentiated rules fps follows weight.
pub fn contention(seed: u64, admin: AdminRules) -> Vec<ContentionRow> {
    let weights = [1.0, 2.0, 4.0];
    // Differentiated administration: role-scoped QoS targets (the
    // Section 6 "UserRole" mechanism) — student 10, assistant 16,
    // lecturer 26 fps. Fair share: everyone runs the standard 25 ± 2
    // policy and degrades equally.
    // Targets must be jointly feasible (the host can decode ~50 fps in
    // total), otherwise the differentiated allocation cannot converge.
    let targets = match admin {
        AdminRules::FairShare => Vec::new(),
        AdminRules::Differentiated => vec![8.0, 14.0, 22.0],
    };
    // Role-differentiated shares need an allocation mechanism that a
    // competitor's interactivity boost cannot bypass: real-time CPU units
    // ("allocating units of real-time CPU cycles", Section 7). Fair-share
    // keeps the prototype's default TS boosts.
    let cpu_policy = match admin {
        AdminRules::FairShare => CpuPolicy::TsBoost,
        AdminRules::Differentiated => CpuPolicy::RtUnits,
    };
    let cfg = TestbedConfig {
        seed,
        managed: true,
        admin,
        cpu_policy,
        clients: 3,
        client_weights: weights.to_vec(),
        client_targets: targets,
        // Each client needs ~60% of a CPU: three of them oversubscribe it.
        baseline_daemons: false,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.run_for(WARMUP);
    let d0: Vec<u64> = (0..3).map(|i| tb.displayed(i)).collect();
    tb.world.run_for(RUN_LEN.saturating_sub(WARMUP));
    let window = RUN_LEN.saturating_sub(WARMUP).as_secs_f64();
    (0..3)
        .map(|i| ContentionRow {
            client: i,
            weight: weights[i],
            fps: (tb.displayed(i) - d0[i]) as f64 / window,
        })
        .collect()
}

// ----------------------------------------------------------------------
// E6: fault localization
// ----------------------------------------------------------------------

/// Faults injected for the localization experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// CPU contention on the client host.
    ClientCpu,
    /// CPU contention on the server host.
    ServerCpu,
    /// Congestion on the data-path switch.
    Network,
}

/// Outcome of one localization run.
#[derive(Debug, Clone)]
pub struct LocalizationResult {
    /// The injected fault.
    pub fault: Fault,
    /// fps before the fault.
    pub fps_before: f64,
    /// fps after the fault, before any recovery had time to act.
    pub fps_during: f64,
    /// fps at the end (after diagnosis + adaptation).
    pub fps_after: f64,
    /// Client-side CPU boosts issued.
    pub client_boosts: u64,
    /// Escalations to the domain manager.
    pub domain_alerts: u64,
    /// What the domain manager decided.
    pub domain_actions: Vec<DomainAction>,
}

/// E6: inject a fault mid-run and observe where the management plane
/// localizes it and whether service recovers. `buffer_sensor` can be
/// disabled to ablate the Example 5 heuristic.
pub fn localization(seed: u64, fault: Fault, buffer_sensor: bool) -> LocalizationResult {
    localization_with(seed, fault, buffer_sensor, &Telemetry::disabled())
}

/// [`localization`] with a telemetry handle attached to the testbed,
/// for the `--trace-out` / `--metrics-out` flags of the experiment
/// binary.
pub fn localization_with(
    seed: u64,
    fault: Fault,
    buffer_sensor: bool,
    telemetry: &Telemetry,
) -> LocalizationResult {
    let cfg = TestbedConfig {
        seed,
        managed: true,
        domain: true,
        disable_buffer_sensor: !buffer_sensor,
        telemetry: telemetry.clone(),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);

    // Healthy phase.
    tb.world.run_for(Dur::from_secs(20));
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(20));
    let fps_before = (tb.displayed(0) - d0) as f64 / 20.0;

    // Inject the fault.
    match fault {
        Fault::ClientCpu => {
            spawn_mix(
                &mut tb.world,
                tb.client_host,
                LoadMix {
                    hogs: 6,
                    fraction: 0.0,
                },
            );
        }
        Fault::ServerCpu => {
            // Two-part server-side fault. (1) An interactive storm:
            // sub-quantum sleep-boosted bursts that monopolise the strong
            // priority levels (plain CPU hogs would sink and never delay
            // anyone). (2) A degraded encode path: the server's per-frame
            // cost rises past the strongest-level quantum, so it expires
            // mid-frame and falls behind the storm. Either alone is
            // survivable; together the server starves — until the domain
            // manager diagnoses it and promotes it to the RT class.
            for _ in 0..30 {
                tb.world.spawn(
                    tb.server_host,
                    ProcConfig::new("interactive-burst"),
                    DutyLoadGen {
                        duty: 0.25,
                        period: Dur::from_millis(60),
                    },
                );
            }
            let server = tb.servers[0];
            tb.world
                .logic_mut::<VideoServer>(server)
                .expect("server logic type")
                .set_cpu_per_frame(Dur::from_millis(25));
        }
        Fault::Network => {
            tb.world.net_mut().set_bg_util(tb.primary_hop, 0.97);
        }
    }
    let d1 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(20));
    let fps_during = (tb.displayed(0) - d1) as f64 / 20.0;

    tb.world.run_for(Dur::from_secs(30));
    let d2 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(30));
    let fps_after = (tb.displayed(0) - d2) as f64 / 30.0;

    let hm = tb.client_hm_stats().expect("managed testbed");
    LocalizationResult {
        fault,
        fps_before,
        fps_during,
        fps_after,
        client_boosts: hm.cpu_boosts,
        domain_alerts: hm.domain_alerts,
        domain_actions: tb.domain_actions(),
    }
}

// ----------------------------------------------------------------------
// E9: proactive vs reactive QoS (Section 10 extension)
// ----------------------------------------------------------------------

/// Outcome of one proactive/reactive run.
#[derive(Debug, Clone, Copy)]
pub struct ProactiveOutcome {
    /// Seconds (out of the post-fault window) with displayed fps below
    /// the 23 fps specification floor.
    pub secs_below_spec: u64,
    /// Worst single-second fps after the fault.
    pub worst_fps: f64,
    /// Mean fps over the post-fault window.
    pub mean_fps: f64,
    /// Proactive nudges issued by the manager.
    pub nudges: u64,
    /// Reactive CPU boosts issued by the manager.
    pub boosts: u64,
}

/// E9: load ramps up gradually (one CPU hog every 4 s); compare the
/// purely reactive system (adaptation starts only after the frame rate
/// leaves specification) with the proactive one (the buffer-growth trend
/// policy triggers adaptation while the frame rate is still in
/// specification — the buffer starts growing the moment the client falls
/// even slightly behind).
pub fn proactive(seed: u64, enabled: bool) -> ProactiveOutcome {
    /// Spawns one CPU hog every `interval`, `count` times.
    struct Ramp {
        interval: Dur,
        remaining: u32,
    }
    impl ProcessLogic for Ramp {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start | ProcEvent::Timer(_) => {
                    if let ProcEvent::Timer(_) = ev {
                        let host = ctx.host_id();
                        ctx.spawn(host, ProcConfig::new("ramp-hog"), Box::new(CpuHog::new()));
                        self.remaining -= 1;
                    }
                    if self.remaining > 0 {
                        ctx.set_timer(self.interval, 0);
                    }
                }
                _ => {}
            }
        }
    }
    let cfg = TestbedConfig {
        seed,
        managed: true,
        proactive: enabled,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.run_for(Dur::from_secs(30));
    tb.world.spawn(
        tb.client_host,
        ProcConfig::new("ramp"),
        Ramp {
            interval: Dur::from_secs(4),
            remaining: 6,
        },
    );
    // Observe second by second for 60 s after the fault.
    let mut secs_below = 0;
    let mut worst = f64::INFINITY;
    let mut total = 0.0;
    let window = 60;
    let mut prev = tb.displayed(0);
    for _ in 0..window {
        tb.world.run_for(Dur::from_secs(1));
        let d = tb.displayed(0);
        let fps = (d - prev) as f64;
        prev = d;
        if fps < 23.0 {
            secs_below += 1;
        }
        worst = worst.min(fps);
        total += fps;
    }
    let hm = tb.client_hm_stats().expect("managed testbed");
    ProactiveOutcome {
        secs_below_spec: secs_below,
        worst_fps: worst,
        mean_fps: total / window as f64,
        nudges: hm.nudges,
        boosts: hm.cpu_boosts,
    }
}

// ----------------------------------------------------------------------
// E10: overload handling via application adaptation (Section 10)
// ----------------------------------------------------------------------

/// Outcome of one overload run.
#[derive(Debug, Clone, Copy)]
pub struct OverloadOutcome {
    /// Mean fps over the final 60 s.
    pub fps: f64,
    /// Final quality level (0 = full; higher = degraded).
    pub quality: u8,
    /// Application-adaptation requests the manager issued.
    pub adaptations: u64,
    /// Final CPU boost (stuck at the cap in the overloaded case).
    pub boost: i16,
}

/// E10: the decode cost is raised beyond what any allocation can satisfy
/// (demand > 100% of the CPU at full quality). Without overload handling
/// the manager maxes the allocation and the requirement still fails;
/// with it, the manager directs the quality actuator and the (degraded)
/// stream returns to specification.
pub fn overload(seed: u64, adaptive: bool) -> OverloadOutcome {
    overload_with(seed, adaptive, &Telemetry::disabled())
}

/// [`overload`] with a telemetry handle attached to the testbed, for
/// the `--trace-out` / `--metrics-out` flags of the experiment binary.
pub fn overload_with(seed: u64, adaptive: bool, telemetry: &Telemetry) -> OverloadOutcome {
    let cfg = TestbedConfig {
        seed,
        managed: true,
        overload_adaptation: adaptive,
        telemetry: telemetry.clone(),
        // 45 ms per frame at 30 fps = 135% CPU demand at full quality;
        // the ladder's 0.65 level brings it to ~88%.
        decode_cost: Dur::from_micros(45_000),
        baseline_daemons: false,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.run_for(Dur::from_secs(60)); // detect, max out, adapt
    let d0 = tb.displayed(0);
    tb.world.run_for(Dur::from_secs(60));
    let fps = (tb.displayed(0) - d0) as f64 / 60.0;
    let hm = tb.client_hm_stats().expect("managed testbed");
    OverloadOutcome {
        fps,
        quality: tb.client(0).quality(),
        adaptations: hm.adaptations,
        boost: tb
            .world
            .host(tb.client_host)
            .proc_upri(tb.clients[0])
            .unwrap_or(0),
    }
}

// ----------------------------------------------------------------------
// Parallel sweep helper
// ----------------------------------------------------------------------

/// Map a function over inputs in parallel with scoped threads; results
/// come back in input order. Each call must be independent (they each own
/// their own simulation world).
pub fn parallel_map<T: Sync, R: Send>(inputs: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = inputs.len();
    if n <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots: Vec<parking_lot::Mutex<&mut Option<R>>> =
        out.iter_mut().map(parking_lot::Mutex::new).collect();
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&inputs[i]);
                **slots[i].lock() = Some(r);
            });
        }
    })
    .expect("worker panicked");
    drop(slots);
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let out = parallel_map(&inputs, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_input() {
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(parallel_map(&[] as &[u32], |&x| x + 1), Vec::<u32>::new());
    }

    #[test]
    fn fig3_managed_beats_unmanaged_under_load() {
        // Single mid-sweep point as a smoke test (the full sweep is the
        // bench binary's job).
        let (fps_unmanaged, load) = fig3_point(11, 5.0, false);
        let (fps_managed, _) = fig3_point(11, 5.0, true);
        assert!(
            (3.5..6.5).contains(&load),
            "load calibration off: target 5.0, measured {load}"
        );
        assert!(
            fps_managed > fps_unmanaged + 5.0,
            "manager must help: unmanaged {fps_unmanaged}, managed {fps_managed}"
        );
        assert!(
            fps_managed > 23.0,
            "managed system should hold the QoS floor: {fps_managed}"
        );
        assert!(
            fps_unmanaged < 18.0,
            "unmanaged system should collapse: {fps_unmanaged}"
        );
    }
}
