//! Federated multi-domain assembly: a discovery server, a tree of
//! domain managers and a fleet of managed hosts that find their domain
//! manager *dynamically*.
//!
//! Where [`crate::system::Testbed`] hand-wires two hosts to one domain
//! manager, [`Federation::build`] scales the Section 5 management plane
//! out: one management host runs the discovery server plus the **root**
//! domain manager; each leaf domain gets its own host running a
//! [`QosDomainManager`] federated under the root; every managed host
//! runs a [`QosHostManager`] that *announces* to the discovery server
//! and is assigned to a leaf shard. No host manager is told its domain
//! manager and no domain manager is told its registry — both are
//! learned from the discovery plane, and both survive loss (lease
//! renewal client-side, idempotent re-registration server-side).
//!
//! Cross-domain diagnosis rides the same learned state: an alert whose
//! upstream lives in a *sibling* domain climbs to the root (a leaf
//! knows only its own descendants), which forwards it down the covering
//! leaf's route — the Section 9 "interconnected domain managers" path
//! with zero hand-wired peers.

use std::collections::HashMap;

use qos_discovery::DiscoveryServer;
use qos_manager::prelude::*;
use qos_sim::prelude::*;
use qos_telemetry::prelude::*;

/// First control port used by [`FedReporter`]s (unique per host:
/// reporter `p` on a host binds `FED_REPORTER_PORT_BASE + p`).
pub const FED_REPORTER_PORT_BASE: Port = 100;
const TAG_REPORT: u64 = 1;

/// Shape of the federation to assemble.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// World seed.
    pub seed: u64,
    /// Number of *leaf* domains (shards). The root domain `d0` sits
    /// above them; leaves are `d1..=dN`.
    pub domains: u32,
    /// Number of managed hosts. Each runs a host manager that enters
    /// discovery; host `i` is pinned to leaf `(i % domains) + 1` so
    /// shard membership is a function of the config alone.
    pub hosts: u32,
    /// Instrumented reporter processes per managed host.
    pub reporters_per_host: u32,
    /// Violation rounds each reporter fires (0 = reporters register but
    /// stay quiet).
    pub rounds: u32,
    /// Interval between violation rounds.
    pub interval: Dur,
    /// Give each reporter an upstream on the *next* managed host — a
    /// host in a different leaf domain (when `domains > 1`) — so every
    /// escalated alert must cross a federation boundary.
    pub cross_domain_upstreams: bool,
    /// Discovery lease length.
    pub lease: Dur,
    /// Shared telemetry handle (inert by default).
    pub telemetry: Telemetry,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            seed: 1,
            domains: 4,
            hosts: 8,
            reporters_per_host: 1,
            rounds: 0,
            interval: Dur::from_millis(200),
            cross_domain_upstreams: false,
            lease: DISCOVERY_LEASE,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The assembled federation.
pub struct Federation {
    /// The simulation world.
    pub world: World,
    /// Management host: discovery server + root domain manager.
    pub mgmt_host: HostId,
    /// The discovery server process.
    pub disc: Pid,
    /// The root domain manager (domain `d0`).
    pub root_dm: Pid,
    /// One host per leaf domain, index `k` hosting leaf `d(k+1)`.
    pub leaf_dm_hosts: Vec<HostId>,
    /// Leaf domain manager processes, parallel to `leaf_dm_hosts`.
    pub leaf_dms: Vec<Pid>,
    /// The managed hosts, in pin order.
    pub managed_hosts: Vec<HostId>,
    /// Host manager processes, parallel to `managed_hosts`.
    pub hms: Vec<Pid>,
    /// Reporter processes (host-major order).
    pub reporters: Vec<Pid>,
    /// Per-host control hops, parallel to
    /// `[mgmt] + leaf_dm_hosts + managed_hosts`.
    pub ctrl_hops: Vec<HopId>,
    /// The configuration this federation was built from.
    pub cfg: FederationConfig,
}

impl Federation {
    /// Leaf domain that managed host `i` is pinned to.
    pub fn domain_of(&self, i: usize) -> DomainId {
        DomainId((i as u32 % self.cfg.domains) + 1)
    }

    /// Assemble the federation. Control traffic between any two hosts
    /// crosses the two endpoints' dedicated control hops; data paths
    /// for workload experiments are added by the caller (see
    /// [`Federation::add_data_path`]).
    pub fn build(cfg: &FederationConfig) -> Federation {
        assert!(cfg.domains >= 1, "need at least one leaf domain");
        let mut world = World::new(cfg.seed);
        world.set_telemetry(&cfg.telemetry);

        let mgmt_host = world.add_host("mgmt", 1 << 16);
        let leaf_dm_hosts: Vec<HostId> = (0..cfg.domains)
            .map(|k| world.add_host(format!("dm{}", k + 1), 1 << 16))
            .collect();
        let managed_hosts: Vec<HostId> = (0..cfg.hosts)
            .map(|i| world.add_host(format!("host{i}"), 1 << 16))
            .collect();

        // One control hop per host; the route between any two hosts is
        // the pair of their hops. Control stays off any data path the
        // caller later adds.
        let all: Vec<HostId> = std::iter::once(mgmt_host)
            .chain(leaf_dm_hosts.iter().copied())
            .chain(managed_hosts.iter().copied())
            .collect();
        let mut ctrl_hops = Vec::with_capacity(all.len());
        for &h in &all {
            ctrl_hops.push(world.net_mut().add_hop(
                format!("ctrl-h{}", h.0),
                1_000_000.0,
                Dur::from_millis(1),
                Dur::from_secs(1),
            ));
        }
        for (i, &a) in all.iter().enumerate() {
            for (j, &b) in all.iter().enumerate().skip(i + 1) {
                world
                    .net_mut()
                    .set_route_symmetric(a, b, vec![ctrl_hops[i], ctrl_hops[j]]);
            }
        }

        let disc_ep = Endpoint::new(mgmt_host, DISCOVERY_PORT);
        let mgr_class = SchedClass::RealTime {
            rtpri: 50,
            budget: None,
        };

        // Discovery server, with every managed host pinned to its leaf.
        let mut server = DiscoveryServer::new(cfg.lease).with_telemetry(&cfg.telemetry);
        for (i, &h) in managed_hosts.iter().enumerate() {
            server.core.pin(h, DomainId((i as u32 % cfg.domains) + 1));
        }
        let disc = world.spawn(
            mgmt_host,
            ProcConfig::new("DiscoveryServer")
                .class(mgr_class)
                .port(DISCOVERY_PORT, 1 << 20),
            server,
        );

        // Root domain manager: no shard of its own; its routes cover
        // every descendant, so sibling-crossing alerts pivot here.
        let root_dm = world.spawn(
            mgmt_host,
            ProcConfig::new("QoSDomainManager-root")
                .class(mgr_class)
                .port(DOMAIN_MANAGER_PORT, 1 << 20),
            QosDomainManager::new(HashMap::new())
                .with_telemetry(&cfg.telemetry)
                .with_federation(DomainId(0), None, disc_ep),
        );

        // Leaf domain managers, children of the root. Their registries
        // start empty and fill from the server's route pushes.
        let leaf_dms: Vec<Pid> = leaf_dm_hosts
            .iter()
            .enumerate()
            .map(|(k, &h)| {
                world.spawn(
                    h,
                    ProcConfig::new(format!("QoSDomainManager-d{}", k + 1))
                        .class(mgr_class)
                        .port(DOMAIN_MANAGER_PORT, 1 << 20),
                    QosDomainManager::new(HashMap::new())
                        .with_telemetry(&cfg.telemetry)
                        .with_federation(DomainId(k as u32 + 1), Some(DomainId(0)), disc_ep),
                )
            })
            .collect();

        // Host managers: told only where discovery lives. Each becomes
        // local pid 0 on its host, so reporters are pids 1..
        let hms: Vec<Pid> = managed_hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                world.spawn(
                    h,
                    ProcConfig::new("QoSHostManager")
                        .class(mgr_class)
                        .port(HOST_MANAGER_PORT, 1 << 20),
                    QosHostManager::new(None)
                        .with_telemetry(&cfg.telemetry)
                        .with_discovery(disc_ep, cfg.seed ^ (i as u64).wrapping_mul(0x9e37)),
                )
            })
            .collect();

        // Reporters. With cross-domain upstreams, host i's reporters
        // name the first reporter on host i+1 (mod hosts) — a sibling
        // domain whenever `domains > 1` and `hosts % domains != 0`
        // pairs differ; with the round-robin pinning, i and i+1 always
        // land in different leaves when `domains > 1`.
        let mut reporters = Vec::new();
        for (i, &h) in managed_hosts.iter().enumerate() {
            let upstream = cfg.cross_domain_upstreams.then(|| {
                let up = managed_hosts[(i + 1) % managed_hosts.len()];
                Upstream {
                    host: up,
                    pid: Pid { host: up, local: 1 },
                }
            });
            for p in 0..cfg.reporters_per_host {
                reporters.push(
                    world.spawn(
                        h,
                        ProcConfig::new("FedReporter")
                            .port(FED_REPORTER_PORT_BASE + p as Port, 1 << 16),
                        FedReporter {
                            hm: Endpoint::new(h, HOST_MANAGER_PORT),
                            telemetry: cfg.telemetry.clone(),
                            rounds: cfg.rounds,
                            interval: cfg.interval,
                            upstream,
                            port: FED_REPORTER_PORT_BASE + p as Port,
                        },
                    ),
                );
            }
        }

        Federation {
            world,
            mgmt_host,
            disc,
            root_dm,
            leaf_dm_hosts,
            leaf_dms,
            managed_hosts,
            hms,
            reporters,
            ctrl_hops,
            cfg: cfg.clone(),
        }
    }

    /// Add a dedicated data path between managed hosts `a` and `b`
    /// (indices into `managed_hosts`): a primary hop plus an idle
    /// backup, with the backup registered on the leaf domain manager
    /// covering host `b` — the manager that diagnoses faults whose
    /// upstream is `b`. Returns `(primary, backup)`.
    pub fn add_data_path(&mut self, a: usize, b: usize) -> (HopId, HopId) {
        let (ha, hb) = (self.managed_hosts[a], self.managed_hosts[b]);
        let primary = self.world.net_mut().add_hop(
            format!("data-{a}-{b}"),
            10_000_000.0,
            Dur::from_millis(1),
            Dur::from_millis(500),
        );
        let backup = self.world.net_mut().add_hop(
            format!("backup-{a}-{b}"),
            10_000_000.0,
            Dur::from_millis(2),
            Dur::from_millis(500),
        );
        self.world
            .net_mut()
            .set_route_symmetric(ha, hb, vec![primary]);
        let dm = self.leaf_dms[(self.domain_of(b).0 - 1) as usize];
        self.world
            .logic_mut::<QosDomainManager>(dm)
            .expect("leaf domain manager logic")
            .add_backup_route(ha, hb, vec![backup]);
        (primary, backup)
    }

    /// Number of host managers currently bound to a domain manager via
    /// discovery.
    pub fn bound_hosts(&self) -> usize {
        self.hms
            .iter()
            .filter(|&&pid| {
                self.world
                    .logic::<QosHostManager>(pid)
                    .is_some_and(|hm| hm.discovered_domain().is_some())
            })
            .count()
    }

    /// Shard sizes as seen by each *leaf domain manager* (learned from
    /// route pushes), in leaf order `d1..=dN`.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.leaf_dms
            .iter()
            .map(|&pid| {
                self.world
                    .logic::<QosDomainManager>(pid)
                    .map_or(0, |dm| dm.shard_size())
            })
            .collect()
    }

    /// The discovery server's counters.
    pub fn disc_stats(&self) -> qos_discovery::DiscStats {
        self.world
            .logic::<DiscoveryServer>(self.disc)
            .expect("discovery server logic")
            .core
            .stats
    }

    /// A domain manager's stats (root or leaf pid).
    pub fn dm_stats(&self, pid: Pid) -> DomainStats {
        self.world
            .logic::<QosDomainManager>(pid)
            .expect("domain manager logic")
            .stats
            .clone()
    }
}

/// A minimal instrumented process for federation experiments: registers
/// with its *local* host manager at start, then reports a
/// small-buffer violation every round. With an [`Upstream`] on a host
/// in a sibling domain, the host manager's remote-cause rule escalates
/// each violation to its discovered domain manager, which must route
/// the alert across the federation.
pub struct FedReporter {
    /// The local host manager.
    pub hm: Endpoint,
    /// Telemetry for violation correlation ids.
    pub telemetry: Telemetry,
    /// Violation rounds left.
    pub rounds: u32,
    /// Interval between rounds.
    pub interval: Dur,
    /// Claimed upstream producer, if any.
    pub upstream: Option<Upstream>,
    /// This reporter's control port.
    pub port: Port,
}

impl ProcessLogic for FedReporter {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => {
                send_ctrl(
                    ctx,
                    self.hm,
                    self.port,
                    WireMsg::Register(RegisterMsg {
                        pid: ctx.pid(),
                        control_port: self.port,
                        executable: "FedReporter".into(),
                        application: "Federation".into(),
                        role: "*".into(),
                        weight: 1.0,
                        heartbeat: None,
                    }),
                );
                if self.rounds > 0 {
                    ctx.set_timer(self.interval, TAG_REPORT);
                }
            }
            ProcEvent::Timer(TAG_REPORT) => {
                if self.rounds == 0 {
                    return;
                }
                self.rounds -= 1;
                let corr = if self.telemetry.is_enabled() {
                    let corr = self.telemetry.next_corr();
                    self.telemetry.stage(
                        ctx.now().as_micros(),
                        corr,
                        Stage::Detect,
                        &pid_to_string(ctx.pid()),
                        "fed-report",
                        Vec::new,
                    );
                    corr
                } else {
                    0
                };
                // Small buffer + an upstream ⇒ the remote-cause rule
                // fires and the violation escalates to the domain.
                send_ctrl(
                    ctx,
                    self.hm,
                    self.port,
                    WireMsg::Violation(ViolationMsg {
                        pid: ctx.pid(),
                        proc_name: "FedReporter".into(),
                        policy: "fed-report".into(),
                        corr,
                        readings: vec![("frame_rate".into(), 15.0), ("buffer_size".into(), 100.0)],
                        bounds: Some(("frame_rate".into(), 23.0, 27.0)),
                        upstream: self.upstream,
                    }),
                );
                if self.rounds > 0 {
                    ctx.set_timer(self.interval, TAG_REPORT);
                }
            }
            ProcEvent::Readable(port) => while ctx.recv(port).is_some() {},
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_binds_all_hosts_and_shards_registry() {
        let cfg = FederationConfig {
            seed: 11,
            domains: 3,
            hosts: 9,
            ..FederationConfig::default()
        };
        let mut fed = Federation::build(&cfg);
        fed.world.run_for(Dur::from_secs(3));
        assert_eq!(fed.bound_hosts(), 9, "every host manager discovers a DM");
        assert_eq!(
            fed.shard_sizes(),
            vec![3, 3, 3],
            "round-robin pins shard evenly"
        );
        let st = fed.disc_stats();
        assert_eq!(st.assignments, 9);
    }

    #[test]
    fn cross_domain_alert_climbs_to_root_and_down() {
        let cfg = FederationConfig {
            seed: 12,
            domains: 2,
            hosts: 4,
            rounds: 5,
            cross_domain_upstreams: true,
            ..FederationConfig::default()
        };
        let mut fed = Federation::build(&cfg);
        fed.world.run_for(Dur::from_secs(8));
        // Leaves forwarded sibling-bound alerts (via the root); the
        // root forwarded them down; nothing fell off the map.
        let root = fed.dm_stats(fed.root_dm);
        assert!(root.forwarded > 0, "root relayed cross-domain alerts");
        assert_eq!(root.unroutable_alerts, 0);
        let leaves: Vec<DomainStats> = fed.leaf_dms.iter().map(|&p| fed.dm_stats(p)).collect();
        assert!(leaves.iter().any(|s| s.forwarded > 0));
        assert!(leaves.iter().all(|s| s.unroutable_alerts == 0));
        // The covering leaf actually diagnosed: each alert triggers a
        // stats query against the upstream's host manager.
        assert!(leaves.iter().any(|s| s.alerts > 0));
    }
}
