//! The sensor set of an instrumented process: the sensors living in the
//! process's address space, addressable by name and by monitored
//! attribute.

use std::collections::HashMap;

use qos_policy::ast::ArgExpr;
use qos_policy::compile::CompiledCondition;

use crate::sensor::{FpsSensor, GaugeSensor, JitterSensor, Sensor, TrendSensor};

/// Any of the concrete sensor kinds.
#[derive(Debug)]
pub enum AnySensor {
    /// Frame-rate sensor (probe: `frame_displayed`).
    Fps(FpsSensor),
    /// Jitter sensor (probe: `frame_displayed`).
    Jitter(JitterSensor),
    /// Gauge sensor (probe: `sample`).
    Gauge(GaugeSensor),
    /// Trend sensor (probe: `sample` of the raw metric).
    Trend(TrendSensor),
}

impl AnySensor {
    /// The underlying thresholded sensor.
    pub fn base(&self) -> &Sensor {
        match self {
            AnySensor::Fps(s) => &s.sensor,
            AnySensor::Jitter(s) => &s.sensor,
            AnySensor::Gauge(s) => &s.sensor,
            AnySensor::Trend(s) => &s.sensor,
        }
    }
}

/// The sensors of one instrumented process.
#[derive(Debug, Default)]
pub struct SensorSet {
    sensors: Vec<AnySensor>,
    by_name: HashMap<String, usize>,
    by_attr: HashMap<String, usize>,
}

impl SensorSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard video-application instrumentation of Example 2 and
    /// Example 5: `fps_sensor` (3 s window — long enough to smooth the
    /// bursty service patterns produced by quantum- and budget-based
    /// scheduling), `jitter_sensor` (32-gap window) and `buffer_sensor`.
    pub fn video_standard() -> Self {
        let mut set = SensorSet::new();
        set.add(AnySensor::Fps(FpsSensor::new("fps_sensor", 3_000_000)));
        set.add(AnySensor::Jitter(JitterSensor::new("jitter_sensor", 32)));
        set.add(AnySensor::Gauge(GaugeSensor::new(
            "buffer_sensor",
            "buffer_size",
        )));
        set
    }

    /// Add a sensor; its name and attribute become addressable.
    pub fn add(&mut self, sensor: AnySensor) {
        let ix = self.sensors.len();
        self.by_name.insert(sensor.base().name().to_string(), ix);
        self.by_attr.insert(sensor.base().attr().to_string(), ix);
        self.sensors.push(sensor);
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Configure thresholds from a coordinator's interned condition table:
    /// condition `i` is installed on the sensor monitoring its attribute.
    /// Returns attributes with no covering sensor (integrity checking
    /// should have prevented these).
    pub fn configure(&self, conditions: &[CompiledCondition]) -> Vec<String> {
        let mut missing = Vec::new();
        for s in &self.sensors {
            s.base().clear_thresholds();
        }
        for (ix, c) in conditions.iter().enumerate() {
            match self.by_attr.get(&c.attr) {
                Some(&six) => {
                    self.sensors[six].base().add_threshold(ix, c.op, c.value);
                }
                None => missing.push(c.attr.clone()),
            }
        }
        missing
    }

    /// The fps sensor, if present.
    pub fn fps(&self) -> Option<&FpsSensor> {
        self.sensors.iter().find_map(|s| match s {
            AnySensor::Fps(f) => Some(f),
            _ => None,
        })
    }

    /// The jitter sensor, if present.
    pub fn jitter(&self) -> Option<&JitterSensor> {
        self.sensors.iter().find_map(|s| match s {
            AnySensor::Jitter(j) => Some(j),
            _ => None,
        })
    }

    /// The buffer gauge, if present.
    pub fn buffer(&self) -> Option<&GaugeSensor> {
        self.sensors.iter().find_map(|s| match s {
            AnySensor::Gauge(g) if g.sensor.attr() == "buffer_size" => Some(g),
            _ => None,
        })
    }

    /// The trend sensor, if present.
    pub fn trend(&self) -> Option<&TrendSensor> {
        self.sensors.iter().find_map(|s| match s {
            AnySensor::Trend(t) => Some(t),
            _ => None,
        })
    }

    /// A gauge by monitored attribute.
    pub fn gauge(&self, attr: &str) -> Option<&GaugeSensor> {
        self.sensors.iter().find_map(|s| match s {
            AnySensor::Gauge(g) if g.sensor.attr() == attr => Some(g),
            _ => None,
        })
    }

    /// Total observations accepted across every sensor in the set.
    pub fn total_observations(&self) -> u64 {
        self.sensors.iter().map(|s| s.base().observations()).sum()
    }

    /// Total spike-filter suppressions across every sensor in the set.
    pub fn total_suppressions(&self) -> u64 {
        self.sensors.iter().map(|s| s.base().suppressions()).sum()
    }

    /// Read the latest value of a sensor by sensor name.
    pub fn read_sensor(&self, name: &str) -> Option<f64> {
        self.by_name
            .get(name)
            .map(|&ix| self.sensors[ix].base().read())
    }

    /// Read the latest value of the sensor monitoring `attr`.
    pub fn read_attr(&self, attr: &str) -> Option<f64> {
        self.by_attr
            .get(attr)
            .map(|&ix| self.sensors[ix].base().read())
    }

    /// Apply a sensor-control action (`enable`, `disable`,
    /// `set_interval`); used by policy actions that manage sensors rather
    /// than notify.
    pub fn control(&self, sensor: &str, method: &str, args: &[ArgExpr]) -> bool {
        let Some(&ix) = self.by_name.get(sensor) else {
            return false;
        };
        let base = self.sensors[ix].base();
        match method {
            "enable" => {
                base.set_enabled(true);
                true
            }
            "disable" => {
                base.set_enabled(false);
                true
            }
            "set_interval" => {
                if let Some(ArgExpr::Num(us)) = args.first() {
                    base.set_report_interval_us(*us as u64);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_policy::ast::CmpOp;

    fn conditions() -> Vec<CompiledCondition> {
        vec![
            CompiledCondition {
                attr: "frame_rate".into(),
                op: CmpOp::Gt,
                value: 23.0,
            },
            CompiledCondition {
                attr: "frame_rate".into(),
                op: CmpOp::Lt,
                value: 27.0,
            },
            CompiledCondition {
                attr: "jitter_rate".into(),
                op: CmpOp::Lt,
                value: 1.25,
            },
            CompiledCondition {
                attr: "buffer_size".into(),
                op: CmpOp::Lt,
                value: 8000.0,
            },
        ]
    }

    #[test]
    fn video_standard_covers_example_conditions() {
        let set = SensorSet::video_standard();
        assert_eq!(set.len(), 3);
        let missing = set.configure(&conditions());
        assert!(missing.is_empty());
    }

    #[test]
    fn missing_attribute_reported() {
        let set = SensorSet::video_standard();
        let mut cs = conditions();
        cs.push(CompiledCondition {
            attr: "colour_depth".into(),
            op: CmpOp::Gt,
            value: 8.0,
        });
        assert_eq!(set.configure(&cs), vec!["colour_depth".to_string()]);
    }

    #[test]
    fn reads_by_name_and_attr() {
        let set = SensorSet::video_standard();
        set.buffer().unwrap().sample(1234.0, 1);
        assert_eq!(set.read_sensor("buffer_sensor"), Some(1234.0));
        assert_eq!(set.read_attr("buffer_size"), Some(1234.0));
        assert_eq!(set.read_sensor("nothing"), None);
        assert_eq!(set.read_attr("nothing"), None);
    }

    #[test]
    fn reconfigure_replaces_thresholds() {
        let set = SensorSet::video_standard();
        set.configure(&conditions());
        // Second configure with a single condition: old thresholds gone.
        let only = vec![CompiledCondition {
            attr: "buffer_size".into(),
            op: CmpOp::Lt,
            value: 100.0,
        }];
        assert!(set.configure(&only).is_empty());
        let g = set.buffer().unwrap();
        g.sensor.set_spike_filter(1);
        // Condition key 0 now belongs to buffer_size.
        let alarms = g.sample(200.0, 1);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].condition, 0);
    }

    #[test]
    fn control_actions() {
        let set = SensorSet::video_standard();
        assert!(set.control("fps_sensor", "disable", &[]));
        assert!(!set.fps().unwrap().sensor.is_enabled());
        assert!(set.control("fps_sensor", "enable", &[]));
        assert!(set.control("fps_sensor", "set_interval", &[ArgExpr::Num(500.0)]));
        assert!(
            !set.control("fps_sensor", "set_interval", &[]),
            "missing arg"
        );
        assert!(!set.control("fps_sensor", "frobnicate", &[]));
        assert!(!set.control("ghost", "enable", &[]));
    }
}
