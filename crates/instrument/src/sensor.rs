//! Sensors: thresholded metric collectors embedded in instrumented
//! processes (Section 5.1).
//!
//! A sensor monitors one attribute. Thresholds (one per policy condition
//! involving the attribute) are registered at policy-load time; during
//! run time sensors can be enabled/disabled, reporting intervals adjusted
//! and thresholds changed — the knobs Section 9 highlights for changing
//! QoS requirements while an application executes.
//!
//! Sensors are thread-safe (atomics + `parking_lot`) so the same code path
//! runs inside the deterministic simulation (timestamps injected by the
//! caller) and on real threads in the live overhead benchmarks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::RwLock;
use qos_policy::ast::CmpOp;

use crate::report::AlarmEvent;

/// How many consecutive out-of-range observations are required before an
/// alarm transition is reported ("unusual spikes are filtered out",
/// Example 2).
pub const DEFAULT_SPIKE_FILTER: u32 = 2;

/// A threshold registered with a sensor: one policy condition.
#[derive(Debug)]
struct Threshold {
    /// The coordinator's global condition index.
    condition: usize,
    op: CmpOp,
    value: f64,
    /// Current (reported) satisfaction state.
    satisfied: bool,
    /// Consecutive observations contradicting the reported state.
    contrary_streak: u32,
}

impl Threshold {
    fn holds(&self, sample: f64) -> bool {
        match self.op {
            CmpOp::Eq => sample == self.value,
            CmpOp::Ne => sample != self.value,
            CmpOp::Lt => sample < self.value,
            CmpOp::Le => sample <= self.value,
            CmpOp::Gt => sample > self.value,
            CmpOp::Ge => sample >= self.value,
        }
    }
}

/// A generic sensor for one attribute.
#[derive(Debug)]
pub struct Sensor {
    name: String,
    attr: String,
    enabled: AtomicBool,
    /// Minimum spacing between threshold evaluations, µs (0 = every
    /// observation).
    report_interval_us: AtomicU64,
    last_eval_us: AtomicU64,
    /// Most recent observed value (f64 bits).
    value_bits: AtomicU64,
    observations: AtomicU64,
    /// Out-of-range observations swallowed by the spike filter (the
    /// contrary streak had not yet reached the filter length).
    suppressions: AtomicU64,
    thresholds: RwLock<Vec<Threshold>>,
    spike_filter: AtomicU64,
}

impl Sensor {
    /// New enabled sensor with no thresholds.
    pub fn new(name: impl Into<String>, attr: impl Into<String>) -> Self {
        Sensor {
            name: name.into(),
            attr: attr.into(),
            enabled: AtomicBool::new(true),
            report_interval_us: AtomicU64::new(0),
            last_eval_us: AtomicU64::new(0),
            value_bits: AtomicU64::new(0f64.to_bits()),
            observations: AtomicU64::new(0),
            suppressions: AtomicU64::new(0),
            thresholds: RwLock::new(Vec::new()),
            spike_filter: AtomicU64::new(DEFAULT_SPIKE_FILTER as u64),
        }
    }

    /// Sensor name (e.g. `fps_sensor`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monitored attribute (e.g. `frame_rate`).
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Register a threshold for a condition key. Initial state is
    /// "satisfied" (no alarm until observed otherwise).
    pub fn add_threshold(&self, condition: usize, op: CmpOp, value: f64) {
        self.thresholds.write().push(Threshold {
            condition,
            op,
            value,
            satisfied: true,
            contrary_streak: 0,
        });
    }

    /// Remove all thresholds (before reloading policies).
    pub fn clear_thresholds(&self) {
        self.thresholds.write().clear();
    }

    /// Change the value of an existing threshold at run time (the
    /// Section 9 "thresholds can be modified" interface). Returns true if
    /// a threshold with this condition key existed.
    pub fn set_threshold(&self, condition: usize, value: f64) -> bool {
        let mut ts = self.thresholds.write();
        match ts.iter_mut().find(|t| t.condition == condition) {
            Some(t) => {
                t.value = value;
                t.contrary_streak = 0;
                true
            }
            None => false,
        }
    }

    /// Enable or disable the sensor. Disabled sensors record nothing and
    /// raise no alarms.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is the sensor enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Set the minimum spacing between threshold evaluations.
    pub fn set_report_interval_us(&self, us: u64) {
        self.report_interval_us.store(us, Ordering::Relaxed);
    }

    /// Set how many consecutive contrary observations flip a threshold.
    pub fn set_spike_filter(&self, n: u32) {
        self.spike_filter.store(n.max(1) as u64, Ordering::Relaxed);
    }

    /// Latest observed value (the `read` method of the paper's sensor
    /// interface).
    pub fn read(&self) -> f64 {
        f64::from_bits(self.value_bits.load(Ordering::Relaxed))
    }

    /// Total observations accepted.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Out-of-range observations the spike filter swallowed ("unusual
    /// spikes are filtered out", Example 2).
    pub fn suppressions(&self) -> u64 {
        self.suppressions.load(Ordering::Relaxed)
    }

    /// Record a value without evaluating thresholds (used during a
    /// derived metric's warm-up, when the value is not yet meaningful).
    pub fn record_only(&self, value: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value_bits.store(value.to_bits(), Ordering::Relaxed);
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Feed one observation; returns alarm transitions (usually none).
    /// This is the hot path measured by the overhead experiment (E3).
    pub fn observe(&self, value: f64, now_us: u64) -> Vec<AlarmEvent> {
        if !self.enabled.load(Ordering::Relaxed) {
            return Vec::new();
        }
        self.value_bits.store(value.to_bits(), Ordering::Relaxed);
        self.observations.fetch_add(1, Ordering::Relaxed);

        // Reporting-interval gate.
        let interval = self.report_interval_us.load(Ordering::Relaxed);
        if interval > 0 {
            let last = self.last_eval_us.load(Ordering::Relaxed);
            if now_us.saturating_sub(last) < interval && last != 0 {
                return Vec::new();
            }
            self.last_eval_us.store(now_us, Ordering::Relaxed);
        }

        // Fast path: no state change pending anywhere.
        {
            let ts = self.thresholds.read();
            if ts
                .iter()
                .all(|t| t.holds(value) == t.satisfied && t.contrary_streak == 0)
            {
                return Vec::new();
            }
        }

        let spike = self.spike_filter.load(Ordering::Relaxed) as u32;
        let mut out = Vec::new();
        let mut ts = self.thresholds.write();
        for t in ts.iter_mut() {
            let holds = t.holds(value);
            if holds == t.satisfied {
                t.contrary_streak = 0;
                continue;
            }
            t.contrary_streak += 1;
            if t.contrary_streak >= spike {
                t.satisfied = holds;
                t.contrary_streak = 0;
                out.push(AlarmEvent {
                    condition: t.condition,
                    satisfied: holds,
                    value,
                    at_us: now_us,
                });
            } else {
                self.suppressions.fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }
}

/// A frame-rate sensor (the paper's `fps_sensor` / sensor *s1* of
/// Example 2): fed by a probe triggered after each frame is retrieved,
/// decoded and displayed; derives frames/second from inter-frame timing
/// over a sliding window.
#[derive(Debug)]
pub struct FpsSensor {
    /// Underlying thresholded sensor for `frame_rate`.
    pub sensor: Sensor,
    window_us: u64,
    stamps: RwLock<std::collections::VecDeque<u64>>,
    /// Threshold evaluation starts once the sliding window has had a
    /// chance to fill; before that the rate reads artificially low and
    /// would raise spurious start-up alarms.
    warmup_until: AtomicU64,
}

impl FpsSensor {
    /// New sensor deriving the rate over `window_us` of history.
    pub fn new(name: impl Into<String>, window_us: u64) -> Self {
        FpsSensor {
            sensor: Sensor::new(name, "frame_rate"),
            window_us: window_us.max(1),
            stamps: RwLock::new(std::collections::VecDeque::new()),
            warmup_until: AtomicU64::new(u64::MAX),
        }
    }

    fn warmed_up(&self, now_us: u64) -> bool {
        let until = self.warmup_until.load(Ordering::Relaxed);
        if until == u64::MAX {
            self.warmup_until
                .store(now_us.saturating_add(self.window_us), Ordering::Relaxed);
            return false;
        }
        now_us >= until
    }

    /// Probe: a frame was displayed now.
    pub fn frame_displayed(&self, now_us: u64) -> Vec<AlarmEvent> {
        let warm = self.warmed_up(now_us);
        {
            let mut s = self.stamps.write();
            s.push_back(now_us);
            let horizon = now_us.saturating_sub(self.window_us);
            while s.front().is_some_and(|&t| t < horizon) {
                s.pop_front();
            }
        }
        let fps = self.current_fps(now_us);
        if warm {
            self.sensor.observe(fps, now_us)
        } else {
            self.sensor.record_only(fps);
            Vec::new()
        }
    }

    /// Probe: periodic tick so a stalled stream still drives the rate
    /// toward zero (no frames → no `frame_displayed` calls).
    pub fn tick(&self, now_us: u64) -> Vec<AlarmEvent> {
        let warm = self.warmed_up(now_us);
        {
            let mut s = self.stamps.write();
            let horizon = now_us.saturating_sub(self.window_us);
            while s.front().is_some_and(|&t| t < horizon) {
                s.pop_front();
            }
        }
        let fps = self.current_fps(now_us);
        if warm {
            self.sensor.observe(fps, now_us)
        } else {
            self.sensor.record_only(fps);
            Vec::new()
        }
    }

    /// Frames per second over the trailing window.
    pub fn current_fps(&self, _now_us: u64) -> f64 {
        let s = self.stamps.read();
        s.len() as f64 * 1e6 / self.window_us as f64
    }
}

/// A jitter sensor (sensor *s2* of Example 2): the standard deviation of
/// inter-frame gaps over a sliding window, expressed in units of 10 ms
/// (so a perfectly paced 25 FPS stream scores ~0 and the paper's
/// `jitter_rate < 1.25` bound corresponds to a 12.5 ms gap deviation).
#[derive(Debug)]
pub struct JitterSensor {
    /// Underlying thresholded sensor for `jitter_rate`.
    pub sensor: Sensor,
    window: usize,
    gaps_us: RwLock<(Option<u64>, std::collections::VecDeque<f64>)>,
}

impl JitterSensor {
    /// New sensor over a window of the last `window` inter-frame gaps.
    pub fn new(name: impl Into<String>, window: usize) -> Self {
        JitterSensor {
            sensor: Sensor::new(name, "jitter_rate"),
            window: window.max(2),
            gaps_us: RwLock::new((None, std::collections::VecDeque::new())),
        }
    }

    /// Probe: a frame was displayed now.
    pub fn frame_displayed(&self, now_us: u64) -> Vec<AlarmEvent> {
        let jitter = {
            let mut g = self.gaps_us.write();
            let (last, gaps) = &mut *g;
            if let Some(prev) = *last {
                gaps.push_back(now_us.saturating_sub(prev) as f64);
                if gaps.len() > self.window {
                    gaps.pop_front();
                }
            }
            *last = Some(now_us);
            jitter_of(gaps)
        };
        self.sensor.observe(jitter, now_us)
    }

    /// Current jitter value.
    pub fn current(&self) -> f64 {
        jitter_of(&self.gaps_us.read().1)
    }
}

/// Std-dev of gaps in units of 10 ms.
fn jitter_of(gaps: &std::collections::VecDeque<f64>) -> f64 {
    if gaps.len() < 2 {
        return 0.0;
    }
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / 10_000.0
}

/// A trend sensor (the Section 10 *proactive QoS* extension): derives the
/// growth rate of an underlying metric (units per second) from a sliding
/// window of samples via least-squares regression. A policy over the
/// derived rate (e.g. `buffer_growth < 30000`) violates while the raw
/// metric is still within specification — "potential problems are
/// detected and handled before they actually occur".
#[derive(Debug)]
pub struct TrendSensor {
    /// Underlying thresholded sensor for the derived rate attribute.
    pub sensor: Sensor,
    window_us: u64,
    samples: RwLock<std::collections::VecDeque<(u64, f64)>>,
}

impl TrendSensor {
    /// A sensor deriving `attr` (a rate, per second) over `window_us` of
    /// history of the raw metric.
    pub fn new(name: impl Into<String>, attr: impl Into<String>, window_us: u64) -> Self {
        TrendSensor {
            sensor: Sensor::new(name, attr),
            window_us: window_us.max(1),
            samples: RwLock::new(std::collections::VecDeque::new()),
        }
    }

    /// Probe: record a raw metric sample; evaluates the derived rate.
    pub fn sample(&self, value: f64, now_us: u64) -> Vec<AlarmEvent> {
        let slope = {
            let mut w = self.samples.write();
            w.push_back((now_us, value));
            let horizon = now_us.saturating_sub(self.window_us);
            while w.front().is_some_and(|&(t, _)| t < horizon) {
                w.pop_front();
            }
            slope_of(&w)
        };
        self.sensor.observe(slope, now_us)
    }

    /// Current estimated rate (units per second).
    pub fn current_rate(&self) -> f64 {
        slope_of(&self.samples.read())
    }
}

/// Least-squares slope in units per second; 0 with fewer than 2 points.
fn slope_of(samples: &std::collections::VecDeque<(u64, f64)>) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let t0 = samples.front().expect("n >= 2").0;
    let mut st = 0.0;
    let mut sv = 0.0;
    let mut stt = 0.0;
    let mut stv = 0.0;
    for &(t, v) in samples {
        let ts = (t - t0) as f64 / 1e6;
        st += ts;
        sv += v;
        stt += ts * ts;
        stv += ts * v;
    }
    let denom = nf * stt - st * st;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (nf * stv - st * sv) / denom
    }
}

/// A gauge sensor (the buffer-length sensor *s3* of Example 5, CPU-time
/// and memory sensors): the probe hands it already-computed values.
#[derive(Debug)]
pub struct GaugeSensor {
    /// Underlying thresholded sensor.
    pub sensor: Sensor,
}

impl GaugeSensor {
    /// New gauge for an attribute.
    pub fn new(name: impl Into<String>, attr: impl Into<String>) -> Self {
        GaugeSensor {
            sensor: Sensor::new(name, attr),
        }
    }

    /// Probe: record a sampled value.
    pub fn sample(&self, value: f64, now_us: u64) -> Vec<AlarmEvent> {
        self.sensor.observe(value, now_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fps_below_23(s: &Sensor) {
        // Condition 0: frame_rate > 23 (the lower bound of Example 3).
        s.add_threshold(0, CmpOp::Gt, 23.0);
    }

    #[test]
    fn threshold_edge_triggering_with_spike_filter() {
        let s = Sensor::new("fps_sensor", "frame_rate");
        fps_below_23(&s);
        // Needs DEFAULT_SPIKE_FILTER consecutive bad samples.
        assert!(s.observe(20.0, 1).is_empty(), "first bad sample filtered");
        let alarms = s.observe(20.0, 2);
        assert_eq!(alarms.len(), 1);
        assert!(!alarms[0].satisfied);
        assert_eq!(alarms[0].condition, 0);
        // Stays violated: no repeat alarms.
        assert!(s.observe(19.0, 3).is_empty());
        // Recovery is also edge-triggered and spike-filtered.
        assert!(s.observe(25.0, 4).is_empty());
        let back = s.observe(25.0, 5);
        assert_eq!(back.len(), 1);
        assert!(back[0].satisfied);
    }

    #[test]
    fn spike_does_not_alarm() {
        let s = Sensor::new("fps_sensor", "frame_rate");
        fps_below_23(&s);
        // One bad sample surrounded by good ones: the Example 2 spike.
        assert!(s.observe(24.0, 1).is_empty());
        assert!(s.observe(5.0, 2).is_empty());
        assert!(s.observe(24.0, 3).is_empty());
        assert!(s.observe(5.0, 4).is_empty());
        assert!(s.observe(24.0, 5).is_empty());
        assert_eq!(
            s.suppressions(),
            2,
            "each filtered spike counts as one suppression"
        );
    }

    #[test]
    fn disabled_sensor_is_silent() {
        let s = Sensor::new("x", "a");
        s.add_threshold(0, CmpOp::Lt, 10.0);
        s.set_enabled(false);
        for t in 0..10 {
            assert!(s.observe(50.0, t).is_empty());
        }
        assert_eq!(s.observations(), 0);
        s.set_enabled(true);
        s.observe(50.0, 11);
        let a = s.observe(50.0, 12);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn report_interval_gates_evaluation() {
        let s = Sensor::new("x", "a");
        s.add_threshold(0, CmpOp::Lt, 10.0);
        s.set_report_interval_us(1_000);
        s.set_spike_filter(1);
        let a = s.observe(50.0, 1); // first evaluation
        assert_eq!(a.len(), 1);
        // Recover, but within the interval: not evaluated.
        assert!(s.observe(5.0, 200).is_empty());
        // read() still tracks the latest raw value.
        assert_eq!(s.read(), 5.0);
        // After the interval, evaluation resumes.
        let a = s.observe(5.0, 1_500);
        assert_eq!(a.len(), 1);
        assert!(a[0].satisfied);
    }

    #[test]
    fn runtime_threshold_change() {
        let s = Sensor::new("x", "a");
        s.set_spike_filter(1);
        s.add_threshold(7, CmpOp::Gt, 23.0);
        assert_eq!(s.observe(30.0, 1).len(), 0, "30 > 23 ok");
        assert!(s.set_threshold(7, 40.0), "raise the bar at run time");
        let a = s.observe(30.0, 2);
        assert_eq!(a.len(), 1, "30 < 40 now violates");
        assert!(!s.set_threshold(99, 1.0));
    }

    #[test]
    fn fps_sensor_computes_windowed_rate() {
        let f = FpsSensor::new("fps_sensor", 1_000_000);
        // 25 fps = one frame every 40 ms.
        let mut now = 0;
        for _ in 0..50 {
            now += 40_000;
            f.frame_displayed(now);
        }
        let fps = f.current_fps(now);
        assert!((fps - 25.0).abs() <= 1.0, "fps {fps}");
    }

    #[test]
    fn fps_sensor_tick_detects_stall() {
        let f = FpsSensor::new("fps_sensor", 1_000_000);
        f.sensor.add_threshold(0, CmpOp::Gt, 23.0);
        f.sensor.set_spike_filter(1);
        let mut now = 0;
        for _ in 0..50 {
            now += 40_000;
            f.frame_displayed(now);
        }
        // Stream stalls; ticks alone must drive the rate down and alarm.
        let mut alarms = Vec::new();
        for _ in 0..20 {
            now += 100_000;
            alarms.extend(f.tick(now));
        }
        assert_eq!(alarms.len(), 1);
        assert!(!alarms[0].satisfied);
        assert!(f.current_fps(now) < 23.0);
    }

    #[test]
    fn jitter_sensor_distinguishes_steady_from_bursty() {
        let steady = JitterSensor::new("jitter_sensor", 32);
        let mut now = 0;
        for _ in 0..40 {
            now += 40_000;
            steady.frame_displayed(now);
        }
        assert!(
            steady.current() < 0.1,
            "steady stream jitter {}",
            steady.current()
        );

        let bursty = JitterSensor::new("jitter_sensor", 32);
        let mut now = 0;
        for i in 0..40 {
            now += if i % 2 == 0 { 10_000 } else { 70_000 };
            bursty.frame_displayed(now);
        }
        assert!(
            bursty.current() > 1.25,
            "bursty stream must exceed the paper's bound: {}",
            bursty.current()
        );
    }

    #[test]
    fn gauge_sensor_reports_buffer_condition() {
        let g = GaugeSensor::new("buffer_sensor", "buffer_size");
        g.sensor.add_threshold(3, CmpOp::Lt, 8_000.0);
        g.sensor.set_spike_filter(1);
        assert!(
            g.sample(100.0, 1).is_empty(),
            "small buffer satisfies < 8000"
        );
        let a = g.sample(20_000.0, 2);
        assert_eq!(a.len(), 1);
        assert!(!a[0].satisfied);
        assert_eq!(g.sensor.read(), 20_000.0);
    }

    #[test]
    fn trend_sensor_estimates_growth_rate() {
        let t = TrendSensor::new("trend_sensor", "buffer_growth", 2_000_000);
        // Buffer growing at 50_000 bytes/second, sampled every 100 ms.
        let mut now = 0;
        for i in 0..30u64 {
            now = i * 100_000;
            t.sample(i as f64 * 5_000.0, now);
        }
        let rate = t.current_rate();
        assert!((rate - 50_000.0).abs() < 1_000.0, "rate {rate}");
        let _ = now;
    }

    #[test]
    fn trend_sensor_flat_metric_has_zero_slope() {
        let t = TrendSensor::new("trend_sensor", "buffer_growth", 2_000_000);
        for i in 0..20u64 {
            t.sample(42.0, i * 100_000);
        }
        assert!(t.current_rate().abs() < 1e-9);
    }

    #[test]
    fn trend_sensor_alarms_on_steep_growth() {
        let t = TrendSensor::new("trend_sensor", "buffer_growth", 2_000_000);
        t.sensor.add_threshold(0, CmpOp::Lt, 30_000.0);
        t.sensor.set_spike_filter(1);
        // Stable phase: no alarm.
        let mut alarms = Vec::new();
        for i in 0..10u64 {
            alarms.extend(t.sample(100.0, i * 100_000));
        }
        assert!(alarms.is_empty(), "flat phase must not alarm");
        // Growth at 60 kB/s: alarm (condition `< 30000` violated).
        for i in 10..30u64 {
            alarms.extend(t.sample((i - 9) as f64 * 6_000.0, i * 100_000));
        }
        assert_eq!(alarms.len(), 1);
        assert!(!alarms[0].satisfied);
    }

    #[test]
    fn sensors_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Sensor>();
        check::<FpsSensor>();
        check::<JitterSensor>();
        check::<GaugeSensor>();
        check::<TrendSensor>();
    }

    #[test]
    fn concurrent_observation_is_safe() {
        use std::sync::Arc;
        let s = Arc::new(Sensor::new("x", "a"));
        s.add_threshold(0, CmpOp::Lt, 1_000_000.0);
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    s.observe((t * 10_000 + i) as f64, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.observations(), 40_000);
    }
}
