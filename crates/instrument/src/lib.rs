//! # qos-instrument — in-process instrumentation
//!
//! The instrumented-process half of the enforcement architecture
//! (Section 5): **probes** embedded at strategic points feed **sensors**
//! (thresholded metric collectors with spike filtering, runtime
//! enable/disable, adjustable reporting intervals and thresholds);
//! **actuators** expose control points; and the per-process
//! **coordinator** tracks adherence to the loaded policies, evaluating a
//! boolean expression over generated condition variables whenever a
//! sensor raises an alarm, and assembling the violation notification for
//! the QoS Host Manager.
//!
//! Probes are realised as methods on the concrete sensor types, exactly
//! as the paper describes ("probes can either be methods of the sensors
//! and actuators or be functions that call these methods"):
//! [`sensor::FpsSensor::frame_displayed`] is Example 2's frame probe and
//! [`sensor::GaugeSensor::sample`] is Example 5's socket-buffer probe.
//!
//! All components are thread-safe and take explicit timestamps, so the
//! identical code path runs inside the deterministic simulation and on
//! real threads for the Section 7 overhead measurements (E2/E3).

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod actuator;
pub mod coordinator;
pub mod registry;
pub mod report;
pub mod sensor;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::actuator::{Actuator, ActuatorSet, FnActuator};
    pub use crate::coordinator::{Coordinator, DEFAULT_RENOTIFY_US};
    pub use crate::registry::{AnySensor, SensorSet};
    pub use crate::report::{AlarmEvent, ViolationReport};
    pub use crate::sensor::{
        FpsSensor, GaugeSensor, JitterSensor, Sensor, TrendSensor, DEFAULT_SPIKE_FILTER,
    };
}

pub use prelude::*;
