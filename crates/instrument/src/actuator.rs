//! Actuators (Section 5.1): instrumentation components that exert control
//! over the instrumented process — change its operation or behaviour.
//! The paper notes they "are not used extensively" in the prototype but
//! support QoS negotiation and adaptation; here they let the management
//! plane adapt the *application* (e.g. drop video quality) rather than
//! its resource allocation.

use std::collections::HashMap;

/// A control point exposed by the instrumented process.
pub trait Actuator: Send + Sync {
    /// Actuator name (addressable from management actions).
    fn name(&self) -> &str;
    /// Apply a command with a numeric argument; returns false if the
    /// command is not understood.
    fn actuate(&self, command: &str, value: f64) -> bool;
}

/// Signature of an actuator callback: `(command, value) -> accepted`.
pub type ActuatorFn = Box<dyn Fn(&str, f64) -> bool + Send + Sync>;

/// An actuator backed by a closure (the common case: the application
/// registers a callback that flips an internal knob).
pub struct FnActuator {
    name: String,
    f: ActuatorFn,
}

impl FnActuator {
    /// Wrap a closure as an actuator.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&str, f64) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnActuator {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Actuator for FnActuator {
    fn name(&self) -> &str {
        &self.name
    }
    fn actuate(&self, command: &str, value: f64) -> bool {
        (self.f)(command, value)
    }
}

impl std::fmt::Debug for FnActuator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnActuator({})", self.name)
    }
}

/// The actuators of one instrumented process.
#[derive(Default)]
pub struct ActuatorSet {
    by_name: HashMap<String, Box<dyn Actuator>>,
}

impl ActuatorSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an actuator.
    pub fn add(&mut self, a: impl Actuator + 'static) {
        self.by_name.insert(a.name().to_string(), Box::new(a));
    }

    /// Invoke `command(value)` on a named actuator. False if the actuator
    /// is missing or rejected the command.
    pub fn actuate(&self, name: &str, command: &str, value: f64) -> bool {
        self.by_name
            .get(name)
            .is_some_and(|a| a.actuate(command, value))
    }

    /// Number of registered actuators.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }
}

impl std::fmt::Debug for ActuatorSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActuatorSet({} actuators)", self.by_name.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn closure_actuator_fires() {
        let quality = Arc::new(AtomicU64::new(100));
        let q = Arc::clone(&quality);
        let mut set = ActuatorSet::new();
        set.add(FnActuator::new("quality_actuator", move |cmd, v| {
            if cmd == "set_quality" {
                q.store(v as u64, Ordering::Relaxed);
                true
            } else {
                false
            }
        }));
        assert_eq!(set.len(), 1);
        assert!(set.actuate("quality_actuator", "set_quality", 50.0));
        assert_eq!(quality.load(Ordering::Relaxed), 50);
        assert!(!set.actuate("quality_actuator", "self_destruct", 0.0));
        assert!(!set.actuate("ghost", "set_quality", 1.0));
    }
}
