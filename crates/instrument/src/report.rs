//! Report types flowing from instrumentation to the management plane.

/// An alarm event produced by a sensor when a threshold's satisfaction
/// changes (after spike filtering): the detection step of enforcement.
#[derive(Clone, Debug, PartialEq)]
pub struct AlarmEvent {
    /// The condition key the threshold was registered under (the
    /// coordinator's global condition index).
    pub condition: usize,
    /// Whether the condition now holds.
    pub satisfied: bool,
    /// The observed value that caused the transition.
    pub value: f64,
    /// Timestamp, microseconds.
    pub at_us: u64,
}

/// A violation notification from a coordinator to its QoS Host Manager —
/// the payload of the policy's `QoSHostManager->notify(...)` action.
#[derive(Clone, Debug, PartialEq)]
pub struct ViolationReport {
    /// Violated policy name.
    pub policy: String,
    /// Reporting process (subject identity).
    pub process: String,
    /// Timestamp, microseconds.
    pub at_us: u64,
    /// Telemetry correlation id of the violation episode (0 = none):
    /// minted when the sensor first tripped, carried end to end so the
    /// whole lifecycle is one causal chain.
    pub corr: u64,
    /// Attribute readings gathered by the policy's sensor-read actions,
    /// e.g. `frame_rate`, `jitter_rate`, `buffer_size`.
    pub readings: Vec<(String, f64)>,
}

impl ViolationReport {
    /// Look up a reading by attribute name.
    pub fn reading(&self, attr: &str) -> Option<f64> {
        self.readings
            .iter()
            .find(|(a, _)| a == attr)
            .map(|&(_, v)| v)
    }

    /// The wire form of this report (live-mode violation notification).
    pub fn to_wire(&self) -> qos_wire::messages::LiveViolationMsg {
        qos_wire::messages::LiveViolationMsg {
            policy: self.policy.clone(),
            process: self.process.clone(),
            at_us: self.at_us,
            corr: self.corr,
            readings: self.readings.clone(),
        }
    }

    /// Rebuild a report from its wire form (the receiving side of a
    /// live-mode transport).
    pub fn from_wire(m: qos_wire::messages::LiveViolationMsg) -> ViolationReport {
        ViolationReport {
            policy: m.policy,
            process: m.process,
            at_us: m.at_us,
            corr: m.corr,
            readings: m.readings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reading_lookup() {
        let r = ViolationReport {
            policy: "P".into(),
            process: "h0:p1".into(),
            at_us: 5,
            corr: 0,
            readings: vec![("frame_rate".into(), 18.0), ("buffer_size".into(), 9000.0)],
        };
        assert_eq!(r.reading("frame_rate"), Some(18.0));
        assert_eq!(r.reading("nope"), None);
    }

    #[test]
    fn wire_roundtrip_preserves_report() {
        let r = ViolationReport {
            policy: "NotifyQoSViolation".into(),
            process: "h0:p1".into(),
            at_us: 123_456,
            corr: 77,
            readings: vec![("frame_rate".into(), 18.0), ("buffer_size".into(), 9000.0)],
        };
        assert_eq!(ViolationReport::from_wire(r.to_wire()), r);
    }
}
