//! The coordinator (Section 5.2): the per-process instrumentation
//! component that tracks adherence to the policies attached to an
//! application instance.
//!
//! At policy-load time the coordinator extracts each policy's condition
//! list, interns conditions into a global table (a condition or the
//! sensor feeding it may be shared by several policies — the many-to-many
//! relationship of Section 5.1), generates a boolean variable per
//! condition and keeps the policy's boolean expression over those
//! variables. When a sensor raises an alarm report the coordinator maps
//! it to the variable, re-evaluates the affected policies' expressions
//! and, if one evaluates to false, triggers the policy's actions
//! (Example 4) — reading sensors and notifying the QoS Host Manager.

use std::collections::HashMap;

use qos_policy::compile::{CompiledCondition, CompiledPolicy};

use crate::registry::SensorSet;
use crate::report::{AlarmEvent, ViolationReport};

/// Default minimum spacing between repeated notifications for a policy
/// that stays violated (the feedback loop needs reminders to keep
/// adjusting, but not one per frame).
pub const DEFAULT_RENOTIFY_US: u64 = 1_000_000;

/// Run-time state for one policy object.
#[derive(Debug)]
struct PolicyRt {
    compiled: CompiledPolicy,
    /// Policy-local condition index → global condition index.
    var_map: Vec<usize>,
    violated: bool,
    last_notify_us: Option<u64>,
    violations: u64,
    /// Telemetry correlation id of the current violation episode
    /// (0 = none); set by the owner when the violation is detected and
    /// cleared on recovery.
    corr: u64,
}

/// The coordinator.
#[derive(Debug)]
pub struct Coordinator {
    process: String,
    conditions: Vec<CompiledCondition>,
    cond_state: Vec<bool>,
    /// Global condition index → policies referencing it.
    cond_users: Vec<Vec<usize>>,
    policies: Vec<PolicyRt>,
    renotify_us: u64,
    /// Policies that transitioned out of violation since the last
    /// [`Coordinator::take_recovered`] drain, with the episode's
    /// correlation id.
    recovered: Vec<(usize, u64)>,
}

impl Coordinator {
    /// A coordinator for the named process instance.
    pub fn new(process: impl Into<String>) -> Self {
        Coordinator {
            process: process.into(),
            conditions: Vec::new(),
            cond_state: Vec::new(),
            cond_users: Vec::new(),
            policies: Vec::new(),
            renotify_us: DEFAULT_RENOTIFY_US,
            recovered: Vec::new(),
        }
    }

    /// Set the re-notification interval for persistently violated
    /// policies.
    pub fn set_renotify_us(&mut self, us: u64) {
        self.renotify_us = us;
    }

    /// The process identity used in reports.
    pub fn process(&self) -> &str {
        &self.process
    }

    /// Load a policy, interning its conditions. Returns the policy index.
    ///
    /// Idempotent by policy name: policy distribution is at-least-once
    /// (the agent handshake retries on loss), and loading the same policy
    /// twice would double every notification. A repeat returns the
    /// existing index untouched.
    pub fn load_policy(&mut self, compiled: CompiledPolicy) -> usize {
        if let Some(ix) = self
            .policies
            .iter()
            .position(|p| p.compiled.name == compiled.name)
        {
            return ix;
        }
        let policy_ix = self.policies.len();
        let mut var_map = Vec::with_capacity(compiled.conditions.len());
        for c in &compiled.conditions {
            let gix = match self.conditions.iter().position(|e| e == c) {
                Some(ix) => ix,
                None => {
                    self.conditions.push(c.clone());
                    self.cond_state.push(true);
                    self.cond_users.push(Vec::new());
                    self.conditions.len() - 1
                }
            };
            self.cond_users[gix].push(policy_ix);
            var_map.push(gix);
        }
        self.policies.push(PolicyRt {
            compiled,
            var_map,
            violated: false,
            last_notify_us: None,
            violations: 0,
            corr: 0,
        });
        policy_ix
    }

    /// The interned condition table — used to configure sensor thresholds
    /// (`condition` keys in [`AlarmEvent`] index this table).
    pub fn global_conditions(&self) -> &[CompiledCondition] {
        &self.conditions
    }

    /// Number of loaded policies.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// A loaded policy by index.
    pub fn policy(&self, ix: usize) -> &CompiledPolicy {
        &self.policies[ix].compiled
    }

    /// How many times a policy has transitioned into violation.
    pub fn violation_count(&self, ix: usize) -> u64 {
        self.policies[ix].violations
    }

    /// Is the policy currently violated?
    pub fn is_violated(&self, ix: usize) -> bool {
        self.policies[ix].violated
    }

    /// Attach a telemetry correlation id to the policy's current
    /// violation episode (the owner mints it when the sensor first
    /// trips).
    pub fn set_corr(&mut self, ix: usize, corr: u64) {
        if let Some(rt) = self.policies.get_mut(ix) {
            rt.corr = corr;
        }
    }

    /// Correlation id of the policy's current violation episode (0 when
    /// none attached).
    pub fn corr(&self, ix: usize) -> u64 {
        self.policies.get(ix).map_or(0, |rt| rt.corr)
    }

    /// Drain the policies that transitioned out of violation since the
    /// last call, as `(policy index, episode correlation id)` pairs —
    /// the back-in-spec edge of the violation lifecycle.
    pub fn take_recovered(&mut self) -> Vec<(usize, u64)> {
        std::mem::take(&mut self.recovered)
    }

    /// Handle one sensor alarm (Example 4's algorithm): set the condition
    /// variable, re-evaluate the boolean expression of every policy using
    /// it, and return the indices of policies that newly entered
    /// violation.
    pub fn on_alarm(&mut self, alarm: &AlarmEvent) -> Vec<usize> {
        let mut triggered = self.alarm_edge(alarm);
        // Chaos: a sensor redelivers the same alarm. The edge filter
        // (state already equals `satisfied`) must make the replay a
        // no-op — no policy triggers twice for one crossing.
        if qos_buggify::buggify!("coord.alarm.duplicate") {
            triggered.extend(self.alarm_edge(alarm));
        }
        triggered
    }

    fn alarm_edge(&mut self, alarm: &AlarmEvent) -> Vec<usize> {
        let Some(state) = self.cond_state.get_mut(alarm.condition) else {
            return Vec::new();
        };
        if *state == alarm.satisfied {
            return Vec::new();
        }
        *state = alarm.satisfied;
        let mut triggered = Vec::new();
        for &pix in &self.cond_users[alarm.condition] {
            let rt = &mut self.policies[pix];
            let vars: Vec<bool> = rt.var_map.iter().map(|&g| self.cond_state[g]).collect();
            let violated = rt.compiled.violated(&vars);
            if violated && !rt.violated {
                rt.violated = true;
                rt.violations += 1;
                rt.last_notify_us = Some(alarm.at_us);
                triggered.push(pix);
            } else if !violated && rt.violated {
                rt.violated = false;
                self.recovered.push((pix, rt.corr));
                rt.corr = 0;
            }
        }
        triggered
    }

    /// Periodic poll: returns policies still violated whose last
    /// notification is older than the re-notify interval, marking them
    /// notified. Drives the repeated adjustments of the feedback loop.
    pub fn poll(&mut self, now_us: u64) -> Vec<usize> {
        let mut out = Vec::new();
        for (ix, rt) in self.policies.iter_mut().enumerate() {
            if rt.violated
                && rt
                    .last_notify_us
                    .is_none_or(|t| now_us.saturating_sub(t) >= self.renotify_us)
            {
                rt.last_notify_us = Some(now_us);
                out.push(ix);
            }
        }
        out
    }

    /// Execute a violated policy's `do` actions against the process's
    /// sensors (Example 4: read the frame rate, jitter rate and buffer
    /// size, put them into a report for the QoS Host Manager). Returns
    /// the notification to send, or `None` if the policy has no
    /// host-manager notify action.
    pub fn execute_actions(
        &self,
        policy_ix: usize,
        sensors: &SensorSet,
        now_us: u64,
    ) -> Option<ViolationReport> {
        let rt = self.policies.get(policy_ix)?;
        let corr = rt.corr;
        let compiled = &rt.compiled;
        // `read(out x)` bindings accumulated left to right.
        let mut bindings: HashMap<&str, f64> = HashMap::new();
        let mut notify: Option<Vec<(String, f64)>> = None;
        for action in &compiled.actions {
            let leaf = action.target.leaf().unwrap_or("");
            if leaf == qos_policy::validate::HOST_MANAGER {
                let mut readings = Vec::new();
                for arg in &action.args {
                    if let qos_policy::ast::ArgExpr::Name(n) | qos_policy::ast::ArgExpr::Out(n) =
                        arg
                    {
                        let v = bindings
                            .get(n.as_str())
                            .copied()
                            .or_else(|| sensors.read_attr(n));
                        if let Some(v) = v {
                            readings.push((n.clone(), v));
                        }
                    }
                }
                notify = Some(readings);
            } else if action.method == "read" {
                for arg in &action.args {
                    if let qos_policy::ast::ArgExpr::Out(n) = arg {
                        if let Some(v) = sensors.read_sensor(leaf).or_else(|| sensors.read_attr(n))
                        {
                            bindings.insert(n.as_str(), v);
                        }
                    }
                }
            } else {
                // Sensor control actions (enable/disable/set_threshold).
                sensors.control(leaf, &action.method, &action.args);
            }
        }
        notify.map(|readings| ViolationReport {
            policy: compiled.name.clone(),
            process: self.process.clone(),
            at_us: now_us,
            corr,
            readings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SensorSet;
    use qos_policy::compile::compile;
    use qos_policy::parser::parse_policy;

    const EXAMPLE_1: &str = r#"
    oblig NotifyQoSViolation {
      subject (...)/VideoApplication/qosl_coordinator
      target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
      on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
      do fps_sensor->read(out frame_rate);
         jitter_sensor->read(out jitter_rate);
         buffer_sensor->read(out buffer_size);
         (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
    }"#;

    fn coordinator_with_example1() -> Coordinator {
        let mut c = Coordinator::new("h0:p1/VideoApplication");
        let compiled = compile(&parse_policy(EXAMPLE_1).unwrap()).unwrap();
        c.load_policy(compiled);
        c
    }

    fn alarm(cond: usize, satisfied: bool, at: u64) -> AlarmEvent {
        AlarmEvent {
            condition: cond,
            satisfied,
            value: 0.0,
            at_us: at,
        }
    }

    #[test]
    fn load_policy_is_idempotent_by_name() {
        let mut c = Coordinator::new("h0:p1/VideoApplication");
        let compiled = compile(&parse_policy(EXAMPLE_1).unwrap()).unwrap();
        let ix1 = c.load_policy(compiled.clone());
        let ix2 = c.load_policy(compiled);
        assert_eq!(ix1, ix2, "duplicate delivery returns the same index");
        assert_eq!(c.policy_count(), 1);
        assert_eq!(c.global_conditions().len(), 3, "conditions not doubled");
    }

    #[test]
    fn execute_actions_out_of_range_is_none() {
        let c = coordinator_with_example1();
        let sensors = SensorSet::video_standard();
        assert!(c.execute_actions(99, &sensors, 0).is_none());
    }

    #[test]
    fn example_4_alarm_flow() {
        // Conditions: 0: frame_rate > 23, 1: frame_rate < 27,
        // 2: jitter_rate < 1.25. All initially satisfied.
        let mut c = coordinator_with_example1();
        assert_eq!(c.global_conditions().len(), 3);
        // s1 alarms: frame_rate no longer > 23 -> expression false.
        let t = c.on_alarm(&alarm(0, false, 100));
        assert_eq!(t, vec![0]);
        assert!(c.is_violated(0));
        assert_eq!(c.violation_count(0), 1);
        // Further alarms while violated do not re-trigger.
        let t = c.on_alarm(&alarm(2, false, 200));
        assert!(t.is_empty());
        // Recovery of one condition is not enough (jitter still bad).
        let t = c.on_alarm(&alarm(0, true, 300));
        assert!(t.is_empty());
        assert!(c.is_violated(0));
        // Full recovery clears the violation; next violation re-triggers.
        c.on_alarm(&alarm(2, true, 400));
        assert!(!c.is_violated(0));
        let t = c.on_alarm(&alarm(1, false, 500));
        assert_eq!(t, vec![0]);
        assert_eq!(c.violation_count(0), 2);
    }

    #[test]
    fn duplicate_alarm_for_same_state_ignored() {
        let mut c = coordinator_with_example1();
        assert_eq!(c.on_alarm(&alarm(0, false, 1)).len(), 1);
        assert!(
            c.on_alarm(&alarm(0, false, 2)).is_empty(),
            "no state change"
        );
    }

    #[test]
    fn conditions_shared_across_policies() {
        let mut c = Coordinator::new("p");
        let p1 = compile(
            &parse_policy("oblig A { subject s on not (x > 10) do s->read(out x); }").unwrap(),
        )
        .unwrap();
        let p2 = compile(
            &parse_policy("oblig B { subject s on not (x > 10 AND y > 5) do s->read(out y); }")
                .unwrap(),
        )
        .unwrap();
        c.load_policy(p1);
        c.load_policy(p2);
        // x > 10 interned once.
        assert_eq!(c.global_conditions().len(), 2);
        // One alarm violates both policies.
        let t = c.on_alarm(&alarm(0, false, 1));
        assert_eq!(t, vec![0, 1]);
    }

    #[test]
    fn poll_renotifies_persistent_violations() {
        let mut c = coordinator_with_example1();
        c.set_renotify_us(1_000_000);
        c.on_alarm(&alarm(0, false, 0));
        assert!(c.poll(500_000).is_empty(), "too soon");
        assert_eq!(c.poll(1_000_000), vec![0]);
        assert!(c.poll(1_200_000).is_empty(), "interval restarts");
        assert_eq!(c.poll(2_100_000), vec![0]);
        // Recovery stops renotification.
        c.on_alarm(&alarm(0, true, 2_200_000));
        assert!(c.poll(9_999_999).is_empty());
    }

    #[test]
    fn execute_actions_builds_example_4_report() {
        let mut c = coordinator_with_example1();
        let sensors = SensorSet::video_standard();
        // Make the sensors hold known values.
        sensors.fps().unwrap().frame_displayed(0);
        sensors.fps().unwrap().frame_displayed(40_000);
        sensors.buffer().unwrap().sample(9_000.0, 40_000);
        let trig = c.on_alarm(&alarm(0, false, 50_000));
        assert_eq!(trig, vec![0]);
        let report = c.execute_actions(0, &sensors, 50_000).unwrap();
        assert_eq!(report.policy, "NotifyQoSViolation");
        assert_eq!(report.readings.len(), 3);
        assert_eq!(report.reading("buffer_size"), Some(9_000.0));
        assert!(report.reading("frame_rate").is_some());
        assert!(report.reading("jitter_rate").is_some());
    }

    #[test]
    fn unknown_condition_alarm_is_ignored() {
        let mut c = coordinator_with_example1();
        assert!(c.on_alarm(&alarm(99, false, 1)).is_empty());
    }

    #[test]
    fn corr_tracks_one_violation_episode() {
        let mut c = coordinator_with_example1();
        let sensors = SensorSet::video_standard();
        assert_eq!(c.corr(0), 0);
        c.on_alarm(&alarm(0, false, 100));
        c.set_corr(0, 42);
        assert_eq!(c.corr(0), 42);
        // Reports carry the episode id.
        let report = c.execute_actions(0, &sensors, 200).unwrap();
        assert_eq!(report.corr, 42);
        // Recovery surfaces the (policy, corr) pair once and resets it.
        c.on_alarm(&alarm(0, true, 300));
        assert_eq!(c.take_recovered(), vec![(0, 42)]);
        assert!(c.take_recovered().is_empty(), "drained");
        assert_eq!(c.corr(0), 0);
        // A fresh episode starts with no correlation id.
        c.on_alarm(&alarm(0, false, 400));
        assert_eq!(c.execute_actions(0, &sensors, 500).unwrap().corr, 0);
    }
}
