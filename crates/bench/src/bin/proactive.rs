//! E9 / Section 10 extension: proactive vs reactive QoS management.
//!
//! Load ramps up one CPU hog at a time. The reactive system adapts only
//! after the frame rate has already left specification; the proactive
//! system's leading-indicator policy (socket-buffer occupancy) triggers
//! nudges while the frame rate is still in specification — "potential
//! problems are detected and handled before they actually occur".

use qos_core::prelude::*;

fn main() {
    eprintln!("running reactive and proactive ramp scenarios...");
    let results = parallel_map(&[false, true], |&enabled| proactive(20260704, enabled));
    let (reactive, proactive_run) = (&results[0], &results[1]);

    let mut t = Table::new(&[
        "mode",
        "secs below spec",
        "worst fps",
        "mean fps",
        "proactive nudges",
        "reactive boosts",
    ]);
    for (name, r) in [("reactive", reactive), ("proactive", proactive_run)] {
        t.row(&[
            name.into(),
            format!("{}", r.secs_below_spec),
            f(r.worst_fps, 1),
            f(r.mean_fps, 1),
            format!("{}", r.nudges),
            format!("{}", r.boosts),
        ]);
    }
    println!("E9: gradual load ramp (one hog every 4 s, six hogs)");
    println!("{}", t.render());
    println!(
        "the proactive policy acts on buffer pressure before the frame rate breaks: \
         {} vs {} seconds out of specification",
        proactive_run.secs_below_spec, reactive.secs_below_spec
    );
    assert!(proactive_run.secs_below_spec <= reactive.secs_below_spec);
    assert!(
        proactive_run.nudges > 0,
        "the proactive path must have fired"
    );
    assert!(
        proactive_run.worst_fps > reactive.worst_fps,
        "proactive should avoid the deep dip: {} vs {}",
        proactive_run.worst_fps,
        reactive.worst_fps
    );
}
