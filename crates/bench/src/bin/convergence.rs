//! E4: the Section 2 feedback loop — "resource allocations are adjusted
//! until a suitable one is found that satisfies expectations". A loaded
//! host is started; the trace shows fps and the manager's priority boost
//! converging, and the unmanaged control never recovering.

use qos_core::prelude::*;

fn main() {
    eprintln!("running managed and unmanaged convergence traces...");
    let managed = convergence(42, 5, true);
    let unmanaged = convergence(42, 5, false);

    let mut t = Table::new(&["t (s)", "managed fps", "boost", "unmanaged fps"]);
    for i in (0..managed.fps.len()).step_by(5) {
        t.row(&[
            f(managed.fps[i].0, 0),
            f(managed.fps[i].1, 1),
            format!("{}", managed.boost[i].1),
            f(unmanaged.fps[i].1, 1),
        ]);
    }
    println!("E4: feedback-loop convergence under 5 CPU hogs");
    println!("{}", t.render());
    match managed.settled_at {
        Some(tset) => println!("managed run settled into [23, 30] fps at t = {tset:.0} s"),
        None => println!("managed run did NOT settle (unexpected)"),
    }
    let tail_unmanaged: f64 = unmanaged
        .fps
        .iter()
        .rev()
        .take(20)
        .map(|&(_, v)| v)
        .sum::<f64>()
        / 20.0;
    let tail_managed: f64 = managed
        .fps
        .iter()
        .rev()
        .take(20)
        .map(|&(_, v)| v)
        .sum::<f64>()
        / 20.0;
    println!("steady state: managed {tail_managed:.1} fps, unmanaged {tail_unmanaged:.1} fps");
    assert!(managed.settled_at.is_some(), "managed run must settle");
    assert!(
        tail_managed > tail_unmanaged + 5.0,
        "manager must out-perform"
    );
}
