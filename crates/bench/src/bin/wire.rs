//! Wire-codec throughput: how many management-plane messages per second
//! the hand-rolled `qos-wire` codec encodes and decodes. The paper's
//! management plane lives or dies on the marshalling cost of its
//! violation reports, so the headline row is a representative
//! `ViolationMsg` (readings, bounds and upstream attribution all
//! populated); `RegisterMsg` and the live-mode `LiveViolationMsg` ride
//! along for comparison.
//!
//! Each message is measured two ways:
//!
//! * **unbatched** — one message per frame, the owned decoder and the
//!   zero-copy borrowed decoder side by side;
//! * **batched** — 64 messages coalesced into one `Batch` frame via
//!   [`BatchBuilder`] (the encode path reuses one builder and one output
//!   buffer, as the live report path does) and walked back out with the
//!   borrowed [`WireMsgRef`] views, allocating nothing per message.
//!
//! Flags: `--smoke` (fewer iterations for CI), `--json <path>` (result
//! rows; defaults to `BENCH_wire.json`), `--assert-budget <msgs/s>`
//! (fail unless the batched `ViolationMsg` round trip reaches the given
//! rate).

use std::hint::black_box;
use std::time::Instant;

use qos_bench::{bench_rows_to_json, BenchRow};
use qos_core::prelude::*;
use qos_core::telemetry::MetricSnapshot;
use qos_core::wire::messages::{LiveViolationMsg, TelemetryBatchMsg};
use qos_core::wire::{BatchBuilder, WireMsgRef};

/// Messages coalesced per frame in the batched measurements — the
/// default `ReportBatchPolicy` ceiling is 16; 64 shows the asymptote.
const BATCH: usize = 64;

fn violation() -> WireMsg {
    WireMsg::Violation(ViolationMsg {
        pid: Pid {
            host: HostId(3),
            local: 17,
        },
        proc_name: "VideoApplication".into(),
        policy: "NotifyQoSViolation".into(),
        corr: 123_456_789,
        readings: vec![
            ("frame_rate".into(), 15.0),
            ("buffer_size".into(), 50_000.0),
        ],
        bounds: Some(("frame_rate".into(), 23.0, 27.0)),
        upstream: Some(Upstream {
            host: HostId(1),
            pid: Pid {
                host: HostId(1),
                local: 4,
            },
        }),
    })
}

fn register() -> WireMsg {
    WireMsg::Register(RegisterMsg {
        pid: Pid {
            host: HostId(3),
            local: 17,
        },
        control_port: 100,
        executable: "VideoApplication".into(),
        application: "VideoPlayback".into(),
        role: "*".into(),
        weight: 1.0,
        heartbeat: Some(Dur::from_secs(5)),
    })
}

fn live_violation() -> WireMsg {
    WireMsg::LiveViolation(LiveViolationMsg {
        policy: "NotifyQoSViolation".into(),
        process: "video:0".into(),
        at_us: 42_000_000,
        corr: 7,
        readings: vec![
            ("frame_rate".into(), 15.0),
            ("buffer_size".into(), 50_000.0),
        ],
    })
}

/// A representative live-telemetry batch: the frame the manager
/// publishes to `qosctl` subscribers every publish tick — four lifecycle
/// events plus a small metrics snapshot.
fn telemetry_batch() -> WireMsg {
    let ev = |at_us: u64, stage: Stage| TraceEvent {
        at_us,
        corr: 9,
        stage,
        component: "host-manager".into(),
        name: "example1".into(),
        fields: vec![("frame_rate".into(), 15.0)],
    };
    WireMsg::TelemetryBatch(TelemetryBatchMsg {
        seq: 42,
        source: "host-manager".into(),
        events: vec![
            ev(1_000, Stage::Detect),
            ev(1_050, Stage::Report),
            ev(1_200, Stage::Diagnose),
            ev(1_250, Stage::Adapt),
        ],
        metrics: Some((
            2_000,
            vec![MetricSnapshot {
                family: "live.frames".into(),
                label: "host-manager".into(),
                value: MetricValue::Counter(1234),
            }],
        )),
    })
}

struct Row {
    kind: &'static str,
    mode: &'static str,
    batch: usize,
    frame_bytes: usize,
    encode_mps: f64,
    decode_mps: f64,
    borrowed_mps: f64,
    roundtrip_mps: f64,
}

/// msgs/sec over `iters` runs of `f`.
fn rate(iters: u64, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

/// A cheap per-message read so the borrowed walk cannot be optimized
/// away without materializing anything.
fn borrowed_probe(m: &WireMsgRef<'_>) -> u64 {
    match m {
        WireMsgRef::Violation(v) => v.corr,
        WireMsgRef::LiveViolation(v) => v.corr,
        WireMsgRef::Register(r) => r.control_port as u64,
        WireMsgRef::TelemetryBatch(b) => b.seq,
        _ => 0,
    }
}

fn measure(kind: &'static str, msg: &WireMsg, iters: u64) -> Row {
    let frame = msg.encode_frame();
    assert_eq!(&WireMsg::decode_frame(&frame).expect("valid frame"), msg);
    assert_eq!(
        &WireMsgRef::decode_frame(&frame)
            .expect("valid frame (borrowed)")
            .to_owned_msg(),
        msg
    );
    // Warm up caches and branch predictors before timing.
    for _ in 0..iters / 10 {
        black_box(WireMsg::decode_frame(black_box(&frame)).unwrap());
    }
    let encode_mps = rate(iters, || {
        black_box(black_box(msg).encode_frame());
    });
    let decode_mps = rate(iters, || {
        black_box(WireMsg::decode_frame(black_box(&frame)).unwrap());
    });
    let borrowed_mps = rate(iters, || {
        let v = WireMsgRef::decode_frame(black_box(&frame)).unwrap();
        black_box(borrowed_probe(&v));
    });
    let roundtrip_mps = rate(iters, || {
        let f = black_box(msg).encode_frame();
        black_box(WireMsg::decode_frame(&f).unwrap());
    });
    Row {
        kind,
        mode: "unbatched",
        batch: 1,
        frame_bytes: frame.len(),
        encode_mps,
        decode_mps,
        borrowed_mps,
        roundtrip_mps,
    }
}

/// Batched measurement: `BATCH` copies of `msg` coalesced into one
/// frame. Rates are per *message*, not per frame. Encode reuses one
/// builder and one output buffer; decode walks the borrowed views.
fn measure_batch(kind: &'static str, msg: &WireMsg, iters: u64) -> Row {
    let mut b = BatchBuilder::new();
    for _ in 0..BATCH {
        b.push(msg);
    }
    let frame = b.finish();
    match WireMsgRef::decode_frame(&frame).expect("valid batch frame") {
        WireMsgRef::Batch(batch) => {
            assert_eq!(batch.len(), BATCH);
            for m in &batch {
                assert_eq!(&m.to_owned_msg(), msg);
            }
        }
        _ => panic!("batch frame must decode as a batch"),
    }
    for _ in 0..iters / 10 {
        black_box(WireMsgRef::decode_frame(black_box(&frame)).unwrap());
    }

    let mut builder = BatchBuilder::new();
    let mut out = Vec::with_capacity(frame.len());
    let encode_mps = rate(iters, || {
        builder.clear();
        for _ in 0..BATCH {
            builder.push(black_box(msg));
        }
        out.clear();
        builder.append_frame_to(&mut out);
        black_box(out.as_slice());
    }) * BATCH as f64;
    // Owned decode of the whole batch (allocates per message)...
    let decode_mps = rate(iters, || {
        black_box(WireMsg::decode_frame(black_box(&frame)).unwrap());
    }) * BATCH as f64;
    // ...vs the borrowed walk, which allocates nothing.
    let borrowed_mps = rate(iters, || {
        let WireMsgRef::Batch(batch) = WireMsgRef::decode_frame(black_box(&frame)).unwrap() else {
            unreachable!("batch frame");
        };
        let mut sink = 0u64;
        for m in &batch {
            sink ^= borrowed_probe(&m);
        }
        black_box(sink);
    }) * BATCH as f64;
    let roundtrip_mps = rate(iters, || {
        builder.clear();
        for _ in 0..BATCH {
            builder.push(black_box(msg));
        }
        out.clear();
        builder.append_frame_to(&mut out);
        let WireMsgRef::Batch(batch) = WireMsgRef::decode_frame(black_box(&out)).unwrap() else {
            unreachable!("batch frame");
        };
        let mut sink = 0u64;
        for m in &batch {
            sink ^= borrowed_probe(&m);
        }
        black_box(sink);
    }) * BATCH as f64;
    Row {
        kind,
        mode: "batched",
        batch: BATCH,
        frame_bytes: frame.len(),
        encode_mps,
        decode_mps,
        borrowed_mps,
        roundtrip_mps,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget_mps = arg_value("--assert-budget").and_then(|v| v.parse::<f64>().ok());
    let iters: u64 = if smoke { 20_000 } else { 1_000_000 };
    eprintln!("timing the qos-wire codec ({iters} iterations per measurement)...");

    let results = [
        measure("ViolationMsg", &violation(), iters),
        measure("RegisterMsg", &register(), iters),
        measure("LiveViolationMsg", &live_violation(), iters),
        measure("TelemetryBatchMsg", &telemetry_batch(), iters),
        measure_batch("ViolationMsg", &violation(), iters / 16),
        measure_batch("LiveViolationMsg", &live_violation(), iters / 16),
    ];

    let mut t = Table::new(&[
        "message",
        "mode",
        "frame bytes",
        "encode (msgs/s)",
        "decode (msgs/s)",
        "borrowed decode (msgs/s)",
        "round trip (msgs/s)",
    ]);
    let mut rows = Vec::new();
    for r in &results {
        t.row(&[
            r.kind.into(),
            if r.batch > 1 {
                format!("{} x{}", r.mode, r.batch)
            } else {
                r.mode.into()
            },
            format!("{}", r.frame_bytes),
            format!("{:.0}", r.encode_mps),
            format!("{:.0}", r.decode_mps),
            format!("{:.0}", r.borrowed_mps),
            format!("{:.0}", r.roundtrip_mps),
        ]);
        rows.push(
            BenchRow::new("wire")
                .param("message", r.kind)
                .param("mode", r.mode)
                .param("batch", r.batch)
                .param("iters", iters)
                .metric("frame_bytes", r.frame_bytes as f64)
                .metric("encode_msgs_per_sec", r.encode_mps)
                .metric("decode_msgs_per_sec", r.decode_mps)
                .metric("borrowed_decode_msgs_per_sec", r.borrowed_mps)
                .metric("roundtrip_msgs_per_sec", r.roundtrip_mps),
        );
    }
    println!(
        "qos-wire codec throughput (version {}, 8-byte frame header)",
        qos_core::wire::VERSION
    );
    println!("{}", t.render());

    // A violation report must marshal far faster than the paper's ~11 us
    // steady-state instrumentation pass, or live mode's reporting cost
    // would be codec-bound.
    let v = &results[0];
    assert!(
        v.roundtrip_mps > 100_000.0,
        "ViolationMsg round trip too slow: {:.0} msgs/s",
        v.roundtrip_mps
    );
    let vb = results
        .iter()
        .find(|r| r.kind == "ViolationMsg" && r.mode == "batched")
        .expect("batched ViolationMsg row");
    println!(
        "batched ViolationMsg round trip: {:.2}M msgs/s ({:.1}x the unbatched framed path)",
        vb.roundtrip_mps / 1e6,
        vb.roundtrip_mps / v.roundtrip_mps
    );
    if let Some(budget) = budget_mps {
        assert!(
            vb.roundtrip_mps >= budget,
            "batched ViolationMsg round trip {:.0} msgs/s below budget {budget:.0}",
            vb.roundtrip_mps
        );
    }

    let path = arg_value("--json").unwrap_or_else(|| "BENCH_wire.json".to_string());
    std::fs::write(&path, bench_rows_to_json(&rows)).expect("write benchmark rows");
    eprintln!("benchmark rows written to {path}");

    if telemetry_requested() {
        // Mirror the rows into a telemetry handle: one Mark event per
        // message kind (fields carry the rates) and headline counters.
        let t = Telemetry::enabled();
        for (i, r) in results.iter().enumerate() {
            let label = if r.batch > 1 {
                format!("{}/{}", r.kind, r.mode)
            } else {
                r.kind.to_string()
            };
            t.stage(i as u64, 0, Stage::Mark, "wire-bench", &label, || {
                vec![
                    ("frame_bytes".into(), r.frame_bytes as f64),
                    ("encode_msgs_per_sec".into(), r.encode_mps),
                    ("decode_msgs_per_sec".into(), r.decode_mps),
                    ("borrowed_decode_msgs_per_sec".into(), r.borrowed_mps),
                    ("roundtrip_msgs_per_sec".into(), r.roundtrip_mps),
                ]
            });
            t.counter("wire.frame_bytes", &label)
                .add(r.frame_bytes as u64);
            t.counter("wire.roundtrip_msgs_per_sec", &label)
                .add(r.roundtrip_mps as u64);
        }
        emit_telemetry_outputs(&t).expect("write telemetry artifacts");
    }
}
