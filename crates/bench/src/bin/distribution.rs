//! E7: policy specification & distribution (Section 6) — the cost of a
//! process registration (Policy Agent search + parse + compile of the
//! applicable policies) as the repository grows, and a demonstration of
//! dynamic rule distribution into a running host manager.

use std::time::Instant;

use qos_core::prelude::*;
use qos_core::repository::prelude::*;

fn repo_with(n: usize) -> Repository {
    let (model, _, _) = qos_core::policy::model::video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repo");
    for i in 0..n {
        // One relevant policy; the rest target other executables.
        let (exec, app) = if i == 0 {
            ("VideoApplication", "VideoPlayback")
        } else {
            ("OtherExecutable", "OtherApp")
        };
        repo.store_policy(&StoredPolicy {
            name: format!("P{i}"),
            application: app.into(),
            executable: exec.into(),
            role: "*".into(),
            source: EXAMPLE1_SOURCE.into(),
            enabled: true,
        })
        .expect("fresh repo");
    }
    repo
}

fn main() {
    let sizes = [1usize, 10, 100, 1_000, 5_000];
    let mut t = Table::new(&[
        "policies in repository",
        "registration latency (us)",
        "policies delivered",
    ]);
    for &n in &sizes {
        let repo = repo_with(n);
        let mut agent = PolicyAgent::new();
        let reg = Registration {
            process: "p".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        };
        // Warm up, then measure.
        let _ = agent.register(&repo, &reg);
        let iters = 200;
        let t0 = Instant::now();
        let mut delivered = 0;
        for _ in 0..iters {
            delivered = agent.register(&repo, &reg).policies.len();
        }
        let us = t0.elapsed().as_micros() as f64 / iters as f64;
        t.row(&[format!("{n}"), f(us, 1), format!("{delivered}")]);
    }
    println!("E7a: Policy Agent registration latency vs repository size");
    println!("{}", t.render());

    // E7b: the same registration over the *simulated* network: process
    // start -> AgentRequest -> Policy Agent process -> AgentReply ->
    // coordinator loaded (the full Figure 2 path, including IPC and
    // scheduling).
    let cfg = TestbedConfig {
        seed: 20260704,
        managed: true,
        in_sim_distribution: true,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::build(&cfg);
    tb.world.run_for(Dur::from_secs(2));
    let loaded_us = tb.client(0).stats.policies_loaded_at_us;
    println!(
        "E7b: in-sim registration (request over management network + agent          processing + reply): policies loaded {loaded_us} us after process start"
    );
    assert!(loaded_us > 0);

    // E7c: dynamic rule distribution into a live manager process.
    println!("E7c: dynamic rule distribution (swap fair-share -> differentiated at run time)");
    let mut hm = QosHostManager::new(None);
    let before = hm.rule_names();
    let t0 = Instant::now();
    hm.load_rules(&host_rules_differentiated());
    let swap_us = t0.elapsed().as_micros();
    println!(
        "  {} rules; swapped variant in {} us without recompilation",
        before.len(),
        swap_us
    );
    assert!(hm.remove_rule("over-achieving"));
    println!(
        "  removed rule 'over-achieving' at run time; {} remain",
        hm.rule_names().len()
    );
}
