//! E6: fault localization (Section 5.3 / Example 5). Three fault types
//! are injected — client-host CPU contention, server-host CPU contention
//! and data-path network congestion — and the table shows where the
//! management plane localized each one and whether service recovered.
//! The second half ablates the communication-buffer sensor, removing the
//! local/remote discrimination signal.

use qos_core::prelude::*;

fn describe(actions: &[DomainAction]) -> String {
    if actions.is_empty() {
        return "-".into();
    }
    let mut boosts = 0;
    let mut mems = 0;
    let mut reroutes = 0;
    for a in actions {
        match a {
            DomainAction::BoostServer { .. } => boosts += 1,
            DomainAction::BoostServerMemory { .. } => mems += 1,
            DomainAction::Reroute { .. } => reroutes += 1,
        }
    }
    let mut parts = Vec::new();
    if boosts > 0 {
        parts.push(format!("boost-server x{boosts}"));
    }
    if mems > 0 {
        parts.push(format!("boost-memory x{mems}"));
    }
    if reroutes > 0 {
        parts.push(format!("reroute x{reroutes}"));
    }
    parts.join(", ")
}

fn run(buffer_sensor: bool) -> Vec<LocalizationResult> {
    let faults = [Fault::ClientCpu, Fault::ServerCpu, Fault::Network];
    parallel_map(&faults, |&fault| localization(99, fault, buffer_sensor))
}

fn main() {
    eprintln!("running 6 localization scenarios (3 faults x buffer sensor on/off)...");
    let with = run(true);
    let without = run(false);

    for (label, results) in [
        ("with buffer sensor", &with),
        ("ABLATED: buffer sensor off", &without),
    ] {
        let mut t = Table::new(&[
            "fault",
            "fps before",
            "fps during",
            "fps after",
            "client boosts",
            "domain alerts",
            "domain actions",
        ]);
        for r in results.iter() {
            t.row(&[
                format!("{:?}", r.fault),
                f(r.fps_before, 1),
                f(r.fps_during, 1),
                f(r.fps_after, 1),
                format!("{}", r.client_boosts),
                format!("{}", r.domain_alerts),
                describe(&r.domain_actions),
            ]);
        }
        println!("E6 ({label})");
        println!("{}", t.render());
    }

    // Localization correctness with the full sensor complement:
    let client_cpu = &with[0];
    let server_cpu = &with[1];
    let network = &with[2];
    assert!(
        client_cpu.client_boosts > 0,
        "client CPU fault must be handled locally"
    );
    assert!(
        server_cpu
            .domain_actions
            .iter()
            .any(|a| matches!(a, DomainAction::BoostServer { .. })),
        "server fault must be diagnosed at the server"
    );
    assert!(
        network
            .domain_actions
            .iter()
            .any(|a| matches!(a, DomainAction::Reroute { .. })),
        "network fault must lead to a reroute"
    );
    for r in &with {
        assert!(
            r.fps_after >= 25.0,
            "{:?}: service must be restored to specification ({:.1} -> {:.1} -> {:.1})",
            r.fault,
            r.fps_before,
            r.fps_during,
            r.fps_after
        );
    }
    println!("all three faults localized correctly and service recovered");
    // The ablation: without the Example 5 buffer-length heuristic the
    // client-CPU fault is indistinguishable from a remote one — the
    // domain manager chases a network ghost and service never recovers.
    let ablated_client = &without[0];
    assert!(
        ablated_client.fps_after < 10.0,
        "ablated run should fail to recover from a client-CPU fault: {:.1}",
        ablated_client.fps_after
    );

    // Optional observability artifacts (`--trace-out`, `--metrics-out`):
    // rerun the server-CPU scenario instrumented — it exercises the full
    // escalation chain (client detect → host manager → domain manager).
    if telemetry_requested() {
        let t = Telemetry::enabled();
        eprintln!("rerunning the server-CPU scenario with tracing enabled...");
        localization_with(99, Fault::ServerCpu, true, &t);
        println!("{}", telemetry_summary(&t));
        emit_telemetry_outputs(&t).expect("write telemetry artifacts");
    }
}
