//! E2/E3 / Section 7 overhead measurements, on real threads with real
//! clocks: instrumented-process initialisation + registration (paper:
//! ≈400 µs on an UltraSparc) and one pass through the instrumentation
//! code when QoS is met (paper: ≈11 µs).

use std::time::Instant;

use qos_core::manager::live::{standard_live_repo, LiveHostManager, LiveProcess};
use qos_core::prelude::*;
use qos_core::repository::agent::Registration;

fn main() {
    let (repo, mut agent) = standard_live_repo();
    let mgr = LiveHostManager::spawn().expect("spawn live manager");

    // --- E2: initialisation + registration.
    let iters = 2_000;
    let t0 = Instant::now();
    let mut procs = Vec::with_capacity(iters);
    for i in 0..iters {
        let reg = Registration {
            process: format!("bench:{i}"),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        };
        procs.push(
            LiveProcess::start(&reg, &repo, &mut agent, mgr.sender()).expect("manager running"),
        );
    }
    let init_us = t0.elapsed().as_micros() as f64 / iters as f64;

    // --- E3: steady-state instrumentation pass (QoS met: the buffer
    // probe with a healthy value raises no alarms and sends nothing).
    let p = procs.last_mut().expect("at least one process");
    let passes = 2_000_000u64;
    let t0 = Instant::now();
    let mut sent = 0usize;
    for i in 0..passes {
        sent += p.buffer_pass(100 + (i & 0xff));
    }
    let pass_us = t0.elapsed().as_micros() as f64 / passes as f64;
    assert_eq!(sent, 0, "happy path must not notify");

    // --- For contrast: a frame pass (fps + jitter probes).
    let passes2 = 1_000_000u64;
    let t0 = Instant::now();
    for _ in 0..passes2 {
        p.frame_pass();
    }
    let frame_us = t0.elapsed().as_micros() as f64 / passes2 as f64;

    let mut t = Table::new(&["measurement", "paper (UltraSparc, 2000)", "measured here"]);
    t.row(&[
        "init + registration".into(),
        "~400 us".into(),
        format!("{init_us:.1} us"),
    ]);
    t.row(&[
        "instrumentation pass (QoS met)".into(),
        "~11 us".into(),
        format!("{pass_us:.3} us"),
    ]);
    t.row(&[
        "frame pass (fps+jitter probes)".into(),
        "-".into(),
        format!("{frame_us:.3} us"),
    ]);
    println!("Section 7 instrumentation overhead");
    println!("{}", t.render());
    println!(
        "shape: init is {:.0}x the cost of a steady-state pass (paper: ~36x)",
        init_us / pass_us.max(1e-9)
    );
    mgr.shutdown();
}
