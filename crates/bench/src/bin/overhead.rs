//! E2/E3 / Section 7 overhead measurements, on real threads with real
//! clocks: instrumented-process initialisation + registration (paper:
//! ≈400 µs on an UltraSparc) and one pass through the instrumentation
//! code when QoS is met (paper: ≈11 µs), plus the cost of this repo's
//! own telemetry probes in their three states (enabled, runtime-
//! disabled, compiled out with `--features telemetry-off`).
//!
//! Flags: `--smoke` shrinks iteration counts for CI;
//! `--assert-budget-us <x>` fails the run if a steady-state
//! instrumentation pass (telemetry runtime-disabled) exceeds `x` µs.

use std::hint::black_box;
use std::time::Instant;

use qos_core::manager::live::{standard_live_repo, LiveHostManager, LiveProcess};
use qos_core::prelude::*;
use qos_core::repository::agent::Registration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 10 } else { 1 };
    let (repo, mut agent) = standard_live_repo();
    let mgr = LiveHostManager::builder()
        .spawn()
        .expect("spawn live manager");

    // --- E2: initialisation + registration.
    let iters = 2_000 / scale;
    let t0 = Instant::now();
    let mut procs = Vec::with_capacity(iters);
    for i in 0..iters {
        let reg = Registration {
            process: format!("bench:{i}"),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: "*".into(),
        };
        procs.push(
            LiveProcess::start(&reg, &repo, &mut agent, mgr.connect()).expect("manager running"),
        );
    }
    let init_us = t0.elapsed().as_micros() as f64 / iters as f64;

    // --- E3: steady-state instrumentation pass (QoS met: the buffer
    // probe with a healthy value raises no alarms and sends nothing).
    let p = procs.last_mut().expect("at least one process");
    let passes = 2_000_000u64 / scale as u64;
    let t0 = Instant::now();
    let mut sent = 0usize;
    for i in 0..passes {
        sent += p.buffer_pass(100 + (i & 0xff));
    }
    let pass_us = t0.elapsed().as_micros() as f64 / passes as f64;
    assert_eq!(sent, 0, "happy path must not notify");

    // --- For contrast: a frame pass (fps + jitter probes).
    let passes2 = 1_000_000u64 / scale as u64;
    let t0 = Instant::now();
    for _ in 0..passes2 {
        p.frame_pass();
    }
    let frame_us = t0.elapsed().as_micros() as f64 / passes2 as f64;

    // --- E3b: the same steady-state pass with this repo's telemetry
    // attached and live. The happy path touches no event probes, so
    // enabled and disabled should both sit within noise of the plain
    // pass (and of a `--features telemetry-off` build of this binary).
    let telemetry = Telemetry::enabled();
    p.set_telemetry(&telemetry);
    let t0 = Instant::now();
    for i in 0..passes {
        sent += p.buffer_pass(100 + (i & 0xff));
    }
    let pass_tel_us = t0.elapsed().as_micros() as f64 / passes as f64;
    assert_eq!(sent, 0, "happy path must not notify");

    // --- E3c: raw probe cost, per operation. A disabled handle is the
    // probe-site floor; with `telemetry-off` even the "enabled" ops
    // compile to nothing.
    let probe_iters = 20_000_000u64 / scale as u64;
    let per_op = |c: &Counter, h: Option<&Histogram>| {
        let t0 = Instant::now();
        for i in 0..probe_iters {
            match h {
                None => black_box(c).inc(),
                Some(h) => black_box(h).record(i & 0xfff),
            }
        }
        t0.elapsed().as_nanos() as f64 / probe_iters as f64
    };
    let c_on = telemetry.counter("bench.counter", "");
    let c_off = Telemetry::disabled().counter("bench.counter", "");
    let h_on = telemetry.histogram("bench.histogram", "");
    let counter_on_ns = per_op(&c_on, None);
    let counter_off_ns = per_op(&c_off, None);
    let hist_on_ns = per_op(&c_on, Some(&h_on));

    let mut t = Table::new(&["measurement", "paper (UltraSparc, 2000)", "measured here"]);
    t.row(&[
        "init + registration".into(),
        "~400 us".into(),
        format!("{init_us:.1} us"),
    ]);
    t.row(&[
        "instrumentation pass (QoS met)".into(),
        "~11 us".into(),
        format!("{pass_us:.3} us"),
    ]);
    t.row(&[
        "frame pass (fps+jitter probes)".into(),
        "-".into(),
        format!("{frame_us:.3} us"),
    ]);
    t.row(&[
        "pass + telemetry enabled".into(),
        "-".into(),
        format!("{pass_tel_us:.3} us"),
    ]);
    t.row(&[
        "counter.inc (enabled)".into(),
        "-".into(),
        format!("{counter_on_ns:.1} ns"),
    ]);
    t.row(&[
        "counter.inc (disabled handle)".into(),
        "-".into(),
        format!("{counter_off_ns:.1} ns"),
    ]);
    t.row(&[
        "histogram.record (enabled)".into(),
        "-".into(),
        format!("{hist_on_ns:.1} ns"),
    ]);
    println!("Section 7 instrumentation overhead");
    println!("{}", t.render());
    println!(
        "shape: init is {:.0}x the cost of a steady-state pass (paper: ~36x)",
        init_us / pass_us.max(1e-9)
    );
    println!(
        "telemetry: pass {pass_us:.3} us plain vs {pass_tel_us:.3} us instrumented ({})",
        if Telemetry::enabled().is_enabled() {
            "probes compiled in"
        } else {
            "probes compiled out: --features telemetry-off"
        }
    );
    if let Some(budget) = arg_value("--assert-budget-us").and_then(|v| v.parse::<f64>().ok()) {
        assert!(
            pass_us <= budget,
            "steady-state pass {pass_us:.3} us exceeds the {budget} us budget"
        );
        println!("budget check: pass {pass_us:.3} us <= {budget} us");
    }
    mgr.shutdown();
}
