//! E10 / Section 10 extension: overload conditions — "when there simply
//! are not enough resources to meet demand".
//!
//! The decode cost is raised to 135% of the CPU at full quality. The
//! rigid system maxes its allocation and the requirement still fails
//! permanently; with overload handling, the manager concludes (rule:
//! violation persists while the allocation is at its cap) that no
//! resource adjustment can help and directs the application's quality
//! actuator instead — the degraded stream returns to specification.

use qos_bench::{emit_bench_json, BenchRow};
use qos_core::prelude::*;

fn main() {
    eprintln!("running rigid and adaptive overload scenarios...");
    let results = parallel_map(&[false, true], |&adaptive| overload(20260704, adaptive));
    let (rigid, adaptive_run) = (&results[0], &results[1]);

    let mut t = Table::new(&[
        "mode",
        "steady fps",
        "quality level",
        "adaptations",
        "final boost",
    ]);
    for (name, r) in [("rigid", rigid), ("adaptive", adaptive_run)] {
        t.row(&[
            name.into(),
            f(r.fps, 1),
            format!("{}", r.quality),
            format!("{}", r.adaptations),
            format!("{}", r.boost),
        ]);
    }
    println!("E10: 45 ms/frame decode at 30 fps = 135% CPU demand at full quality");
    println!("{}", t.render());
    let json_rows: Vec<BenchRow> = [("rigid", rigid), ("adaptive", adaptive_run)]
        .iter()
        .map(|(name, r)| {
            BenchRow::new("overload")
                .param("mode", name)
                .metric("fps", r.fps)
                .metric("quality_level", r.quality as f64)
                .metric("adaptations", r.adaptations as f64)
                .metric("final_boost", r.boost as f64)
        })
        .collect();
    emit_bench_json(&json_rows).expect("write benchmark rows");
    println!(
        "rigid: allocation pinned at +{} and still {:.1} fps (out of spec); \
         adaptive: quality level {} at {:.1} fps (in spec)",
        rigid.boost, rigid.fps, adaptive_run.quality, adaptive_run.fps
    );
    assert!(
        rigid.fps < 23.0,
        "overload must defeat pure resource management"
    );
    assert_eq!(rigid.quality, 0);
    assert!(
        adaptive_run.quality > 0,
        "the actuator must have been driven"
    );
    assert!(
        adaptive_run.fps > 23.0,
        "degraded stream back in specification"
    );

    // Optional observability artifacts (`--trace-out`, `--metrics-out`):
    // rerun the adaptive scenario instrumented to expose the
    // quality-actuator adaptations in the trace.
    if telemetry_requested() {
        let t = Telemetry::enabled();
        eprintln!("rerunning the adaptive overload scenario with tracing enabled...");
        overload_with(20260704, true, &t);
        println!("{}", telemetry_summary(&t));
        emit_telemetry_outputs(&t).expect("write telemetry artifacts");
    }
}
