//! Flight-recorder hot-path cost: what attaching a [`FlightRecorder`]
//! to a live telemetry handle adds to each probe-site event. The
//! headline number is the *delta* — per-event cost with a ring recorder
//! attached minus the cost of the bare enabled handle — because that is
//! exactly what `Telemetry::set_recorder` buys into every probe site.
//!
//! With `--features telemetry-off` the probe sites compile to nothing,
//! so both sides of the delta collapse to the cost of an inlined branch
//! and the delta itself to ~0; only the explicit `record_event` path
//! (what `qosctl record` uses) keeps its real cost.
//!
//! Flags: `--smoke` (fewer iterations for CI), `--assert-budget-ns <N>`
//! (fail if the delta exceeds the budget), `--json <path>` (result
//! rows; defaults to `BENCH_recorder.json`).

use std::time::Instant;

use qos_bench::{bench_rows_to_json, BenchRow};
use qos_core::prelude::*;
use qos_core::telemetry::record::DEFAULT_RING_BYTES;

/// Per-event cost of one probe-site emission through `t`, ns.
fn per_event_ns(t: &Telemetry, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        t.stage(i, (i / 4) + 1, Stage::Detect, "h0:p1", "example1", || {
            vec![("frame_rate".into(), 15.0)]
        });
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: u64 = if smoke { 200_000 } else { 2_000_000 };
    eprintln!("timing the flight-recorder hot path ({iters} events per measurement)...");

    // Bare enabled handle vs the same handle shape with a ring recorder
    // attached (every event additionally length-prefix encoded and
    // pushed into the byte ring). Three paired passes, keeping the
    // smallest delta: the pairing makes machine-speed noise cancel and
    // the min filters scheduler interference.
    let plain = Telemetry::enabled();
    let recording = Telemetry::enabled();
    let rec = FlightRecorder::new(DEFAULT_RING_BYTES);
    recording.set_recorder(Some(rec.clone()));
    let (mut plain_ns, mut rec_ns, mut delta_ns) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..3 {
        let p = per_event_ns(&plain, iters);
        let r = per_event_ns(&recording, iters);
        plain_ns = plain_ns.min(p);
        rec_ns = rec_ns.min(r);
        delta_ns = delta_ns.min((r - p).max(0.0));
    }

    // Floor: a disabled handle (and, under telemetry-off, *every*
    // handle) never invokes the closure at all.
    let off_ns = per_event_ns(&Telemetry::disabled(), iters);

    // The explicit path `qosctl record` drives: encode + ring push with
    // no telemetry handle in front.
    let direct = FlightRecorder::new(DEFAULT_RING_BYTES);
    let ev = TraceEvent {
        at_us: 42,
        corr: 7,
        stage: Stage::Detect,
        component: "h0:p1".into(),
        name: "example1".into(),
        fields: vec![("frame_rate".into(), 15.0)],
    };
    let t0 = Instant::now();
    for _ in 0..iters {
        direct.record_event(&ev);
    }
    let direct_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let compiled_in = plain.is_enabled();
    let mut t = Table::new(&["measurement", "ns/event"]);
    t.row(&["probe site, enabled handle".into(), f(plain_ns, 1)]);
    t.row(&["probe site + ring recorder".into(), f(rec_ns, 1)]);
    t.row(&["recorder hot-path delta".into(), f(delta_ns, 1)]);
    t.row(&["probe site, disabled handle".into(), f(off_ns, 1)]);
    t.row(&["explicit record_event (qosctl)".into(), f(direct_ns, 1)]);
    println!(
        "Flight-recorder hot path (probes {})",
        if compiled_in {
            "compiled in"
        } else {
            "compiled out: --features telemetry-off"
        }
    );
    println!("{}", t.render());
    println!(
        "ring after {} events: {} records held, {} evicted by the byte budget",
        iters,
        rec.ring_records().len(),
        rec.ring_dropped()
    );

    let rows = vec![BenchRow::new("recorder")
        .param("iters", iters)
        .param("compiled_in", compiled_in)
        .metric("probe_enabled_ns", plain_ns)
        .metric("probe_with_recorder_ns", rec_ns)
        .metric("recorder_delta_ns", delta_ns)
        .metric("probe_disabled_ns", off_ns)
        .metric("direct_record_event_ns", direct_ns)];
    let path = arg_value("--json").unwrap_or_else(|| "BENCH_recorder.json".to_string());
    std::fs::write(&path, bench_rows_to_json(&rows)).expect("write benchmark rows");
    eprintln!("benchmark rows written to {path}");

    if let Some(budget) = arg_value("--assert-budget-ns").and_then(|v| v.parse::<f64>().ok()) {
        assert!(
            delta_ns <= budget,
            "recorder hot-path delta {delta_ns:.1} ns/event exceeds the {budget} ns budget"
        );
        println!("budget check: recorder delta {delta_ns:.1} ns <= {budget} ns");
    }
}
