//! E17 / C10k live-mode driver comparison: the thread-per-peer driver
//! and the epoll reactor serving the same UDS violation-report workload
//! from the same sans-io protocol machines. Three runs — threads at a
//! thread-friendly peer count, the reactor at the same count, and the
//! reactor alone at a four-digit count the blocking driver cannot hold —
//! each measuring:
//!
//! * **connection ramp** — connects + registrations per second until
//!   every peer is live;
//! * **sustained violation throughput** — violation messages per second
//!   actually counted by the manager core (not merely written to a
//!   socket) with every peer reporting concurrently;
//! * **p95 ingest RTT** — violation write → sync ack round trip, the
//!   end-to-end "my report was processed" latency a peer observes;
//! * **wakeups/msg** — reactor only: epoll wakeups per inbound frame,
//!   the batching figure of merit for the poller.
//!
//! Flags: `--smoke` (fewer peers/rounds for CI), `--json <path>`
//! (result rows; defaults to `BENCH_c10k.json`), `--assert-budget
//! <msgs/s>` (fail unless the largest reactor run sustains the given
//! violation rate).

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("the c10k bench needs the epoll reactor driver (linux-only); skipping");
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use qos_bench::{bench_rows_to_json, BenchRow};
    use qos_core::prelude::*;
    use qos_core::wire::messages::{LiveRegisterMsg, LiveViolationMsg};
    use qos_core::wire::WireMsg;

    /// Client threads multiplexing the peer connections (the client may
    /// pool; the server side under test must hold every peer at once).
    const CLIENT_THREADS: usize = 8;

    fn temp_sock(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("qos-bench-c10k-{}-{name}.sock", std::process::id()))
    }

    fn register_frame(process: &str) -> Vec<u8> {
        WireMsg::LiveRegister(LiveRegisterMsg {
            process: process.into(),
        })
        .encode_frame()
    }

    fn violation_frame(process: &str, corr: u64) -> Vec<u8> {
        WireMsg::LiveViolation(LiveViolationMsg {
            policy: "NotifyQoSViolation".into(),
            process: process.into(),
            at_us: corr,
            corr,
            readings: vec![
                ("frame_rate".into(), 15.0),
                ("buffer_size".into(), 50_000.0),
            ],
        })
        .encode_frame()
    }

    struct RunResult {
        driver: &'static str,
        peers: usize,
        ramp_conns_per_sec: f64,
        violation_mps: f64,
        delivered: u64,
        p95_rtt_us: f64,
        wakeups_per_msg: f64,
    }

    /// One full measurement: ramp `peers` connections, drive `rounds`
    /// violations per peer flat out, then sample sync round trips.
    fn run(driver: Driver, peers: usize, rounds: u64) -> RunResult {
        let label = match driver {
            Driver::Threads => "threads",
            Driver::Reactor => "reactor",
        };
        let path = temp_sock(&format!("{label}-{peers}"));
        let _ = std::fs::remove_file(&path);
        let mgr = LiveHostManager::builder()
            .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
            .driver(driver)
            .workers(4)
            .spawn()
            .expect("spawn live manager");
        let addr = mgr.local_addr().expect("bound");
        let net = mgr.net_stats();
        let frames_before = net
            .as_ref()
            .map_or(0, |n| n.frames_in.load(Ordering::Relaxed));
        let wakeups_before = net
            .as_ref()
            .map_or(0, |n| n.wakeups.load(Ordering::Relaxed));

        // --- ramp: connect + register every peer --------------------
        let per_thread = peers / CLIENT_THREADS;
        let t0 = Instant::now();
        let mut conns: Vec<(String, SocketTransport)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENT_THREADS)
                .map(|tid| {
                    let addr = addr.clone();
                    s.spawn(move || {
                        let mut conns = Vec::with_capacity(per_thread);
                        for i in 0..per_thread {
                            let name = format!("bench:{tid}:{i}");
                            let mut tr = SocketTransport::connect_retry(
                                addr.clone(),
                                Duration::from_secs(30),
                            )
                            .expect("manager accepts the peer");
                            assert!(tr.try_send(&register_frame(&name)), "registration refused");
                            conns.push((name, tr));
                        }
                        conns
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let ramp_deadline = Instant::now() + Duration::from_secs(60);
        while mgr.stats.registrations.load(Ordering::Relaxed) < conns.len() as u64 {
            assert!(Instant::now() < ramp_deadline, "registrations never landed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let ramp_secs = t0.elapsed().as_secs_f64();

        // --- sustained violation throughput -------------------------
        let delivered_before = mgr.stats.violations.load(Ordering::Relaxed);
        let sent = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for chunk in conns.chunks_mut(per_thread.max(1)) {
                let sent = Arc::clone(&sent);
                s.spawn(move || {
                    for (name, tr) in chunk.iter_mut() {
                        for k in 0..rounds {
                            if tr.try_send(&violation_frame(name, k + 1)) {
                                sent.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // The sync barrier makes the clock honest: stop only
                    // when the manager has *processed* the backlog.
                    for (_, tr) in chunk.iter_mut() {
                        assert!(tr.sync(Duration::from_secs(120)), "sync barrier");
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let delivered = mgr.stats.violations.load(Ordering::Relaxed) - delivered_before;
        assert!(
            delivered >= sent.load(Ordering::Relaxed),
            "manager lost delivered reports"
        );
        let violation_mps = delivered as f64 / elapsed;

        // --- p95 ingest RTT over a peer sample ----------------------
        let sample = conns.len().min(64);
        let mut rtts_us: Vec<f64> = Vec::with_capacity(sample);
        for (name, tr) in conns.iter_mut().take(sample) {
            let t0 = Instant::now();
            assert!(tr.try_send(&violation_frame(name, 0)));
            assert!(tr.sync(Duration::from_secs(30)), "rtt sync");
            rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        rtts_us.sort_by(|a, b| a.total_cmp(b));
        let p95_rtt_us = rtts_us[(rtts_us.len() * 95 / 100).min(rtts_us.len() - 1)];

        let frames = net
            .as_ref()
            .map_or(0, |n| n.frames_in.load(Ordering::Relaxed))
            - frames_before;
        let wakeups = net
            .as_ref()
            .map_or(0, |n| n.wakeups.load(Ordering::Relaxed))
            - wakeups_before;
        let wakeups_per_msg = if frames > 0 {
            wakeups as f64 / frames as f64
        } else {
            0.0
        };
        drop(conns);
        mgr.shutdown();
        RunResult {
            driver: label,
            peers,
            ramp_conns_per_sec: peers as f64 / ramp_secs,
            violation_mps,
            delivered,
            p95_rtt_us,
            wakeups_per_msg,
        }
    }

    /// Best-of-`reps` (same practice as the recorder bench's min-of-3):
    /// client and server share one core here, so a single run carries
    /// ±10 % scheduler noise.
    fn run_best(driver: Driver, peers: usize, rounds: u64, reps: u32) -> RunResult {
        (0..reps)
            .map(|_| run(driver, peers, rounds))
            .max_by(|a, b| a.violation_mps.total_cmp(&b.violation_mps))
            .expect("at least one rep")
    }

    pub fn main() {
        let smoke = std::env::args().any(|a| a == "--smoke");
        let budget_mps = arg_value("--assert-budget").and_then(|v| v.parse::<f64>().ok());
        // Small-count head-to-head, then the reactor's headline count.
        let (small, big, rounds, reps) = if smoke {
            (16, 256, 8, 1)
        } else {
            (64, 1024, 64, 3)
        };
        eprintln!(
            "c10k live-mode drivers: threads@{small}, reactor@{small}, reactor@{big} \
             ({rounds} violations per peer, best of {reps})..."
        );

        let results = [
            run_best(Driver::Threads, small, rounds, reps),
            run_best(Driver::Reactor, small, rounds, reps),
            run_best(Driver::Reactor, big, rounds, reps),
        ];

        let mut t = Table::new(&[
            "driver",
            "peers",
            "ramp (conns/s)",
            "violations (msgs/s)",
            "p95 ingest RTT",
            "wakeups/msg",
        ]);
        let mut rows = Vec::new();
        for r in &results {
            t.row(&[
                r.driver.into(),
                format!("{}", r.peers),
                format!("{:.0}", r.ramp_conns_per_sec),
                format!("{:.0}", r.violation_mps),
                format!("{:.0} us", r.p95_rtt_us),
                if r.wakeups_per_msg > 0.0 {
                    format!("{:.3}", r.wakeups_per_msg)
                } else {
                    "-".into()
                },
            ]);
            rows.push(
                BenchRow::new("c10k")
                    .param("driver", r.driver)
                    .param("peers", r.peers)
                    .param("rounds", rounds)
                    .metric("ramp_conns_per_sec", r.ramp_conns_per_sec)
                    .metric("violation_msgs_per_sec", r.violation_mps)
                    .metric("violations_delivered", r.delivered as f64)
                    .metric("p95_ingest_rtt_us", r.p95_rtt_us)
                    .metric("wakeups_per_msg", r.wakeups_per_msg),
            );
        }
        println!("C10k live mode: thread-per-peer vs epoll reactor (UDS, 4 workers)");
        println!("{}", t.render());

        let big_run = &results[2];
        println!(
            "headline: the reactor held {} concurrent peers at {:.0} violation msgs/s \
             ({:.3} epoll wakeups per inbound frame)",
            big_run.peers, big_run.violation_mps, big_run.wakeups_per_msg
        );
        if let Some(budget) = budget_mps {
            assert!(
                big_run.violation_mps >= budget,
                "reactor@{} sustained {:.0} msgs/s, below the {budget:.0} msgs/s budget",
                big_run.peers,
                big_run.violation_mps
            );
            println!(
                "budget check: {:.0} msgs/s >= {budget:.0} msgs/s",
                big_run.violation_mps
            );
        }

        let path = arg_value("--json").unwrap_or_else(|| "BENCH_c10k.json".to_string());
        std::fs::write(&path, bench_rows_to_json(&rows)).expect("write benchmark rows");
        eprintln!("benchmark rows written to {path}");
    }
}
