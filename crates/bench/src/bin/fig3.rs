//! E1 / Figure 3: mean video playback throughput (fps) vs CPU load
//! average, normal scheduling vs the QoS Host Manager with its CPU
//! resource manager. Regenerates the series of the paper's Figure 3.

use qos_bench::{emit_bench_json, BenchRow};
use qos_core::prelude::*;

fn main() {
    let loads = [0.70, 3.00, 5.00, 7.00, 10.00];
    eprintln!(
        "running {} simulations (2 per load point, in parallel)...",
        loads.len() * 2
    );
    let rows = figure3(20000704, &loads);

    // The paper's figure, read off the plot (approximate).
    let paper_normal = [28.5, 18.0, 11.0, 8.0, 5.0];
    let paper_managed = [28.5, 28.0, 28.0, 28.0, 28.0];

    let mut t = Table::new(&[
        "target load",
        "measured load",
        "normal fps",
        "managed fps",
        "paper normal",
        "paper managed",
    ]);
    for (i, r) in rows.iter().enumerate() {
        t.row(&[
            f(r.target_load, 2),
            f(r.measured_load, 2),
            f(r.fps_normal, 1),
            f(r.fps_managed, 1),
            f(paper_normal[i], 1),
            f(paper_managed[i], 1),
        ]);
    }
    println!("Figure 3: Video Playback Throughput Comparison");
    println!("{}", t.render());
    let json_rows: Vec<BenchRow> = rows
        .iter()
        .map(|r| {
            BenchRow::new("fig3")
                .param("target_load", f(r.target_load, 2))
                .metric("measured_load", r.measured_load)
                .metric("fps_normal", r.fps_normal)
                .metric("fps_managed", r.fps_managed)
        })
        .collect();
    emit_bench_json(&json_rows).expect("write benchmark rows");

    // Shape checks the figure makes visually.
    let first = &rows[0];
    let last = rows.last().expect("nonempty sweep");
    println!(
        "shape: unmanaged collapse {:.1} -> {:.1} fps; managed stays {:.1} -> {:.1} fps",
        first.fps_normal, last.fps_normal, first.fps_managed, last.fps_managed
    );
    assert!(
        last.fps_normal < first.fps_normal / 2.0,
        "unmanaged must collapse under load"
    );
    assert!(
        last.fps_managed > 23.0,
        "managed must hold the policy floor at the highest load"
    );

    // Optional observability artifacts (`--trace-out x.jsonl|x.json`,
    // `--metrics-out m.json`): rerun the mid-sweep managed point with
    // tracing enabled and export its violation lifecycles.
    if telemetry_requested() {
        let t = Telemetry::enabled();
        eprintln!("rerunning managed load 5.00 with tracing enabled...");
        fig3_point_with(20000704, 5.00, true, &t);
        println!("{}", telemetry_summary(&t));
        emit_telemetry_outputs(&t).expect("write telemetry artifacts");
    }
}
