//! E5: administrative requirements under contention (Sections 2/3.1) —
//! three video clients whose combined demand exceeds the CPU. Under
//! fair-share rules all degrade roughly equally; under differentiated
//! rules the heavier-weighted user's application wins.

use qos_core::prelude::*;

fn main() {
    eprintln!("running fair-share and differentiated contention runs...");
    let fair = contention(77, AdminRules::FairShare);
    let diff = contention(77, AdminRules::Differentiated);

    let mut t = Table::new(&["client", "weight", "fair fps", "differentiated fps"]);
    for i in 0..fair.len() {
        t.row(&[
            format!("{}", fair[i].client),
            f(fair[i].weight, 1),
            f(fair[i].fps, 1),
            f(diff[i].fps, 1),
        ]);
    }
    println!("E5: three 30-fps clients on one host (aggregate demand > CPU)");
    println!("{}", t.render());

    let spread = |rows: &[ContentionRow]| {
        let fps: Vec<f64> = rows.iter().map(|r| r.fps).collect();
        let max = fps.iter().cloned().fold(f64::MIN, f64::max);
        let min = fps.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    println!(
        "fps spread: fair {:.1}, differentiated {:.1}",
        spread(&fair),
        spread(&diff)
    );
    // Differentiated: the weight-4 client must beat the weight-1 client.
    assert!(
        diff[2].fps > diff[0].fps + 3.0,
        "weighted client should win: {:?}",
        diff
    );
    // Fair: no client should dominate by that much.
    assert!(
        spread(&fair) < spread(&diff),
        "fair share should be more even than differentiated"
    );
}
