//! Multi-host matcher scale benchmark: N hosts × M instrumented
//! processes per host firing simultaneous violation storms at their QoS
//! Host Managers. Sweeps 1×8 → 8×64 and reports, per configuration and
//! per matcher (the naive full-rematch oracle vs the incremental
//! Rete-lite matcher):
//!
//! * end-to-end diagnose latency (Detect → Diagnose stage events,
//!   p50/p95) — queueing at the manager plus inference cost;
//! * engine join work (candidate facts examined by the matcher), summed
//!   over every host manager;
//! * wall-clock spent per violation by the harness, broken down by
//!   engine phase (match / agenda / fire) via the engines' per-phase
//!   profilers.
//!
//! Both matchers must produce identical rule-firing traces — the sweep
//! asserts it — and the incremental matcher must cut join work by ≥5×
//! at the largest configuration. The incremental per-violation wall
//! cost should also stay *flat* as the sweep scales (the flattened
//! fact-store and matcher make the per-violation delta independent of
//! working-memory size); the sweep reports the spread.
//!
//! Flags: `--smoke` (small sweep for CI), `--assert-budget-us <N>`
//! (fail if the incremental run's mean wall-clock per violation exceeds
//! the budget), `--assert-flat-pct <N>` (fail if the incremental
//! per-violation wall cost varies more than N% across the sweep),
//! `--json <path>` (result rows; defaults to `BENCH_scale.json`).
//!
//! `--domains <D>` additionally runs the *federated* weak-scaling
//! sweep: domains grow 1 → D with 25 managed hosts per domain (full
//! mode; the largest run is ≥100 hosts × 100 reporters ≈ 10k managed
//! processes in 4+ domains), every host binding through the discovery
//! plane. The witness of the sharded registry is the average host-route
//! entry count per route push: a flat registry ships every host to its
//! one manager on every change (linear in total hosts), while the
//! sharded federation ships each leaf only its own shard — the sweep
//! asserts the per-push registry traffic grows at most 60% as fast as
//! the host count. The same `--assert-budget-us` bound is applied to
//! the federated runs' wall-clock per violation.

use std::time::Instant;

use qos_bench::{bench_rows_to_json, BenchRow};
use qos_core::prelude::*;

/// First port used by storm reporters (ports are per-host; reporter `p`
/// binds `REPORTER_PORT_BASE + p`).
const REPORTER_PORT_BASE: Port = 100;
const TAG_STORM: u64 = 1;

/// A minimal instrumented process: registers with the host manager at
/// start, then reports a violation every storm round — every reporter on
/// every host fires at the same instant, the worst case for the
/// managers' inference engines.
struct StormReporter {
    hm: Endpoint,
    telemetry: Telemetry,
    rounds: u32,
    interval: Dur,
    /// Large communication buffer ⇒ the local-CPU-starvation diagnosis;
    /// small ⇒ the local fallback. Mixed across reporters so several
    /// rules stay hot.
    big_buffer: bool,
    /// This reporter's control port (unique per host).
    port: Port,
}

impl ProcessLogic for StormReporter {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => {
                send_ctrl(
                    ctx,
                    self.hm,
                    self.port,
                    WireMsg::Register(RegisterMsg {
                        pid: ctx.pid(),
                        control_port: self.port,
                        executable: "StormReporter".into(),
                        application: "ScaleBench".into(),
                        role: "*".into(),
                        weight: 1.0,
                        heartbeat: None,
                    }),
                );
                ctx.set_timer(self.interval, TAG_STORM);
            }
            ProcEvent::Timer(TAG_STORM) => {
                if self.rounds == 0 {
                    return;
                }
                self.rounds -= 1;
                let now_us = ctx.now().as_micros();
                let corr = if self.telemetry.is_enabled() {
                    let corr = self.telemetry.next_corr();
                    self.telemetry.stage(
                        now_us,
                        corr,
                        Stage::Detect,
                        &pid_to_string(ctx.pid()),
                        "scale-storm",
                        Vec::new,
                    );
                    corr
                } else {
                    0
                };
                let buffer = if self.big_buffer { 50_000.0 } else { 100.0 };
                send_ctrl(
                    ctx,
                    self.hm,
                    self.port,
                    WireMsg::Violation(ViolationMsg {
                        pid: ctx.pid(),
                        proc_name: "StormReporter".into(),
                        policy: "scale-storm".into(),
                        corr,
                        readings: vec![("frame_rate".into(), 15.0), ("buffer_size".into(), buffer)],
                        bounds: Some(("frame_rate".into(), 23.0, 27.0)),
                        upstream: None,
                    }),
                );
                ctx.set_timer(self.interval, TAG_STORM);
            }
            ProcEvent::Readable(port) => {
                // Drain and ignore manager control traffic (AdaptMsg).
                while ctx.recv(port).is_some() {}
            }
            _ => {}
        }
    }
}

/// Outcome of one (hosts × procs, matcher) run.
struct ModeOutcome {
    violations: u64,
    join_work: u64,
    p50_us: u64,
    p95_us: u64,
    wall_us_per_violation: f64,
    /// Engine-phase wall time summed over every host manager, in µs per
    /// violation: (match, agenda, fire).
    phase_us_per_violation: (f64, f64, f64),
    /// Per-host firing traces, for the naive-vs-incremental equality
    /// check.
    traces: Vec<Vec<String>>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[ix]
}

fn run_mode(seed: u64, hosts: usize, procs: usize, rounds: u32, naive: bool) -> ModeOutcome {
    run_mode_with(seed, hosts, procs, rounds, naive, &Telemetry::enabled())
}

fn run_mode_with(
    seed: u64,
    hosts: usize,
    procs: usize,
    rounds: u32,
    naive: bool,
    telemetry: &Telemetry,
) -> ModeOutcome {
    let telemetry = telemetry.clone();
    let mut world = World::new(seed);
    world.set_telemetry(&telemetry);
    let interval = Dur::from_millis(200);
    let mut hm_pids = Vec::with_capacity(hosts);
    for h in 0..hosts {
        let host = world.add_host(format!("host-{h}"), 1 << 16);
        let mut hm = QosHostManager::new(None).with_telemetry(&telemetry);
        // Overload rules keep a persistent `alloc` fact per process in
        // working memory — the realistic fact population the naive
        // matcher re-scans on every cycle.
        hm.load_rules(overload_rules());
        hm.use_naive_matcher(naive);
        hm.set_engine_trace_capacity(1 << 20);
        hm.enable_engine_phase_profile(true);
        hm_pids.push(
            world.spawn(
                host,
                ProcConfig::new("QoSHostManager")
                    .class(SchedClass::RealTime {
                        rtpri: 50,
                        budget: None,
                    })
                    .port(HOST_MANAGER_PORT, 1 << 20),
                hm,
            ),
        );
        for p in 0..procs {
            let port = REPORTER_PORT_BASE + p as Port;
            world.spawn(
                host,
                ProcConfig::new("StormReporter").port(port, 1 << 14),
                StormReporter {
                    hm: Endpoint::new(host, HOST_MANAGER_PORT),
                    telemetry: telemetry.clone(),
                    rounds,
                    interval,
                    big_buffer: p % 2 == 0,
                    port,
                },
            );
        }
    }
    let start = Instant::now();
    // Storm rounds plus drain time for the last round's queues.
    world.run_for(Dur::from_micros(interval.as_micros() * (rounds as u64 + 3)));
    let wall_us = start.elapsed().as_micros() as f64;

    let mut violations = 0;
    let mut join_work = 0;
    let (mut match_ns, mut agenda_ns, mut fire_ns) = (0u64, 0u64, 0u64);
    let mut traces = Vec::with_capacity(hm_pids.len());
    for &pid in &hm_pids {
        {
            let hm: &QosHostManager = world.logic(pid).expect("host manager logic");
            violations += hm.stats.violations;
            join_work += hm.engine_join_work();
        }
        let hm: &mut QosHostManager = world.logic_mut(pid).expect("host manager logic");
        let prof = hm.take_engine_phase_profile();
        match_ns += prof.match_ns;
        agenda_ns += prof.agenda_ns;
        fire_ns += prof.fire_ns;
        traces.push(hm.take_engine_trace());
    }
    let mut diagnose_us: Vec<u64> = telemetry
        .lifecycles()
        .iter()
        .filter_map(|lc| {
            let d = lc.stage_at(Stage::Detect)?;
            let g = lc.stage_at(Stage::Diagnose)?;
            Some(g.saturating_sub(d))
        })
        .collect();
    diagnose_us.sort_unstable();
    let per_violation = |ns: u64| ns as f64 / 1_000.0 / violations.max(1) as f64;
    ModeOutcome {
        violations,
        join_work,
        p50_us: percentile(&diagnose_us, 0.50),
        p95_us: percentile(&diagnose_us, 0.95),
        wall_us_per_violation: wall_us / violations.max(1) as f64,
        phase_us_per_violation: (
            per_violation(match_ns),
            per_violation(agenda_ns),
            per_violation(fire_ns),
        ),
        traces,
    }
}

/// Outcome of one federated weak-scaling run.
struct FedOutcome {
    violations: u64,
    bound: usize,
    shards: Vec<usize>,
    route_pushes: u64,
    entries_per_push: f64,
    wall_us_per_violation: f64,
}

/// One federated run: `domains` leaf domains × (25 hosts each in full
/// mode), every host manager binding through the discovery plane, every
/// reporter storming its local manager. Returns the registry-traffic
/// and wall-cost witnesses.
fn run_fed(seed: u64, domains: u32, hosts: u32, procs: u32, rounds: u32) -> FedOutcome {
    let cfg = FederationConfig {
        seed,
        domains,
        hosts,
        reporters_per_host: procs,
        rounds,
        interval: Dur::from_millis(200),
        // Distinct correlation ids per report round; without them the
        // managers' at-least-once dedup would fold a storm of identical
        // reports into one violation each.
        telemetry: Telemetry::enabled(),
        ..FederationConfig::default()
    };
    let mut fed = Federation::build(&cfg);
    // Time the whole federated run — discovery convergence, lease
    // renewals and the violation storm — so the per-violation figure is
    // the amortized cost of *being federated*, not just the matcher.
    let start = Instant::now();
    fed.world.run_for(
        Dur::from_secs(2) + Dur::from_micros(cfg.interval.as_micros() * (rounds as u64 + 3)),
    );
    let wall_us = start.elapsed().as_micros() as f64;
    assert_eq!(
        fed.bound_hosts(),
        hosts as usize,
        "every host manager must bind during the run"
    );
    let violations: u64 = fed
        .hms
        .iter()
        .map(|&pid| {
            fed.world
                .logic::<QosHostManager>(pid)
                .expect("host manager logic")
                .stats
                .violations
        })
        .sum();
    let st = fed.disc_stats();
    FedOutcome {
        violations,
        bound: fed.bound_hosts(),
        shards: fed.shard_sizes(),
        route_pushes: st.route_pushes,
        entries_per_push: st.pushed_host_entries as f64 / st.route_pushes.max(1) as f64,
        wall_us_per_violation: wall_us / violations.max(1) as f64,
    }
}

/// The federated weak-scaling sweep: hosts grow linearly with domains,
/// so a *flat* per-domain cost curve means management cost per domain is
/// independent of federation size.
fn fed_sweep(max_domains: u32, smoke: bool, budget_us: Option<f64>, rows: &mut Vec<BenchRow>) {
    let hosts_per_domain: u32 = if smoke { 4 } else { 25 };
    let procs: u32 = if smoke { 4 } else { 100 };
    let rounds: u32 = if smoke { 2 } else { 3 };
    // 1, 2, 4, ... max_domains (weak scaling: 25 hosts per domain).
    let mut sweep = Vec::new();
    let mut d = 1u32;
    while d < max_domains {
        sweep.push(d);
        d *= 2;
    }
    sweep.push(max_domains);
    eprintln!(
        "federated sweep: domains {sweep:?} x {hosts_per_domain} hosts x {procs} reporters \
         ({rounds} rounds each, serial)..."
    );
    let mut t = Table::new(&[
        "domains",
        "hosts",
        "procs",
        "violations",
        "route pushes",
        "entries/push",
        "us/violation",
    ]);
    let mut outcomes = Vec::new();
    for &d in &sweep {
        let hosts = hosts_per_domain * d;
        let out = run_fed(20260809, d, hosts, procs, rounds);
        assert_eq!(out.bound, hosts as usize, "all hosts bound at {d} domains");
        assert_eq!(
            out.violations,
            (hosts * procs * rounds) as u64,
            "every storm round must land as a distinct violation at {d} domains"
        );
        assert_eq!(
            out.shards.iter().sum::<usize>(),
            hosts as usize,
            "shards partition the host set at {d} domains"
        );
        assert_eq!(out.shards.len(), d as usize);
        t.row(&[
            format!("{d}"),
            format!("{hosts}"),
            format!("{}", hosts * procs),
            format!("{}", out.violations),
            format!("{}", out.route_pushes),
            f(out.entries_per_push, 1),
            f(out.wall_us_per_violation, 1),
        ]);
        rows.push(
            BenchRow::new("fed_scale")
                .param("domains", d as usize)
                .param("hosts", hosts as usize)
                .param("procs_per_host", procs as usize)
                .param("rounds", rounds)
                .metric("violations", out.violations as f64)
                .metric("route_pushes", out.route_pushes as f64)
                .metric("route_entries_per_push", out.entries_per_push)
                .metric("wall_us_per_violation", out.wall_us_per_violation),
        );
        outcomes.push((d, hosts, out));
    }
    println!("\nFederated weak scaling: discovery-bound hosts, sharded registry");
    println!("{}", t.render());
    let (d0, h0, first) = &outcomes[0];
    let (dn, hn, last) = &outcomes[outcomes.len() - 1];
    let host_growth = *hn as f64 / *h0 as f64;
    let traffic_growth = last.entries_per_push / first.entries_per_push.max(f64::EPSILON);
    println!(
        "registry traffic per push: {:.1} entries at {d0} domain(s) -> {:.1} at {dn} \
         ({traffic_growth:.2}x over a {host_growth:.0}x host growth)",
        first.entries_per_push, last.entries_per_push
    );
    assert!(
        traffic_growth <= 0.6 * host_growth,
        "per-domain registry traffic must grow sub-linearly in total hosts: \
         {traffic_growth:.2}x traffic vs {host_growth:.0}x hosts"
    );
    if let Some(budget) = budget_us {
        let worst = outcomes
            .iter()
            .map(|(_, _, o)| o.wall_us_per_violation)
            .fold(0.0_f64, f64::max);
        eprintln!("federated wall budget: worst run {worst:.1} us/violation (budget {budget})");
        assert!(
            worst <= budget,
            "federated wall cost {worst:.1} us/violation exceeds budget {budget}"
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget_us = arg_value("--assert-budget-us").and_then(|v| v.parse::<f64>().ok());
    let flat_pct = arg_value("--assert-flat-pct").and_then(|v| v.parse::<f64>().ok());
    let sweep: &[(usize, usize)] = if smoke {
        &[(1, 8), (2, 16)]
    } else {
        &[(1, 8), (2, 16), (4, 32), (8, 64)]
    };
    let rounds: u32 = if smoke { 4 } else { 10 };
    eprintln!(
        "running {} configurations x 2 matchers ({} storm rounds each, in parallel)...",
        sweep.len(),
        rounds
    );
    let results = parallel_map(sweep, |&(hosts, procs)| {
        let naive = run_mode(20260807, hosts, procs, rounds, true);
        let rete = run_mode(20260807, hosts, procs, rounds, false);
        (hosts, procs, naive, rete)
    });
    // The parallel sweep saturates every core, so its wall-clock numbers
    // measure scheduler contention, not the matcher. Re-time the
    // incremental runs one at a time for the wall/phase metrics.
    eprintln!("re-timing incremental runs serially for wall/phase metrics...");
    let timed: Vec<ModeOutcome> = sweep
        .iter()
        .map(|&(hosts, procs)| run_mode(20260807, hosts, procs, rounds, false))
        .collect();

    let mut t = Table::new(&[
        "hosts",
        "procs/host",
        "violations",
        "naive join",
        "rete join",
        "ratio",
        "naive p50/p95 (us)",
        "rete p50/p95 (us)",
        "rete us/viol (match/agenda/fire)",
    ]);
    let mut rows = Vec::new();
    let mut last_ratio = 0.0;
    for ((hosts, procs, naive, rete), timed) in results.iter().zip(&timed) {
        assert_eq!(
            naive.traces, rete.traces,
            "matchers diverged at {hosts}x{procs}: the incremental engine \
             must fire exactly the naive oracle's sequence"
        );
        assert_eq!(naive.violations, rete.violations);
        let ratio = naive.join_work as f64 / rete.join_work.max(1) as f64;
        last_ratio = ratio;
        let (m_us, a_us, f_us) = timed.phase_us_per_violation;
        let (nm_us, na_us, nf_us) = naive.phase_us_per_violation;
        t.row(&[
            format!("{hosts}"),
            format!("{procs}"),
            format!("{}", rete.violations),
            format!("{}", naive.join_work),
            format!("{}", rete.join_work),
            f(ratio, 1),
            format!("{}/{}", naive.p50_us, naive.p95_us),
            format!("{}/{}", rete.p50_us, rete.p95_us),
            format!("{m_us:.2}/{a_us:.2}/{f_us:.2}"),
        ]);
        rows.push(
            BenchRow::new("scale")
                .param("hosts", hosts)
                .param("procs_per_host", procs)
                .param("rounds", rounds)
                .metric("violations", rete.violations as f64)
                .metric("naive_join_work", naive.join_work as f64)
                .metric("rete_join_work", rete.join_work as f64)
                .metric("join_work_ratio", ratio)
                .metric("naive_p50_us", naive.p50_us as f64)
                .metric("naive_p95_us", naive.p95_us as f64)
                .metric("rete_p50_us", rete.p50_us as f64)
                .metric("rete_p95_us", rete.p95_us as f64)
                .metric("rete_wall_us_per_violation", timed.wall_us_per_violation)
                .metric("rete_match_us_per_violation", m_us)
                .metric("rete_agenda_us_per_violation", a_us)
                .metric("rete_fire_us_per_violation", f_us)
                .metric("naive_match_us_per_violation", nm_us)
                .metric("naive_agenda_us_per_violation", na_us)
                .metric("naive_fire_us_per_violation", nf_us),
        );
    }
    println!("Matcher scale sweep: simultaneous violation storms, naive vs incremental");
    println!("{}", t.render());
    println!(
        "largest configuration: {:.1}x less join work with the incremental matcher, \
         identical firing traces everywhere",
        last_ratio
    );
    assert!(
        last_ratio >= 5.0,
        "incremental matcher must cut join work >=5x at the largest \
         configuration (got {last_ratio:.1}x)"
    );
    let walls: Vec<f64> = timed.iter().map(|t| t.wall_us_per_violation).collect();
    let worst = walls.iter().copied().fold(0.0_f64, f64::max);
    let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
    let spread_pct = (worst / best.max(f64::EPSILON) - 1.0) * 100.0;
    println!(
        "incremental per-violation wall cost: {best:.1}..{worst:.1} us across the sweep \
         ({spread_pct:.0}% spread)"
    );
    if let Some(budget) = budget_us {
        eprintln!("wall budget: worst incremental run {worst:.1} us/violation (budget {budget})");
        assert!(
            worst <= budget,
            "incremental matcher wall cost {worst:.1} us/violation exceeds budget {budget}"
        );
    }
    if let Some(max_pct) = flat_pct {
        assert!(
            spread_pct <= max_pct,
            "incremental per-violation wall cost spread {spread_pct:.0}% exceeds {max_pct}% \
             (the scale curve must stay flat)"
        );
    }

    if let Some(domains) = arg_value("--domains").and_then(|v| v.parse::<u32>().ok()) {
        fed_sweep(domains, smoke, budget_us, &mut rows);
    }

    let path = arg_value("--json").unwrap_or_else(|| "BENCH_scale.json".to_string());
    std::fs::write(&path, bench_rows_to_json(&rows)).expect("write benchmark rows");
    eprintln!("benchmark rows written to {path}");

    if telemetry_requested() {
        // Re-run the smallest configuration with one shared instrumented
        // handle and emit the requested artifacts.
        let t = Telemetry::enabled();
        let _ = run_mode_with(20260807, 1, 8, rounds.min(4), false, &t);
        println!("\n{}", telemetry_summary(&t));
        emit_telemetry_outputs(&t).expect("write telemetry artifacts");
    }
}
