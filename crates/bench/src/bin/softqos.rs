//! `softqos` — one entry point for all reproduction experiments.
//!
//! ```text
//! softqos fig3         [--seed N] [--loads 0.7,3,5,7,10]
//! softqos convergence  [--seed N] [--hogs K]
//! softqos contention   [--seed N]
//! softqos localization [--seed N] [--fault client-cpu|server-cpu|network] [--no-buffer-sensor]
//! softqos proactive    [--seed N]
//! softqos overload     [--seed N]
//! softqos run          [--seed N] [--secs S] [--hogs K] [--unmanaged]
//! ```
//!
//! `run` executes a single testbed scenario and prints a per-second fps
//! trace — handy for eyeballing the feedback loop.

use qos_core::prelude::*;

/// Minimal flag parser: `--key value` pairs plus boolean `--key` flags.
struct Args {
    cmd: String,
    kv: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let cmd = it.next()?;
        let mut kv = Vec::new();
        let mut flags = Vec::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i].strip_prefix("--")?.to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                kv.push((key, rest[i + 1].clone()));
                i += 2;
            } else {
                flags.push(key);
                i += 1;
            }
        }
        Some(Args { cmd, kv, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: softqos <command> [options]\n\
         commands:\n\
         \u{20}  fig3         [--seed N] [--loads 0.7,3,5,7,10]\n\
         \u{20}  convergence  [--seed N] [--hogs K]\n\
         \u{20}  contention   [--seed N]\n\
         \u{20}  localization [--seed N] [--fault client-cpu|server-cpu|network] [--no-buffer-sensor]\n\
         \u{20}  proactive    [--seed N]\n\
         \u{20}  overload     [--seed N]\n\
         \u{20}  run          [--seed N] [--secs S] [--hogs K] [--unmanaged]"
    );
    std::process::exit(2);
}

fn main() {
    let Some(args) = Args::parse() else { usage() };
    let seed: u64 = args.num("seed", 20260704);
    match args.cmd.as_str() {
        "fig3" => {
            let loads: Vec<f64> = args
                .get("loads")
                .map(|s| {
                    s.split(',')
                        .map(|x| x.trim().parse().expect("numeric load"))
                        .collect()
                })
                .unwrap_or_else(|| vec![0.70, 3.00, 5.00, 7.00, 10.00]);
            let rows = figure3(seed, &loads);
            let mut t = Table::new(&["target load", "measured", "normal fps", "managed fps"]);
            for r in &rows {
                t.row(&[
                    f(r.target_load, 2),
                    f(r.measured_load, 2),
                    f(r.fps_normal, 1),
                    f(r.fps_managed, 1),
                ]);
            }
            println!("{}", t.render());
        }
        "convergence" => {
            let hogs: u32 = args.num("hogs", 5);
            let trace = convergence(seed, hogs, true);
            let mut t = Table::new(&["t (s)", "fps", "boost"]);
            for i in (0..trace.fps.len()).step_by(5) {
                t.row(&[
                    f(trace.fps[i].0, 0),
                    f(trace.fps[i].1, 1),
                    format!("{}", trace.boost[i].1),
                ]);
            }
            println!("{}", t.render());
            match trace.settled_at {
                Some(ts) => println!("settled at t = {ts:.0} s"),
                None => println!("did not settle"),
            }
        }
        "contention" => {
            let fair = contention(seed, AdminRules::FairShare);
            let diff = contention(seed, AdminRules::Differentiated);
            let mut t = Table::new(&["client", "weight", "fair fps", "differentiated fps"]);
            for i in 0..fair.len() {
                t.row(&[
                    format!("{}", fair[i].client),
                    f(fair[i].weight, 1),
                    f(fair[i].fps, 1),
                    f(diff[i].fps, 1),
                ]);
            }
            println!("{}", t.render());
        }
        "localization" => {
            let fault = match args.get("fault").unwrap_or("network") {
                "client-cpu" => Fault::ClientCpu,
                "server-cpu" => Fault::ServerCpu,
                "network" => Fault::Network,
                other => {
                    eprintln!("unknown fault '{other}'");
                    usage()
                }
            };
            let r = localization(seed, fault, !args.flag("no-buffer-sensor"));
            println!(
                "fault {:?}: fps {:.1} -> {:.1} -> {:.1}",
                r.fault, r.fps_before, r.fps_during, r.fps_after
            );
            println!(
                "client boosts {}, domain alerts {}, actions {:?}",
                r.client_boosts, r.domain_alerts, r.domain_actions
            );
        }
        "proactive" => {
            let reactive = proactive(seed, false);
            let pro = proactive(seed, true);
            let mut t = Table::new(&[
                "mode",
                "secs below spec",
                "worst fps",
                "mean fps",
                "nudges",
                "boosts",
            ]);
            for (name, r) in [("reactive", &reactive), ("proactive", &pro)] {
                t.row(&[
                    name.into(),
                    format!("{}", r.secs_below_spec),
                    f(r.worst_fps, 1),
                    f(r.mean_fps, 1),
                    format!("{}", r.nudges),
                    format!("{}", r.boosts),
                ]);
            }
            println!("{}", t.render());
        }
        "overload" => {
            let rigid = overload(seed, false);
            let adaptive = overload(seed, true);
            let mut t = Table::new(&[
                "mode",
                "steady fps",
                "quality level",
                "adaptations",
                "boost",
            ]);
            for (name, r) in [("rigid", &rigid), ("adaptive", &adaptive)] {
                t.row(&[
                    name.into(),
                    f(r.fps, 1),
                    format!("{}", r.quality),
                    format!("{}", r.adaptations),
                    format!("{}", r.boost),
                ]);
            }
            println!("{}", t.render());
        }
        "run" => {
            let secs: u64 = args.num("secs", 60);
            let hogs: u32 = args.num("hogs", 5);
            let cfg = TestbedConfig {
                seed,
                managed: !args.flag("unmanaged"),
                ..TestbedConfig::default()
            };
            let mut tb = Testbed::build(&cfg);
            tb.world.run_for(Dur::from_secs(10));
            spawn_mix(
                &mut tb.world,
                tb.client_host,
                LoadMix {
                    hogs,
                    fraction: 0.0,
                },
            );
            println!("t=10s: injected {hogs} CPU hogs");
            let mut prev = tb.displayed(0);
            for s in 0..secs {
                tb.world.run_for(Dur::from_secs(1));
                let d = tb.displayed(0);
                let boost = tb
                    .world
                    .host(tb.client_host)
                    .proc_upri(tb.clients[0])
                    .unwrap_or(0);
                println!(
                    "t={:3}s  fps {:5.1}  boost {:3}",
                    11 + s,
                    (d - prev) as f64,
                    boost
                );
                prev = d;
            }
        }
        _ => usage(),
    }
}
