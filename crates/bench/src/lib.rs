//! # qos-bench — benchmarks and experiment binaries
//!
//! One Criterion bench and/or experiment binary per table and figure in
//! the paper's evaluation (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for measured-vs-paper results):
//!
//! | artifact | binary | bench |
//! |---|---|---|
//! | Figure 3 (fps vs load) | `fig3` | `fig3_throughput` |
//! | §7 overhead (init ≈400 µs, pass ≈11 µs) | `overhead` | `overhead` |
//! | Feedback convergence (E4) | `convergence` | `convergence` |
//! | Administrative contention (E5) | `contention` | `contention` |
//! | Fault localization (E6) | `localization` | `localization` |
//! | Policy distribution (E7) | `distribution` | `policy_lookup` |
//! | Inference engine scaling (E8) | — | `inference` |
//! | Multi-host matcher scaling | `scale` | — |
//!
//! Run a binary with `cargo run --release -p qos-bench --bin fig3`.
//! Binaries accepting `--json <path>` additionally write their result
//! rows as machine-readable JSON (see [`json`]).

#![warn(missing_docs)]

pub mod json;

pub use json::{bench_rows_to_json, emit_bench_json, BenchRow};
pub use qos_core::prelude::*;
