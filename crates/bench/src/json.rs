//! Machine-readable benchmark output: a tiny hand-rolled JSON writer
//! (the workspace deliberately carries no serialization dependency) for
//! the `--json <path>` flag the experiment binaries share. Each binary
//! emits an array of rows — `{"name": ..., "params": {...},
//! "metrics": {...}}` — so sweeps can be diffed and plotted without
//! scraping the human-readable tables.

use std::fmt::Write as _;

/// One benchmark result row: a point in a sweep.
#[derive(Debug, Clone, Default)]
pub struct BenchRow {
    /// Benchmark name, e.g. `scale` or `fig3`.
    pub name: String,
    /// Sweep parameters (kept as strings — they label, not compute).
    pub params: Vec<(String, String)>,
    /// Measured values.
    pub metrics: Vec<(String, f64)>,
}

impl BenchRow {
    /// A row for the named benchmark.
    pub fn new(name: impl Into<String>) -> Self {
        BenchRow {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a sweep parameter.
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a measured value.
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("  {");
        let _ = write!(s, "\"name\": {}", json_str(&self.name));
        s.push_str(", \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", json_str(k), json_str(v));
        }
        s.push_str("}, \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", json_str(k), json_num(*v));
        }
        s.push_str("}}");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        // Integral values print without a fraction for readability.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Render rows as a JSON array, one row per line.
pub fn bench_rows_to_json(rows: &[BenchRow]) -> String {
    let mut s = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&row.to_json());
        if i + 1 < rows.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Write rows to `path` when the command line carries `--json <path>`
/// (`BENCH_*.json` by convention); no-op otherwise.
pub fn emit_bench_json(rows: &[BenchRow]) -> std::io::Result<()> {
    if let Some(path) = crate::arg_value("--json") {
        std::fs::write(&path, bench_rows_to_json(rows))?;
        eprintln!("benchmark rows written to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_as_json_array() {
        let rows = vec![
            BenchRow::new("scale")
                .param("hosts", 8)
                .param("procs", 64)
                .metric("p50_us", 123.0)
                .metric("join_ratio", 6.25),
            BenchRow::new("weird \"name\"\n").metric("nan", f64::NAN),
        ];
        let s = bench_rows_to_json(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.ends_with("]\n"));
        assert!(s.contains("\"name\": \"scale\""));
        assert!(s.contains("\"hosts\": \"8\""));
        assert!(s.contains("\"p50_us\": 123"));
        assert!(s.contains("\"join_ratio\": 6.25"));
        assert!(s.contains("\\\"name\\\"\\n"));
        assert!(s.contains("\"nan\": null"));
        // Two rows, comma-separated.
        assert_eq!(s.matches("\"params\"").count(), 2);
        assert_eq!(s.matches(",\n").count(), 1);
    }
}
