//! E7 bench: policy distribution costs — Policy Agent registration
//! (repository search + parse + compile) vs repository size, directory
//! search, and LDIF round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_bench::*;
use qos_core::repository::prelude::*;

fn repo_with(n: usize) -> Repository {
    let (model, _, _) = qos_core::policy::model::video_example_model();
    let mut repo = Repository::new();
    repo.store_model(&model).expect("fresh repo");
    for i in 0..n {
        let (exec, app) = if i % 10 == 0 {
            ("VideoApplication", "VideoPlayback")
        } else {
            ("OtherExecutable", "OtherApp")
        };
        repo.store_policy(&StoredPolicy {
            name: format!("P{i}"),
            application: app.into(),
            executable: exec.into(),
            role: "*".into(),
            source: EXAMPLE1_SOURCE.into(),
            enabled: true,
        })
        .expect("fresh repo");
    }
    repo
}

fn bench_registration(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_lookup/registration");
    for &n in &[10usize, 100, 1_000] {
        let repo = repo_with(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut agent = PolicyAgent::new();
            let reg = Registration {
                process: "p".into(),
                executable: "VideoApplication".into(),
                application: "VideoPlayback".into(),
                role: "*".into(),
            };
            b.iter(|| agent.register(&repo, &reg).policies.len())
        });
    }
    g.finish();
}

fn bench_search_and_ldif(c: &mut Criterion) {
    let repo = repo_with(500);
    let filter = Filter::parse("(&(objectClass=qosPolicy)(execRef=VideoApplication))")
        .expect("static filter");
    c.bench_function("policy_lookup/search_500", |b| {
        b.iter(|| repo.search_policies(&filter).len())
    });
    let app = ManagementApp;
    let ldif = app.export_ldif(&repo);
    c.bench_function("policy_lookup/ldif_export_500", |b| {
        b.iter(|| app.export_ldif(&repo).len())
    });
    c.bench_function("policy_lookup/ldif_import_500", |b| {
        b.iter(|| {
            let mut fresh = Repository::new();
            app.import_ldif(&mut fresh, &ldif).expect("valid ldif")
        })
    });
    c.bench_function("policy_lookup/parse_compile_example1", |b| {
        b.iter(|| {
            let ast =
                qos_core::policy::parser::parse_policy(EXAMPLE1_SOURCE).expect("static policy");
            qos_core::policy::compile::compile(&ast).expect("compiles")
        })
    });
}

criterion_group!(benches, bench_registration, bench_search_and_ldif);
criterion_main!(benches);
