//! E8 bench: inference-engine scaling (substrate validation — the CLIPS
//! substitute must not dominate manager latency). Measures
//! match-resolve-act throughput as rules and facts grow, and the cost of
//! one host-manager diagnosis cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_core::inference::prelude::*;
use qos_core::manager::rules::{host_base_facts, host_rules_fair};

/// N rules, each consuming its own event template.
fn engine_with_rules(n: usize) -> Engine {
    let mut e = Engine::new();
    for i in 0..n {
        e.add_rule(
            Rule::new(format!("r{i}"))
                .when(
                    Pattern::new(format!("ev{i}"))
                        .slot_var("x", "x")
                        .slot_cmp("x", CmpOp::Gt, 0),
                )
                .then_retract(0)
                .then_call("handle", vec![Term::var("x")]),
        );
    }
    e
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference/rules_x_facts");
    for &(rules, facts) in &[(4usize, 16usize), (16, 64), (64, 256)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rules}r_{facts}f")),
            &(rules, facts),
            |b, &(rules, facts)| {
                b.iter(|| {
                    let mut e = engine_with_rules(rules);
                    for i in 0..facts {
                        e.assert_fact(
                            Fact::new(format!("ev{}", i % rules)).with("x", (i + 1) as i64),
                        );
                    }
                    let stats = e.run(10_000);
                    assert_eq!(stats.fired, facts as u64);
                    e.take_invocations().len()
                })
            },
        );
    }
    g.finish();
}

fn bench_host_diagnosis(c: &mut Criterion) {
    // One full diagnosis cycle with the real host-manager rule set.
    c.bench_function("inference/host_manager_diagnosis", |b| {
        let prog = parse_program(&host_rules_fair()).expect("static rules");
        let facts = parse_program(&host_base_facts()).expect("static facts");
        b.iter(|| {
            let mut e = Engine::new();
            for r in prog.rules.clone() {
                e.add_rule(r);
            }
            for f in facts.facts.clone() {
                e.assert_fact(f);
            }
            e.assert_fact(
                Fact::new("violation")
                    .with("pid", Value::str("h0:p2"))
                    .with("fps", 14.0)
                    .with("lo", 23.0)
                    .with("hi", 27.0)
                    .with("buffer", 50_000.0)
                    .with("weight", 1.0)
                    .with("has-upstream", true),
            );
            e.run(100);
            e.take_invocations().len()
        })
    });
    c.bench_function("inference/parse_rule_set", |b| {
        let text = host_rules_fair();
        b.iter(|| parse_program(&text).expect("static rules").rules.len())
    });
}

criterion_group!(benches, bench_scaling, bench_host_diagnosis);
criterion_main!(benches);
