//! E4 bench: cost of a full 90-second convergence trace (managed run
//! under 5 hogs). The trace itself is printed by the `convergence`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qos_bench::*;

fn bench_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("convergence");
    g.sample_size(10);
    g.bench_function("managed_90s_5hogs", |b| {
        b.iter(|| convergence(1, 5, true).settled_at)
    });
    g.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
