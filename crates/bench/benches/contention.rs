//! E5 bench: cost of one contention run (3 clients, 120 simulated
//! seconds) under each administrative rule set. The comparison table is
//! printed by the `contention` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qos_bench::*;

fn bench_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention");
    g.sample_size(10);
    g.bench_function("fair_share", |b| {
        b.iter(|| contention(1, AdminRules::FairShare))
    });
    g.bench_function("differentiated", |b| {
        b.iter(|| contention(1, AdminRules::Differentiated))
    });
    g.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
