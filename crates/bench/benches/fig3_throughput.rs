//! E1 / Figure 3 bench: wall-clock cost of regenerating one point of the
//! figure (a full 120-simulated-second managed/unmanaged run), plus raw
//! simulator event throughput. The table itself is printed by
//! `cargo run -p qos-bench --bin fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use qos_bench::*;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("point_load5_managed", |b| {
        b.iter(|| fig3_point(1, 5.0, true))
    });
    g.bench_function("point_load5_unmanaged", |b| {
        b.iter(|| fig3_point(1, 5.0, false))
    });
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    // Raw substrate speed: events per second through the kernel for a
    // standard testbed.
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("testbed_60s", |b| {
        b.iter(|| {
            let cfg = TestbedConfig {
                seed: 2,
                ..TestbedConfig::default()
            };
            let mut tb = Testbed::build(&cfg);
            tb.world.run_for(Dur::from_secs(60));
            tb.world.events_processed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig3, bench_sim_throughput);
criterion_main!(benches);
