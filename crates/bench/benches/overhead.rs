//! E2/E3 bench: the paper's Section 7 overhead numbers, measured with
//! Criterion on real threads — instrumented-process initialisation +
//! registration (paper ≈400 µs) and one instrumentation pass with QoS
//! met (paper ≈11 µs).

use criterion::{criterion_group, criterion_main, Criterion};
use qos_core::manager::live::{standard_live_repo, LiveHostManager, LiveProcess};
use qos_core::repository::agent::Registration;

fn bench_init(c: &mut Criterion) {
    let (repo, mut agent) = standard_live_repo();
    let mgr = LiveHostManager::builder()
        .spawn()
        .expect("spawn live manager");
    let mut i = 0u64;
    c.bench_function("overhead/init_registration", |b| {
        b.iter(|| {
            i += 1;
            let reg = Registration {
                process: format!("bench:{i}"),
                executable: "VideoApplication".into(),
                application: "VideoPlayback".into(),
                role: "*".into(),
            };
            LiveProcess::start(&reg, &repo, &mut agent, mgr.connect()).expect("manager running")
        })
    });
    mgr.shutdown();
}

fn bench_pass(c: &mut Criterion) {
    let (repo, mut agent) = standard_live_repo();
    let mgr = LiveHostManager::builder()
        .spawn()
        .expect("spawn live manager");
    let reg = Registration {
        process: "bench:pass".into(),
        executable: "VideoApplication".into(),
        application: "VideoPlayback".into(),
        role: "*".into(),
    };
    let mut p =
        LiveProcess::start(&reg, &repo, &mut agent, mgr.connect()).expect("manager running");
    let mut v = 0u64;
    c.bench_function("overhead/instrumented_pass_qos_met", |b| {
        b.iter(|| {
            v = (v + 1) & 0xff;
            p.buffer_pass(100 + v)
        })
    });
    c.bench_function("overhead/frame_pass", |b| b.iter(|| p.frame_pass()));
    assert_eq!(p.reports_sent(), 0, "QoS-met path must stay silent");
    mgr.shutdown();
}

criterion_group!(benches, bench_init, bench_pass);
criterion_main!(benches);
