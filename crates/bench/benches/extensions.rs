//! E9/E10 bench: cost of the Section 10 extension scenarios (proactive
//! ramp and overload adaptation runs). The comparison tables are printed
//! by the `proactive` and `overload` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use qos_bench::*;

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("proactive_ramp", |b| {
        b.iter(|| proactive(1, true).secs_below_spec)
    });
    g.bench_function("overload_adaptive", |b| b.iter(|| overload(1, true).fps));
    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
