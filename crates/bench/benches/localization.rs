//! E6 bench: cost of one fault-localization scenario (120 simulated
//! seconds with domain manager, queries and adaptation). The diagnosis
//! table is printed by the `localization` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qos_bench::*;

fn bench_localization(c: &mut Criterion) {
    let mut g = c.benchmark_group("localization");
    g.sample_size(10);
    for fault in [Fault::ClientCpu, Fault::ServerCpu, Fault::Network] {
        g.bench_function(format!("{fault:?}"), |b| {
            b.iter(|| localization(1, fault, true).fps_after)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_localization);
criterion_main!(benches);
