//! Abstract syntax for obligation policies.

use core::fmt;

/// A parsed policy file: a set of obligation policies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicySet {
    /// Policies in source order.
    pub policies: Vec<ObligPolicy>,
}

/// An obligation policy (Ponder `oblig`): *when the `on` event occurs —
/// here, the negation of a QoS requirement, i.e. a violation — the subject
/// performs the `do` actions on the targets.*
#[derive(Debug, Clone, PartialEq)]
pub struct ObligPolicy {
    /// Policy name (unique within a set).
    pub name: String,
    /// The component responsible for the policy (the instrumented
    /// application's coordinator).
    pub subject: PathExpr,
    /// Components acted upon: sensors and the QoS Host Manager.
    pub targets: Vec<PathExpr>,
    /// Violation event. By convention (Section 3.2) this is
    /// `not (<QoS requirement>)`.
    pub event: CondExpr,
    /// Actions to execute when the event occurs.
    pub actions: Vec<ActionStmt>,
}

/// A (possibly elided) slash-separated path naming a managed component,
/// e.g. `(...)/VideoApplication/qosl_coordinator`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathExpr {
    /// True when the path begins with the `(...)` elision (hostname,
    /// domain and other deployment-specific prefix).
    pub elided_prefix: bool,
    /// Path segments after the prefix.
    pub segments: Vec<String>,
}

impl PathExpr {
    /// A non-elided path from segments.
    pub fn of(segments: &[&str]) -> Self {
        PathExpr {
            elided_prefix: false,
            segments: segments.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The final segment (the component's own name).
    pub fn leaf(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.elided_prefix {
            write!(f, "(...)")?;
            if !self.segments.is_empty() {
                write!(f, "/")?;
            }
        }
        write!(f, "{}", self.segments.join("/"))
    }
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` (with optional tolerance).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A condition expression over application attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum CondExpr {
    /// Negation.
    Not(Box<CondExpr>),
    /// Conjunction (n-ary).
    And(Vec<CondExpr>),
    /// Disjunction (n-ary).
    Or(Vec<CondExpr>),
    /// An atomic comparison `attr op value`, optionally with a tolerance
    /// (only meaningful with `=`): `frame_rate = 25(+2)(-2)` means the
    /// value must lie in `[23, 27]`.
    Cmp {
        /// Attribute name (collected by a sensor).
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Threshold / target value.
        value: f64,
        /// Allowed excess above `value`.
        tol_plus: Option<f64>,
        /// Allowed shortfall below `value`.
        tol_minus: Option<f64>,
    },
}

impl CondExpr {
    /// Convenience constructor for a plain comparison.
    pub fn cmp(attr: &str, op: CmpOp, value: f64) -> Self {
        CondExpr::Cmp {
            attr: attr.into(),
            op,
            value,
            tol_plus: None,
            tol_minus: None,
        }
    }

    /// All attribute names referenced in the expression.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            CondExpr::Not(e) => e.collect_attrs(out),
            CondExpr::And(es) | CondExpr::Or(es) => {
                for e in es {
                    e.collect_attrs(out);
                }
            }
            CondExpr::Cmp { attr, .. } => out.push(attr),
        }
    }
}

impl fmt::Display for CondExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondExpr::Not(e) => write!(f, "not ({e})"),
            CondExpr::And(es) => {
                let parts: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            CondExpr::Or(es) => {
                let parts: Vec<String> = es.iter().map(|e| format!("({e})")).collect();
                write!(f, "{}", parts.join(" OR "))
            }
            CondExpr::Cmp {
                attr,
                op,
                value,
                tol_plus,
                tol_minus,
            } => {
                write!(f, "{attr} {op} {value}")?;
                if let Some(p) = tol_plus {
                    write!(f, "(+{p})")?;
                }
                if let Some(m) = tol_minus {
                    write!(f, "(-{m})")?;
                }
                Ok(())
            }
        }
    }
}

/// One `do` action: a method invocation on a target,
/// e.g. `fps_sensor->read(out frame_rate)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionStmt {
    /// Invocation target (sensor name or manager path).
    pub target: PathExpr,
    /// Method name (`read`, `notify`, ...).
    pub method: String,
    /// Arguments.
    pub args: Vec<ArgExpr>,
}

/// An argument in an action invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgExpr {
    /// `out name`: the invocation binds `name` with an output value
    /// (a sensor read).
    Out(String),
    /// A previously bound name or attribute passed by value.
    Name(String),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
}

impl fmt::Display for ArgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgExpr::Out(n) => write!(f, "out {n}"),
            ArgExpr::Name(n) => write!(f, "{n}"),
            ArgExpr::Num(v) => write!(f, "{v}"),
            ArgExpr::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display() {
        let p = PathExpr {
            elided_prefix: true,
            segments: vec!["App".into(), "coord".into()],
        };
        assert_eq!(p.to_string(), "(...)/App/coord");
        assert_eq!(p.leaf(), Some("coord"));
        assert_eq!(PathExpr::of(&["a"]).to_string(), "a");
    }

    #[test]
    fn cond_attributes_deduped() {
        let e = CondExpr::And(vec![
            CondExpr::cmp("fps", CmpOp::Gt, 23.0),
            CondExpr::cmp("fps", CmpOp::Lt, 27.0),
            CondExpr::cmp("jitter", CmpOp::Lt, 1.25),
        ]);
        assert_eq!(e.attributes(), vec!["fps", "jitter"]);
    }

    #[test]
    fn cond_display_roundtrips_shape() {
        let e = CondExpr::Not(Box::new(CondExpr::And(vec![
            CondExpr::Cmp {
                attr: "frame_rate".into(),
                op: CmpOp::Eq,
                value: 25.0,
                tol_plus: Some(2.0),
                tol_minus: Some(2.0),
            },
            CondExpr::cmp("jitter_rate", CmpOp::Lt, 1.25),
        ])));
        assert_eq!(
            e.to_string(),
            "not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)"
        );
    }
}
