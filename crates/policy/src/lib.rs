//! # qos-policy — the policy formalism and information model
//!
//! Implements the paper's Section 4 policy notation (a Ponder-style
//! `oblig` language from Damianou et al., used verbatim in the paper's
//! Example 1), its compilation into the coordinator's run-time form
//! (Section 5.2 / Example 3), the Section 6.1 information model
//! (applications, executables, sensors, user roles, policy records) and
//! the integrity checks the management application runs before uploading
//! a policy (Section 7).
//!
//! The exact policy from the paper parses as written:
//!
//! ```
//! use qos_policy::prelude::*;
//!
//! let policy = parse_policy(r#"
//!   oblig NotifyQoSViolation {
//!     subject (...)/VideoApplication/qosl_coordinator
//!     target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
//!     on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
//!     do fps_sensor->read(out frame_rate);
//!        jitter_sensor->read(out jitter_rate);
//!        buffer_sensor->read(out buffer_size);
//!        (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
//!   }"#).unwrap();
//!
//! let compiled = compile(&policy).unwrap();
//! // Example 3's condition list: x1: frame_rate > 23, x2: frame_rate < 27,
//! // x3: jitter_rate < 1.25; requirement = x1 AND x2 AND x3.
//! assert_eq!(compiled.conditions.len(), 3);
//! assert!(compiled.violated(&[true, false, true]));
//! ```

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod validate;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::ast::{ActionStmt, ArgExpr, CmpOp, CondExpr, ObligPolicy, PathExpr, PolicySet};
    pub use crate::compile::{compile, BoolExpr, CompileError, CompiledCondition, CompiledPolicy};
    pub use crate::lexer::{lex, LexError, Tok, Token};
    pub use crate::model::{
        video_example_model, ApplicationDef, ApplicationId, ExecutableDef, ExecutableId, InfoModel,
        PolicyRecord, SensorDef, SensorId, UserRole,
    };
    pub use crate::parser::{parse_policies, parse_policy, PolicyParseError};
    pub use crate::validate::{check_policy, Violation, HOST_MANAGER, SENSOR_METHODS};
}

pub use prelude::*;
