//! Recursive-descent parser for obligation policies.

use crate::ast::{ActionStmt, ArgExpr, CmpOp, CondExpr, ObligPolicy, PathExpr, PolicySet};
use crate::lexer::{lex, LexError, Tok, Token};
use core::fmt;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyParseError {
    /// Byte offset (end of input if tokens ran out).
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy parse error at byte {}: {}", self.pos, self.msg)
    }
}
impl std::error::Error for PolicyParseError {}

impl From<LexError> for PolicyParseError {
    fn from(e: LexError) -> Self {
        PolicyParseError {
            pos: e.pos,
            msg: e.msg,
        }
    }
}

/// Parse a policy file into a [`PolicySet`].
pub fn parse_policies(src: &str) -> Result<PolicySet, PolicyParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        ix: 0,
        end: src.len(),
    };
    let mut set = PolicySet::default();
    while !p.at_end() {
        set.policies.push(p.policy()?);
    }
    Ok(set)
}

/// Parse a single policy.
pub fn parse_policy(src: &str) -> Result<ObligPolicy, PolicyParseError> {
    let set = parse_policies(src)?;
    match set.policies.len() {
        1 => Ok(set.policies.into_iter().next().expect("len checked")),
        n => Err(PolicyParseError {
            pos: 0,
            msg: format!("expected exactly one policy, found {n}"),
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    ix: usize,
    end: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.ix >= self.tokens.len()
    }

    fn pos(&self) -> usize {
        self.tokens.get(self.ix).map_or(self.end, |t| t.pos)
    }

    fn err(&self, msg: impl Into<String>) -> PolicyParseError {
        PolicyParseError {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.ix).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.ix).map(|t| t.kind.clone());
        if t.is_some() {
            self.ix += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), PolicyParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.ix += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected '{want}', found '{t}'"))),
            None => Err(self.err(format!("expected '{want}', found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, PolicyParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(PolicyParseError {
                pos: self.tokens[self.ix - 1].pos,
                msg: format!("expected identifier, found '{t}'"),
            }),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    /// Is the upcoming token this keyword (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), PolicyParseError> {
        if self.peek_kw(kw) {
            self.ix += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn policy(&mut self) -> Result<ObligPolicy, PolicyParseError> {
        self.eat_kw("oblig")?;
        let name = self.ident()?;
        self.eat(&Tok::LBrace)?;
        let mut subject = None;
        let mut targets = Vec::new();
        let mut event = None;
        let mut actions = Vec::new();
        loop {
            if self.peek() == Some(&Tok::RBrace) {
                self.ix += 1;
                break;
            }
            if self.peek_kw("subject") {
                self.ix += 1;
                subject = Some(self.path()?);
            } else if self.peek_kw("target") {
                self.ix += 1;
                targets.push(self.path()?);
                while self.peek() == Some(&Tok::Comma) {
                    self.ix += 1;
                    targets.push(self.path()?);
                }
            } else if self.peek_kw("on") {
                self.ix += 1;
                event = Some(self.cond()?);
            } else if self.peek_kw("do") {
                self.ix += 1;
                actions.push(self.action()?);
                while self.peek() == Some(&Tok::Semi) {
                    self.ix += 1;
                    // Allow a trailing semicolon before '}' or the next
                    // clause keyword.
                    if self.peek() == Some(&Tok::RBrace)
                        || self.peek_kw("subject")
                        || self.peek_kw("target")
                        || self.peek_kw("on")
                    {
                        break;
                    }
                    actions.push(self.action()?);
                }
            } else {
                return Err(self.err("expected 'subject', 'target', 'on', 'do' or '}'"));
            }
        }
        Ok(ObligPolicy {
            name: name.clone(),
            subject: subject.ok_or_else(|| self.err(format!("policy {name} missing 'subject'")))?,
            targets,
            event: event.ok_or_else(|| self.err(format!("policy {name} missing 'on'")))?,
            actions,
        })
    }

    fn path(&mut self) -> Result<PathExpr, PolicyParseError> {
        let mut elided = false;
        let mut segments = Vec::new();
        if self.peek() == Some(&Tok::Ellipsis) {
            self.ix += 1;
            elided = true;
            // Optional '/' right after the elision; the paper writes both
            // `(...)QoSHostManager` and `(...)/QoSHostManager`.
            if self.peek() == Some(&Tok::Slash) {
                self.ix += 1;
            }
        }
        if let Some(Tok::Ident(_)) = self.peek() {
            segments.push(self.ident()?);
            while self.peek() == Some(&Tok::Slash) {
                self.ix += 1;
                segments.push(self.ident()?);
            }
        }
        if !elided && segments.is_empty() {
            return Err(self.err("expected a path"));
        }
        Ok(PathExpr {
            elided_prefix: elided,
            segments,
        })
    }

    fn cond(&mut self) -> Result<CondExpr, PolicyParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<CondExpr, PolicyParseError> {
        let first = self.and_expr()?;
        let mut items = vec![first];
        while self.peek_kw("or") {
            self.ix += 1;
            items.push(self.and_expr()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            CondExpr::Or(items)
        })
    }

    fn and_expr(&mut self) -> Result<CondExpr, PolicyParseError> {
        let first = self.unary()?;
        let mut items = vec![first];
        while self.peek_kw("and") {
            self.ix += 1;
            items.push(self.unary()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            CondExpr::And(items)
        })
    }

    fn unary(&mut self) -> Result<CondExpr, PolicyParseError> {
        if self.peek_kw("not") {
            self.ix += 1;
            return Ok(CondExpr::Not(Box::new(self.unary()?)));
        }
        if self.peek() == Some(&Tok::LParen) {
            self.ix += 1;
            let e = self.cond()?;
            self.eat(&Tok::RParen)?;
            return Ok(e);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<CondExpr, PolicyParseError> {
        let attr = self.ident()?;
        let op = match self.next() {
            Some(Tok::Cmp(op)) => match op {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => unreachable!("lexer only emits known operators"),
            },
            _ => return Err(self.err(format!("expected comparison operator after '{attr}'"))),
        };
        let value = match self.next() {
            Some(Tok::Num(v)) => v,
            _ => return Err(self.err("expected number after comparison operator")),
        };
        let mut tol_plus = None;
        let mut tol_minus = None;
        loop {
            match self.peek() {
                Some(&Tok::TolPlus(v)) => {
                    tol_plus = Some(v);
                    self.ix += 1;
                }
                Some(&Tok::TolMinus(v)) => {
                    tol_minus = Some(v);
                    self.ix += 1;
                }
                _ => break,
            }
        }
        if (tol_plus.is_some() || tol_minus.is_some()) && op != CmpOp::Eq {
            return Err(self.err("tolerances are only valid with '='"));
        }
        Ok(CondExpr::Cmp {
            attr,
            op,
            value,
            tol_plus,
            tol_minus,
        })
    }

    fn action(&mut self) -> Result<ActionStmt, PolicyParseError> {
        let target = self.path()?;
        self.eat(&Tok::Arrow)?;
        let method = self.ident()?;
        self.eat(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.arg()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.ix += 1;
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(ActionStmt {
            target,
            method,
            args,
        })
    }

    fn arg(&mut self) -> Result<ArgExpr, PolicyParseError> {
        if self.peek_kw("out") {
            self.ix += 1;
            return Ok(ArgExpr::Out(self.ident()?));
        }
        match self.next() {
            Some(Tok::Ident(s)) => Ok(ArgExpr::Name(s)),
            Some(Tok::Num(v)) => Ok(ArgExpr::Num(v)),
            Some(Tok::Str(s)) => Ok(ArgExpr::Str(s)),
            _ => Err(self.err("expected an argument")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 1, verbatim.
    pub const EXAMPLE_1: &str = r#"
    oblig NotifyQoSViolation {
      subject (...)/VideoApplication/qosl_coordinator
      target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
      on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
      do fps_sensor->read(out frame_rate);
         jitter_sensor->read(out jitter_rate);
         buffer_sensor->read(out buffer_size);
         (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
    }"#;

    #[test]
    fn parses_paper_example_1() {
        let p = parse_policy(EXAMPLE_1).unwrap();
        assert_eq!(p.name, "NotifyQoSViolation");
        assert_eq!(
            p.subject.to_string(),
            "(...)/VideoApplication/qosl_coordinator"
        );
        assert_eq!(p.targets.len(), 4);
        assert_eq!(p.targets[3].to_string(), "(...)/QoSHostManager");
        // Event: not (frame_rate = 25 +-2 AND jitter < 1.25)
        match &p.event {
            CondExpr::Not(inner) => match inner.as_ref() {
                CondExpr::And(items) => {
                    assert_eq!(items.len(), 2);
                    match &items[0] {
                        CondExpr::Cmp {
                            attr,
                            op,
                            value,
                            tol_plus,
                            tol_minus,
                        } => {
                            assert_eq!(attr, "frame_rate");
                            assert_eq!(*op, CmpOp::Eq);
                            assert_eq!(*value, 25.0);
                            assert_eq!(*tol_plus, Some(2.0));
                            assert_eq!(*tol_minus, Some(2.0));
                        }
                        other => panic!("unexpected: {other:?}"),
                    }
                }
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Not, got {other:?}"),
        }
        assert_eq!(p.actions.len(), 4);
        assert_eq!(p.actions[0].method, "read");
        assert_eq!(p.actions[0].args, vec![ArgExpr::Out("frame_rate".into())]);
        assert_eq!(p.actions[3].method, "notify");
        assert_eq!(p.actions[3].args.len(), 3);
    }

    #[test]
    fn multiple_policies_in_one_file() {
        let src = r#"
        oblig A {
          subject (...)/X/coord
          target s1
          on not (m > 5)
          do s1->read(out m); (...)QoSHostManager->notify(m);
        }
        oblig B {
          subject (...)/Y/coord
          target s2
          on not (n < 3)
          do s2->read(out n);
        }"#;
        let set = parse_policies(src).unwrap();
        assert_eq!(set.policies.len(), 2);
        assert_eq!(set.policies[1].name, "B");
    }

    #[test]
    fn or_and_precedence() {
        let p =
            parse_policy("oblig P { subject a on x < 1 AND y < 2 OR z < 3 do a->f() }").unwrap();
        // AND binds tighter: (x<1 AND y<2) OR (z<3)
        match p.event {
            CondExpr::Or(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], CondExpr::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn nested_parens_and_not() {
        let p = parse_policy("oblig P { subject a on not (not (x = 1)) do a->f() }").unwrap();
        assert!(matches!(p.event, CondExpr::Not(_)));
    }

    #[test]
    fn tolerance_requires_equality() {
        let e = parse_policy("oblig P { subject a on x < 5(+1) do a->f() }").unwrap_err();
        assert!(e.msg.contains("tolerances"));
    }

    #[test]
    fn missing_clauses_reported() {
        let e = parse_policy("oblig P { subject a do a->f() }").unwrap_err();
        assert!(e.msg.contains("missing 'on'"), "{}", e.msg);
        let e = parse_policy("oblig P { on x = 1 do a->f() }").unwrap_err();
        assert!(e.msg.contains("missing 'subject'"), "{}", e.msg);
    }

    #[test]
    fn numeric_and_string_args() {
        let p = parse_policy(r#"oblig P { subject a on x = 1 do a->set(5, "label", x) }"#).unwrap();
        assert_eq!(
            p.actions[0].args,
            vec![
                ArgExpr::Num(5.0),
                ArgExpr::Str("label".into()),
                ArgExpr::Name("x".into())
            ]
        );
    }

    #[test]
    fn garbage_rejected_with_position() {
        let e = parse_policy("oblig P { subject a on x ? 1 do a->f() }");
        assert!(e.is_err());
    }
}
