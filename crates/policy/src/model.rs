//! The information model of Section 6.1: applications, executables,
//! sensors, user roles and policy records, with the many-to-many
//! relationships the paper describes (a sensor may serve several
//! executables; an executable has several sensors; a policy applies to an
//! executable of an application under a user role).

use std::collections::BTreeMap;

/// Identifies a sensor class in the model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SensorId(pub u32);

/// Identifies an executable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExecutableId(pub u32);

/// Identifies an application.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ApplicationId(pub u32);

/// A sensor class: instrumented code collecting values for attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct SensorDef {
    /// Identifier.
    pub id: SensorId,
    /// Sensor name (e.g. `fps_sensor`).
    pub name: String,
    /// Attributes this sensor collects (e.g. `frame_rate`).
    pub attributes: Vec<String>,
}

/// An executable: a program that is instantiated on a host as a process.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutableDef {
    /// Identifier.
    pub id: ExecutableId,
    /// Executable name (e.g. `VideoApplication`).
    pub name: String,
    /// Sensors instrumented into this executable (many-to-many:
    /// the same sensor id may appear in several executables).
    pub sensors: Vec<SensorId>,
}

/// An application: the managed unit, composed of at least one executable.
#[derive(Clone, Debug, PartialEq)]
pub struct ApplicationDef {
    /// Identifier.
    pub id: ApplicationId,
    /// Application name (e.g. `DistanceLearning`).
    pub name: String,
    /// Component executables.
    pub executables: Vec<ExecutableId>,
}

/// A user role; different roles may carry different QoS expectations for
/// the same application ("the requirements of an application depend on
/// the user who has invoked the application").
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserRole(pub String);

impl UserRole {
    /// The catch-all role.
    pub fn any() -> Self {
        UserRole("*".into())
    }

    /// True if this role specification admits `role`.
    pub fn admits(&self, role: &UserRole) -> bool {
        self.0 == "*" || self.0 == role.0
    }
}

/// A policy record: source text plus the scope it applies to.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyRecord {
    /// Unique policy name.
    pub name: String,
    /// Application scope.
    pub application: ApplicationId,
    /// Executable scope.
    pub executable: ExecutableId,
    /// User-role scope (`*` for all users).
    pub role: UserRole,
    /// Policy source in the Section 4 notation.
    pub source: String,
    /// Disabled policies are retained but not distributed.
    pub enabled: bool,
}

/// The model: a consistent collection of definitions, keyed by id.
#[derive(Clone, Debug, Default)]
pub struct InfoModel {
    sensors: BTreeMap<SensorId, SensorDef>,
    executables: BTreeMap<ExecutableId, ExecutableDef>,
    applications: BTreeMap<ApplicationId, ApplicationDef>,
    next_sensor: u32,
    next_exec: u32,
    next_app: u32,
}

impl InfoModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a sensor class.
    pub fn add_sensor(&mut self, name: &str, attributes: &[&str]) -> SensorId {
        let id = SensorId(self.next_sensor);
        self.next_sensor += 1;
        self.sensors.insert(
            id,
            SensorDef {
                id,
                name: name.to_string(),
                attributes: attributes.iter().map(|s| s.to_string()).collect(),
            },
        );
        id
    }

    /// Define an executable with its instrumented sensors.
    pub fn add_executable(&mut self, name: &str, sensors: &[SensorId]) -> ExecutableId {
        for s in sensors {
            assert!(self.sensors.contains_key(s), "unknown sensor {s:?}");
        }
        let id = ExecutableId(self.next_exec);
        self.next_exec += 1;
        self.executables.insert(
            id,
            ExecutableDef {
                id,
                name: name.to_string(),
                sensors: sensors.to_vec(),
            },
        );
        id
    }

    /// Define an application over executables.
    pub fn add_application(&mut self, name: &str, executables: &[ExecutableId]) -> ApplicationId {
        for e in executables {
            assert!(self.executables.contains_key(e), "unknown executable {e:?}");
        }
        let id = ApplicationId(self.next_app);
        self.next_app += 1;
        self.applications.insert(
            id,
            ApplicationDef {
                id,
                name: name.to_string(),
                executables: executables.to_vec(),
            },
        );
        id
    }

    /// Sensor by id.
    pub fn sensor(&self, id: SensorId) -> Option<&SensorDef> {
        self.sensors.get(&id)
    }

    /// Executable by id.
    pub fn executable(&self, id: ExecutableId) -> Option<&ExecutableDef> {
        self.executables.get(&id)
    }

    /// Application by id.
    pub fn application(&self, id: ApplicationId) -> Option<&ApplicationDef> {
        self.applications.get(&id)
    }

    /// Executable by name.
    pub fn executable_by_name(&self, name: &str) -> Option<&ExecutableDef> {
        self.executables.values().find(|e| e.name == name)
    }

    /// Sensor by name.
    pub fn sensor_by_name(&self, name: &str) -> Option<&SensorDef> {
        self.sensors.values().find(|s| s.name == name)
    }

    /// All attributes observable on an executable, via its sensors.
    pub fn executable_attributes(&self, id: ExecutableId) -> Vec<&str> {
        let Some(e) = self.executables.get(&id) else {
            return Vec::new();
        };
        let mut out: Vec<&str> = e
            .sensors
            .iter()
            .filter_map(|s| self.sensors.get(s))
            .flat_map(|s| s.attributes.iter().map(String::as_str))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Sensors of an executable that collect a given attribute.
    pub fn sensors_for_attribute(&self, exec: ExecutableId, attr: &str) -> Vec<&SensorDef> {
        let Some(e) = self.executables.get(&exec) else {
            return Vec::new();
        };
        e.sensors
            .iter()
            .filter_map(|s| self.sensors.get(s))
            .filter(|s| s.attributes.iter().any(|a| a == attr))
            .collect()
    }

    /// Iterate sensors.
    pub fn sensors(&self) -> impl Iterator<Item = &SensorDef> {
        self.sensors.values()
    }

    /// Iterate executables.
    pub fn executables(&self) -> impl Iterator<Item = &ExecutableDef> {
        self.executables.values()
    }

    /// Iterate applications.
    pub fn applications(&self) -> impl Iterator<Item = &ApplicationDef> {
        self.applications.values()
    }
}

/// Build the model for the paper's running example: a video application
/// with fps / jitter / buffer sensors.
pub fn video_example_model() -> (InfoModel, ApplicationId, ExecutableId) {
    let mut m = InfoModel::new();
    let fps = m.add_sensor("fps_sensor", &["frame_rate"]);
    let jitter = m.add_sensor("jitter_sensor", &["jitter_rate"]);
    let buffer = m.add_sensor("buffer_sensor", &["buffer_size"]);
    let exec = m.add_executable("VideoApplication", &[fps, jitter, buffer]);
    let app = m.add_application("VideoPlayback", &[exec]);
    (m, app, exec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_model_shape() {
        let (m, app, exec) = video_example_model();
        assert_eq!(m.application(app).unwrap().executables, vec![exec]);
        assert_eq!(
            m.executable_attributes(exec),
            vec!["buffer_size", "frame_rate", "jitter_rate"]
        );
    }

    #[test]
    fn sensors_shared_between_executables() {
        let mut m = InfoModel::new();
        let cpu = m.add_sensor("cpu_sensor", &["cpu_time"]);
        let a = m.add_executable("A", &[cpu]);
        let b = m.add_executable("B", &[cpu]);
        assert_eq!(m.sensors_for_attribute(a, "cpu_time")[0].id, cpu);
        assert_eq!(m.sensors_for_attribute(b, "cpu_time")[0].id, cpu);
    }

    #[test]
    fn lookup_by_name() {
        let (m, _, _) = video_example_model();
        assert!(m.executable_by_name("VideoApplication").is_some());
        assert!(m.executable_by_name("nope").is_none());
        assert_eq!(
            m.sensor_by_name("fps_sensor").unwrap().attributes,
            vec!["frame_rate"]
        );
    }

    #[test]
    fn roles_admit() {
        assert!(UserRole::any().admits(&UserRole("lecturer".into())));
        assert!(UserRole("lecturer".into()).admits(&UserRole("lecturer".into())));
        assert!(!UserRole("lecturer".into()).admits(&UserRole("student".into())));
    }

    #[test]
    #[should_panic(expected = "unknown sensor")]
    fn dangling_sensor_rejected() {
        let mut m = InfoModel::new();
        m.add_executable("X", &[SensorId(99)]);
    }

    #[test]
    fn attribute_with_no_sensor_yields_empty() {
        let (m, _, exec) = video_example_model();
        assert!(m.sensors_for_attribute(exec, "memory").is_empty());
    }
}
