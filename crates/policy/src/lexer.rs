//! Lexer for the Ponder-style policy notation of Section 4.
//!
//! The notation (from the paper's Example 1):
//!
//! ```text
//! oblig NotifyQoSViolation {
//!   subject (...)/VideoApplication/qosl_coordinator
//!   target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
//!   on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
//!   do fps_sensor->read(out frame_rate);
//!      (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
//! }
//! ```
//!
//! `(...)` is a single token (the elided identifying prefix — hostname,
//! application, etc.), and `N(+a)(-b)` tolerance suffixes are produced as
//! `TolPlus`/`TolMinus` tokens following a number.

use core::fmt;

/// One lexical token, with its byte position for error reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// Byte offset in the source.
    pub pos: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords resolved by the parser,
    /// case-insensitively for `AND`/`OR`/`NOT` as the paper mixes cases).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// Quoted string literal.
    Str(String),
    /// `(...)` — elided path prefix.
    Ellipsis,
    /// `(+N)` tolerance above a target value.
    TolPlus(f64),
    /// `(-N)` tolerance below a target value.
    TolMinus(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `/`
    Slash,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `->`
    Arrow,
    /// Comparison operator: `=`, `!=`, `<`, `<=`, `>`, `>=`.
    Cmp(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Ellipsis => write!(f, "(...)"),
            Tok::TolPlus(n) => write!(f, "(+{n})"),
            Tok::TolMinus(n) => write!(f, "(-{n})"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Slash => write!(f, "/"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Arrow => write!(f, "->"),
            Tok::Cmp(op) => write!(f, "{op}"),
        }
    }
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}
impl std::error::Error for LexError {}

/// Tokenise policy source.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let pos = i;
        match c {
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'#' => {
                // comment to end of line
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                out.push(Token {
                    kind: Tok::LBrace,
                    pos,
                });
                i += 1;
            }
            b'}' => {
                out.push(Token {
                    kind: Tok::RBrace,
                    pos,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: Tok::RParen,
                    pos,
                });
                i += 1;
            }
            b'/' => {
                out.push(Token {
                    kind: Tok::Slash,
                    pos,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: Tok::Comma,
                    pos,
                });
                i += 1;
            }
            b';' => {
                out.push(Token {
                    kind: Tok::Semi,
                    pos,
                });
                i += 1;
            }
            b'(' => {
                // Might be `(...)`, `(+N)`, `(-N)`, or a plain paren.
                if src[i..].starts_with("(...)") {
                    out.push(Token {
                        kind: Tok::Ellipsis,
                        pos,
                    });
                    i += 5;
                } else if i + 1 < b.len() && (b[i + 1] == b'+' || b[i + 1] == b'-') {
                    let sign = b[i + 1];
                    let (n, len) = read_num(src, i + 2).ok_or_else(|| LexError {
                        pos,
                        msg: "expected number in tolerance".into(),
                    })?;
                    let after = i + 2 + len;
                    if after < b.len() && b[after] == b')' {
                        let kind = if sign == b'+' {
                            Tok::TolPlus(n)
                        } else {
                            Tok::TolMinus(n)
                        };
                        out.push(Token { kind, pos });
                        i = after + 1;
                    } else {
                        return Err(LexError {
                            pos,
                            msg: "unterminated tolerance, expected ')'".into(),
                        });
                    }
                } else {
                    out.push(Token {
                        kind: Tok::LParen,
                        pos,
                    });
                    i += 1;
                }
            }
            b'-' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push(Token {
                    kind: Tok::Arrow,
                    pos,
                });
                i += 2;
            }
            b'=' => {
                out.push(Token {
                    kind: Tok::Cmp("="),
                    pos,
                });
                i += 1;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token {
                    kind: Tok::Cmp("!="),
                    pos,
                });
                i += 2;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token {
                        kind: Tok::Cmp("<="),
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: Tok::Cmp("<"),
                        pos,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token {
                        kind: Tok::Cmp(">="),
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: Tok::Cmp(">"),
                        pos,
                    });
                    i += 1;
                }
            }
            b'"' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= b.len() {
                        return Err(LexError {
                            pos,
                            msg: "unterminated string".into(),
                        });
                    }
                    if b[j] == b'"' {
                        break;
                    }
                    s.push(b[j] as char);
                    j += 1;
                }
                out.push(Token {
                    kind: Tok::Str(s),
                    pos,
                });
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let (n, len) = read_num(src, i).ok_or_else(|| LexError {
                    pos,
                    msg: "bad number".into(),
                })?;
                out.push(Token {
                    kind: Tok::Num(n),
                    pos,
                });
                i += len;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: Tok::Ident(src[start..i].to_string()),
                    pos,
                });
            }
            other => {
                return Err(LexError {
                    pos,
                    msg: format!("unexpected character '{}'", other as char),
                });
            }
        }
    }
    Ok(out)
}

/// Read a number starting at byte `at`; returns (value, byte length).
fn read_num(src: &str, at: usize) -> Option<(f64, usize)> {
    let b = src.as_bytes();
    let mut j = at;
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
        j += 1;
    }
    if j == at {
        return None;
    }
    src[at..j].parse::<f64>().ok().map(|n| (n, j - at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn ellipsis_vs_paren() {
        assert_eq!(kinds("(...)"), vec![Tok::Ellipsis]);
        assert_eq!(
            kinds("(a)"),
            vec![Tok::LParen, Tok::Ident("a".into()), Tok::RParen]
        );
    }

    #[test]
    fn tolerance_tokens() {
        assert_eq!(
            kinds("25(+2)(-2)"),
            vec![Tok::Num(25.0), Tok::TolPlus(2.0), Tok::TolMinus(2.0)]
        );
        assert_eq!(kinds("1.25(+0.5)"), vec![Tok::Num(1.25), Tok::TolPlus(0.5)]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != < <= > >= ->"),
            vec![
                Tok::Cmp("="),
                Tok::Cmp("!="),
                Tok::Cmp("<"),
                Tok::Cmp("<="),
                Tok::Cmp(">"),
                Tok::Cmp(">="),
                Tok::Arrow,
            ]
        );
    }

    #[test]
    fn paths_and_idents() {
        assert_eq!(
            kinds("(...)/VideoApplication/qosl_coordinator"),
            vec![
                Tok::Ellipsis,
                Tok::Slash,
                Tok::Ident("VideoApplication".into()),
                Tok::Slash,
                Tok::Ident("qosl_coordinator".into()),
            ]
        );
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            kinds("a # comment\nb // another\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn example1_lexes_fully() {
        let src = r#"
        oblig NotifyQoSViolation {
          subject (...)/VideoApplication/qosl_coordinator
          target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
          on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
          do fps_sensor->read(out frame_rate);
             jitter_sensor->read(out jitter_rate);
             buffer_sensor->read(out buffer_size);
             (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
        }"#;
        let toks = lex(src).unwrap();
        assert!(toks.len() > 40);
        assert!(toks.iter().any(|t| t.kind == Tok::TolPlus(2.0)));
        assert!(toks.iter().any(|t| t.kind == Tok::TolMinus(2.0)));
        assert_eq!(toks.iter().filter(|t| t.kind == Tok::Arrow).count(), 4);
    }

    #[test]
    fn errors_positioned() {
        let e = lex("abc $").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(lex("\"open").is_err());
        assert!(lex("(+x)").is_err());
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds("\"hello world\""),
            vec![Tok::Str("hello world".into())]
        );
    }
}
