//! Integrity checking of policies against the information model — the
//! checks the paper's management application performs before a policy is
//! uploaded (Section 7): the target executable must have sensors for every
//! attribute the policy constrains; actions must be sensor method
//! invocations or a QoS Host Manager notification; and notifications must
//! carry sensor-derived data (non-empty).

use crate::ast::{ArgExpr, ObligPolicy};
use crate::compile::{compile, CompileError};
use crate::model::{ExecutableId, InfoModel};
use core::fmt;

/// One integrity problem found in a policy.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A condition references an attribute no sensor of the executable
    /// collects.
    UnmonitoredAttribute {
        /// Attribute name.
        attr: String,
    },
    /// An action invokes something that is neither a sensor of the
    /// executable nor the QoS Host Manager.
    UnknownActionTarget {
        /// The offending target.
        target: String,
    },
    /// A sensor action uses a method other than the sensor interface
    /// (`read`, `enable`, `disable`, `set_threshold`, `set_interval`).
    BadSensorMethod {
        /// Sensor name.
        sensor: String,
        /// Offending method.
        method: String,
    },
    /// A `notify` to the QoS Host Manager carries no arguments.
    EmptyNotification,
    /// A `notify` argument is not derived from a sensor read (`out`
    /// binding) or sensor-collected attribute.
    NotifyArgNotSensorData {
        /// The offending argument.
        arg: String,
    },
    /// The policy does not compile to the coordinator form.
    Uncompilable {
        /// Compiler message.
        msg: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnmonitoredAttribute { attr } => {
                write!(f, "no sensor collects attribute '{attr}'")
            }
            Violation::UnknownActionTarget { target } => {
                write!(
                    f,
                    "action target '{target}' is neither a sensor nor the QoSHostManager"
                )
            }
            Violation::BadSensorMethod { sensor, method } => {
                write!(f, "sensor '{sensor}' has no method '{method}'")
            }
            Violation::EmptyNotification => {
                write!(f, "notification to QoSHostManager carries no data")
            }
            Violation::NotifyArgNotSensorData { arg } => {
                write!(f, "notify argument '{arg}' is not sensor-derived data")
            }
            Violation::Uncompilable { msg } => write!(f, "{msg}"),
        }
    }
}

/// Methods the sensor interface exposes (Section 5.1: enable/disable,
/// reporting-interval and threshold adjustment, plus `read`).
pub const SENSOR_METHODS: &[&str] = &["read", "enable", "disable", "set_threshold", "set_interval"];

/// The manager component name recognised in action targets.
pub const HOST_MANAGER: &str = "QoSHostManager";

/// Check a policy against the executable it is to be attached to.
/// Returns all problems found (empty = valid).
pub fn check_policy(model: &InfoModel, exec: ExecutableId, policy: &ObligPolicy) -> Vec<Violation> {
    let mut out = Vec::new();
    let compiled = match compile(policy) {
        Ok(c) => c,
        Err(CompileError(msg)) => {
            out.push(Violation::Uncompilable { msg });
            return out;
        }
    };

    // 1. Every constrained attribute must be monitorable.
    for attr in compiled.attributes() {
        if model.sensors_for_attribute(exec, attr).is_empty() {
            out.push(Violation::UnmonitoredAttribute {
                attr: attr.to_string(),
            });
        }
    }

    // Attributes available on the executable, for notify-arg checking.
    let exec_attrs = model.executable_attributes(exec);

    // 2/3. Actions: sensor method invocations or host-manager notify with
    // sensor-derived, non-empty payload.
    for action in &policy.actions {
        let leaf = action.target.leaf().unwrap_or("");
        if leaf == HOST_MANAGER {
            if action.args.is_empty() {
                out.push(Violation::EmptyNotification);
            }
            for arg in &action.args {
                match arg {
                    ArgExpr::Name(n) | ArgExpr::Out(n) => {
                        // Must be an attribute some sensor collects, or a
                        // value bound by a preceding sensor read.
                        let bound_by_read = policy.actions.iter().any(|a| {
                            a.method == "read"
                                && a.args
                                    .iter()
                                    .any(|ar| matches!(ar, ArgExpr::Out(o) if o == n))
                        });
                        if !bound_by_read && !exec_attrs.contains(&n.as_str()) {
                            out.push(Violation::NotifyArgNotSensorData { arg: n.clone() });
                        }
                    }
                    ArgExpr::Num(_) | ArgExpr::Str(_) => {
                        // Constants are allowed alongside sensor data.
                    }
                }
            }
        } else if let Some(sensor) = model.sensor_by_name(leaf) {
            // Must actually be instrumented into this executable.
            let on_exec = model
                .executable(exec)
                .is_some_and(|e| e.sensors.contains(&sensor.id));
            if !on_exec {
                out.push(Violation::UnknownActionTarget {
                    target: leaf.to_string(),
                });
            } else if !SENSOR_METHODS.contains(&action.method.as_str()) {
                out.push(Violation::BadSensorMethod {
                    sensor: leaf.to_string(),
                    method: action.method.clone(),
                });
            }
        } else {
            out.push(Violation::UnknownActionTarget {
                target: leaf.to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::video_example_model;
    use crate::parser::parse_policy;

    const GOOD: &str = r#"
    oblig NotifyQoSViolation {
      subject (...)/VideoApplication/qosl_coordinator
      target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
      on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
      do fps_sensor->read(out frame_rate);
         jitter_sensor->read(out jitter_rate);
         buffer_sensor->read(out buffer_size);
         (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
    }"#;

    #[test]
    fn paper_example_passes_all_checks() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(GOOD).unwrap();
        assert_eq!(check_policy(&m, exec, &p), Vec::new());
    }

    #[test]
    fn unmonitored_attribute_flagged() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (colour_depth > 8) do fps_sensor->read(out frame_rate) }",
        )
        .unwrap();
        let v = check_policy(&m, exec, &p);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::UnmonitoredAttribute { attr } if attr == "colour_depth"
        )));
    }

    #[test]
    fn unknown_target_flagged() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (frame_rate > 20) do mystery_thing->read(out x) }",
        )
        .unwrap();
        let v = check_policy(&m, exec, &p);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::UnknownActionTarget { target } if target == "mystery_thing"
        )));
    }

    #[test]
    fn bad_sensor_method_flagged() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (frame_rate > 20) do fps_sensor->launch_missiles() }",
        )
        .unwrap();
        let v = check_policy(&m, exec, &p);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::BadSensorMethod { .. })));
    }

    #[test]
    fn empty_notification_flagged() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (frame_rate > 20) do (...)QoSHostManager->notify() }",
        )
        .unwrap();
        let v = check_policy(&m, exec, &p);
        assert!(v.contains(&Violation::EmptyNotification));
    }

    #[test]
    fn notify_of_non_sensor_data_flagged() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (frame_rate > 20) \
             do (...)QoSHostManager->notify(wild_guess) }",
        )
        .unwrap();
        let v = check_policy(&m, exec, &p);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::NotifyArgNotSensorData { arg } if arg == "wild_guess"
        )));
    }

    #[test]
    fn notify_of_read_binding_allowed() {
        // buffer_size is bound by a read even though it also happens to be
        // a sensor attribute; both paths must be accepted.
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (frame_rate > 20) \
             do buffer_sensor->read(out buffer_size); \
                (...)QoSHostManager->notify(buffer_size); }",
        )
        .unwrap();
        assert_eq!(check_policy(&m, exec, &p), Vec::new());
    }

    #[test]
    fn sensor_control_methods_allowed() {
        let (m, _, exec) = video_example_model();
        let p = parse_policy(
            "oblig P { subject s on not (frame_rate > 20) \
             do fps_sensor->set_threshold(30); jitter_sensor->disable(); }",
        )
        .unwrap();
        assert_eq!(check_policy(&m, exec, &p), Vec::new());
    }
}
