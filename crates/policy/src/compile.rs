//! Compilation of obligation policies into the coordinator's run-time
//! form (Section 5.2 / Example 3): a *condition list* — each entry an
//! `(attribute, comparison operator, value)` triple monitored by a sensor
//! — plus a boolean expression over generated condition variables. The
//! requirement holds while the expression is true; the policy is violated
//! when it evaluates to false.
//!
//! Example 1's event `not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)`
//! compiles to conditions `x1: frame_rate > 23`, `x2: frame_rate < 27`,
//! `x3: jitter_rate < 1.25` and the expression `x1 AND x2 AND x3`,
//! exactly as the paper's Example 3 describes.

use crate::ast::{ActionStmt, CmpOp, CondExpr, ObligPolicy, PathExpr};
use core::fmt;

/// One monitorable condition: `attr op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCondition {
    /// Attribute monitored by a sensor.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Threshold.
    pub value: f64,
}

impl CompiledCondition {
    /// Evaluate against a sampled attribute value.
    pub fn holds(&self, sample: f64) -> bool {
        match self.op {
            CmpOp::Eq => sample == self.value,
            CmpOp::Ne => sample != self.value,
            CmpOp::Lt => sample < self.value,
            CmpOp::Le => sample <= self.value,
            CmpOp::Gt => sample > self.value,
            CmpOp::Ge => sample >= self.value,
        }
    }
}

impl fmt::Display for CompiledCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// Boolean expression over condition-variable indices.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// The `i`-th condition variable.
    Var(usize),
    /// Conjunction.
    And(Vec<BoolExpr>),
    /// Disjunction.
    Or(Vec<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Evaluate given per-condition truth values.
    pub fn eval(&self, vars: &[bool]) -> bool {
        match self {
            BoolExpr::Var(i) => vars.get(*i).copied().unwrap_or(false),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(vars)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(vars)),
            BoolExpr::Not(e) => !e.eval(vars),
        }
    }
}

/// A policy in the coordinator's run-time form.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPolicy {
    /// Policy name.
    pub name: String,
    /// Responsible subject.
    pub subject: PathExpr,
    /// Invocation targets.
    pub targets: Vec<PathExpr>,
    /// Condition list; one variable is generated per entry.
    pub conditions: Vec<CompiledCondition>,
    /// The *requirement* expression over condition variables: true while
    /// the QoS requirement is satisfied.
    pub requirement: BoolExpr,
    /// Actions to run on violation.
    pub actions: Vec<ActionStmt>,
}

impl CompiledPolicy {
    /// True when the given condition truth assignment violates the policy.
    pub fn violated(&self, vars: &[bool]) -> bool {
        !self.requirement.eval(vars)
    }

    /// Indices of conditions over the given attribute.
    pub fn conditions_on<'a>(&'a self, attr: &'a str) -> impl Iterator<Item = usize> + 'a {
        self.conditions
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.attr == attr)
            .map(|(i, _)| i)
    }

    /// All distinct attributes this policy monitors.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.conditions.iter().map(|c| c.attr.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy compile error: {}", self.0)
    }
}
impl std::error::Error for CompileError {}

/// Compile a parsed policy.
///
/// By Section 3.2's convention the `on` event is the negation of the QoS
/// requirement, so the requirement is recovered by stripping a top-level
/// `not` (or negating the event if none is present).
pub fn compile(policy: &ObligPolicy) -> Result<CompiledPolicy, CompileError> {
    let requirement_ast = match &policy.event {
        CondExpr::Not(inner) => (**inner).clone(),
        other => CondExpr::Not(Box::new(other.clone())),
    };
    let mut conditions: Vec<CompiledCondition> = Vec::new();
    let requirement = lower(&requirement_ast, &mut conditions, &policy.name)?;
    Ok(CompiledPolicy {
        name: policy.name.clone(),
        subject: policy.subject.clone(),
        targets: policy.targets.clone(),
        conditions,
        requirement,
        actions: policy.actions.clone(),
    })
}

/// Intern a condition, reusing an existing variable for identical triples
/// (conditions are reusable across the expression, mirroring the
/// information model's reusable policy conditions).
fn intern(conditions: &mut Vec<CompiledCondition>, c: CompiledCondition) -> usize {
    if let Some(ix) = conditions.iter().position(|e| *e == c) {
        ix
    } else {
        conditions.push(c);
        conditions.len() - 1
    }
}

fn lower(
    e: &CondExpr,
    conditions: &mut Vec<CompiledCondition>,
    policy: &str,
) -> Result<BoolExpr, CompileError> {
    match e {
        CondExpr::Not(inner) => Ok(BoolExpr::Not(Box::new(lower(inner, conditions, policy)?))),
        CondExpr::And(items) => Ok(BoolExpr::And(
            items
                .iter()
                .map(|i| lower(i, conditions, policy))
                .collect::<Result<_, _>>()?,
        )),
        CondExpr::Or(items) => Ok(BoolExpr::Or(
            items
                .iter()
                .map(|i| lower(i, conditions, policy))
                .collect::<Result<_, _>>()?,
        )),
        CondExpr::Cmp {
            attr,
            op,
            value,
            tol_plus,
            tol_minus,
        } => {
            match (op, tol_plus, tol_minus) {
                // `attr = v(+a)(-b)` expands to the open interval
                // (v-b, v+a), per Example 3 ("frame_rate > 23 and
                // frame_rate < 27").
                (CmpOp::Eq, Some(p), Some(m)) => {
                    let lo = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: CmpOp::Gt,
                            value: value - m,
                        },
                    );
                    let hi = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: CmpOp::Lt,
                            value: value + p,
                        },
                    );
                    Ok(BoolExpr::And(vec![BoolExpr::Var(lo), BoolExpr::Var(hi)]))
                }
                (CmpOp::Eq, Some(p), None) => {
                    let lo = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: CmpOp::Ge,
                            value: *value,
                        },
                    );
                    let hi = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: CmpOp::Lt,
                            value: value + p,
                        },
                    );
                    Ok(BoolExpr::And(vec![BoolExpr::Var(lo), BoolExpr::Var(hi)]))
                }
                (CmpOp::Eq, None, Some(m)) => {
                    let lo = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: CmpOp::Gt,
                            value: value - m,
                        },
                    );
                    let hi = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: CmpOp::Le,
                            value: *value,
                        },
                    );
                    Ok(BoolExpr::And(vec![BoolExpr::Var(lo), BoolExpr::Var(hi)]))
                }
                (_, Some(_), _) | (_, _, Some(_)) => Err(CompileError(format!(
                    "policy {policy}: tolerance on non-equality comparison of '{attr}'"
                ))),
                (op, None, None) => {
                    let ix = intern(
                        conditions,
                        CompiledCondition {
                            attr: attr.clone(),
                            op: *op,
                            value: *value,
                        },
                    );
                    Ok(BoolExpr::Var(ix))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_policy;

    const EXAMPLE_1: &str = r#"
    oblig NotifyQoSViolation {
      subject (...)/VideoApplication/qosl_coordinator
      target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager
      on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25)
      do fps_sensor->read(out frame_rate);
         jitter_sensor->read(out jitter_rate);
         buffer_sensor->read(out buffer_size);
         (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
    }"#;

    fn example1() -> CompiledPolicy {
        compile(&parse_policy(EXAMPLE_1).unwrap()).unwrap()
    }

    #[test]
    fn example_3_condition_list() {
        // The paper's Example 3: three conditions, x1 AND x2 AND x3.
        let c = example1();
        assert_eq!(c.conditions.len(), 3);
        assert_eq!(
            c.conditions[0],
            CompiledCondition {
                attr: "frame_rate".into(),
                op: CmpOp::Gt,
                value: 23.0
            }
        );
        assert_eq!(
            c.conditions[1],
            CompiledCondition {
                attr: "frame_rate".into(),
                op: CmpOp::Lt,
                value: 27.0
            }
        );
        assert_eq!(
            c.conditions[2],
            CompiledCondition {
                attr: "jitter_rate".into(),
                op: CmpOp::Lt,
                value: 1.25
            }
        );
        // Requirement true iff all three hold.
        assert!(!c.violated(&[true, true, true]));
        assert!(c.violated(&[false, true, true]));
        assert!(c.violated(&[true, true, false]));
    }

    #[test]
    fn attributes_listed() {
        let c = example1();
        assert_eq!(c.attributes(), vec!["frame_rate", "jitter_rate"]);
        assert_eq!(
            c.conditions_on("frame_rate").collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn condition_holds_semantics() {
        let c = example1();
        assert!(c.conditions[0].holds(24.0));
        assert!(!c.conditions[0].holds(23.0), "strict bound");
        assert!(c.conditions[1].holds(26.9));
        assert!(!c.conditions[1].holds(27.0));
    }

    #[test]
    fn identical_conditions_interned() {
        let p = parse_policy("oblig P { subject s on not (x > 5 AND x > 5 AND y < 1) do s->f() }")
            .unwrap();
        let c = compile(&p).unwrap();
        assert_eq!(c.conditions.len(), 2, "duplicate condition reused");
    }

    #[test]
    fn event_without_not_is_negated() {
        // If the author wrote the violation directly, the requirement is
        // its negation.
        let p = parse_policy("oblig P { subject s on x > 100 do s->f() }").unwrap();
        let c = compile(&p).unwrap();
        // Violation when x > 100 holds.
        assert!(c.violated(&[true]));
        assert!(!c.violated(&[false]));
    }

    #[test]
    fn one_sided_tolerances() {
        let p = parse_policy("oblig P { subject s on not (x = 10(+3)) do s->f() }").unwrap();
        let c = compile(&p).unwrap();
        assert_eq!(c.conditions.len(), 2);
        assert_eq!(c.conditions[0].op, CmpOp::Ge);
        assert_eq!(c.conditions[0].value, 10.0);
        assert_eq!(c.conditions[1].op, CmpOp::Lt);
        assert_eq!(c.conditions[1].value, 13.0);
    }

    #[test]
    fn disjunctive_requirement() {
        let p = parse_policy("oblig P { subject s on not (x < 5 OR y < 5) do s->f() }").unwrap();
        let c = compile(&p).unwrap();
        assert!(!c.violated(&[true, false]));
        assert!(!c.violated(&[false, true]));
        assert!(c.violated(&[false, false]));
    }
}
