//! The host manager's side of the discovery protocol, as a pure state
//! machine.
//!
//! [`DiscClient`] owns no transport and no clock: the embedding code
//! (the simulated host manager, the socket host manager, or the
//! explicit-state model checker in `tests/model_check.rs`) feeds it
//! [`DiscEvent`]s and executes the returned [`DiscAction`]s. Because
//! production and model share this exact type, the model checker
//! verifies the code that actually runs — conformance by construction.
//!
//! Protocol from the client's view:
//!
//! 1. `Kick` — bump the epoch, send `DiscAnnounce`, arm a retry timer.
//! 2. Retries re-announce (same epoch) until an assignment arrives.
//! 3. `Assign` with the *current* epoch binds the host to its domain
//!    manager and arms lease renewal at half the lease period. Stale
//!    epochs are discarded: they are echoes of an abandoned discovery
//!    round and may name a dead manager.
//! 4. Each `RenewDue` sends a renewal; each `Ack` (current epoch)
//!    clears the miss counter. More than [`MAX_RENEW_MISSES`]
//!    consecutive unacked renewals means the lease is lost — unbind
//!    and re-enter discovery with a fresh epoch.

use qos_sim::{DomainId, Dur, Endpoint, HostId};
use qos_wire::messages::{DiscAnnounceMsg, DiscAssignMsg, DiscLeaseAckMsg, DiscLeaseRenewMsg};

/// Consecutive unacknowledged renewals tolerated before the client
/// declares its domain manager lost and re-discovers.
pub const MAX_RENEW_MISSES: u8 = 3;

/// Deliberate protocol bugs, switchable so the model checker can prove
/// its invariants have teeth: enabling one must produce a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DiscBugs {
    /// Accept an assignment from a stale epoch (breaks the
    /// no-double-assignment safety argument: the host may bind to a
    /// manager the server no longer records for it).
    pub accept_stale_assign: bool,
    /// Fail to re-arm the retry timer while unassigned (breaks the
    /// no-host-unassigned liveness argument: one lost announce wedges
    /// the host outside the federation forever).
    pub forget_retry: bool,
}

/// Where the client is in the discovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscPhase {
    /// Not part of any domain and not currently asking.
    Unbound,
    /// Announce sent, waiting for an assignment.
    Announced,
    /// Assigned to a domain; renewing the lease.
    Bound {
        /// The shard this host belongs to.
        domain: DomainId,
        /// The domain manager's control endpoint.
        manager: Endpoint,
        /// Granted lease (renew at half this).
        lease: Dur,
    },
}

/// Input to one step of the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscEvent {
    /// Start (or restart) discovery.
    Kick,
    /// The announce-retry timer fired.
    RetryDue,
    /// The lease-renewal timer fired.
    RenewDue,
    /// An assignment arrived from the discovery server.
    Assign(DiscAssignMsg),
    /// A lease acknowledgement arrived.
    Ack(DiscLeaseAckMsg),
}

/// Side effect the embedding transport must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscAction {
    /// Send this announce to the discovery server.
    Announce(DiscAnnounceMsg),
    /// Send this lease renewal to the discovery server.
    Renew(DiscLeaseRenewMsg),
    /// Start treating this endpoint as the domain manager (register,
    /// report alerts there).
    Bind {
        /// Assigned shard.
        domain: DomainId,
        /// Domain manager endpoint.
        manager: Endpoint,
    },
    /// Stop using the previous domain manager (it is presumed lost).
    Unbind,
    /// Arm the announce-retry timer (backoff chosen by the embedder).
    ScheduleRetry,
    /// Arm the lease-renewal timer for this delay.
    ScheduleRenew(Dur),
}

/// Pure discovery state machine for one host manager.
///
/// `Copy + Eq + Hash` so the model checker can put it straight into an
/// explored-state set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiscClient {
    /// The host this manager runs on.
    pub host: HostId,
    /// This host manager's own control endpoint (put into announces so
    /// the server knows where assignments and acks go).
    pub manager: Endpoint,
    /// Protocol phase.
    pub phase: DiscPhase,
    /// Current discovery epoch; bumped on every `Kick` so stale
    /// assignments are recognizable.
    pub epoch: u64,
    /// Consecutive renewals without an ack.
    pub misses: u8,
    /// Times the client lost its manager and re-entered discovery.
    pub rediscoveries: u64,
    /// Deliberate bugs (all off in production).
    pub bugs: DiscBugs,
}

impl DiscClient {
    /// A fresh, unbound client for the given host.
    pub fn new(host: HostId, manager: Endpoint) -> Self {
        DiscClient {
            host,
            manager,
            phase: DiscPhase::Unbound,
            epoch: 0,
            misses: 0,
            rediscoveries: 0,
            bugs: DiscBugs::default(),
        }
    }

    /// Whether the client currently holds a binding.
    pub fn bound(&self) -> Option<(DomainId, Endpoint)> {
        match self.phase {
            DiscPhase::Bound {
                domain, manager, ..
            } => Some((domain, manager)),
            _ => None,
        }
    }

    /// Advance the machine by one event; the caller must execute every
    /// returned action (in order).
    pub fn step(&mut self, ev: DiscEvent) -> Vec<DiscAction> {
        match ev {
            DiscEvent::Kick => self.start_round(),
            DiscEvent::RetryDue => match self.phase {
                DiscPhase::Announced | DiscPhase::Unbound => {
                    if self.bugs.forget_retry {
                        // Bug: give up after one try.
                        return Vec::new();
                    }
                    self.phase = DiscPhase::Announced;
                    vec![
                        DiscAction::Announce(self.announce()),
                        DiscAction::ScheduleRetry,
                    ]
                }
                // A late retry timer after binding is a no-op.
                DiscPhase::Bound { .. } => Vec::new(),
            },
            DiscEvent::Assign(a) => {
                if a.host != self.host {
                    return Vec::new();
                }
                if a.epoch != self.epoch && !self.bugs.accept_stale_assign {
                    // Echo of an abandoned round; the manager it names
                    // may be the one we just declared dead.
                    return Vec::new();
                }
                let rebind =
                    matches!(self.phase, DiscPhase::Bound { manager, .. } if manager != a.manager);
                self.phase = DiscPhase::Bound {
                    domain: a.domain,
                    manager: a.manager,
                    lease: a.lease,
                };
                self.misses = 0;
                let mut acts = Vec::new();
                if rebind {
                    acts.push(DiscAction::Unbind);
                }
                acts.push(DiscAction::Bind {
                    domain: a.domain,
                    manager: a.manager,
                });
                acts.push(DiscAction::ScheduleRenew(half(a.lease)));
                acts
            }
            DiscEvent::RenewDue => {
                let DiscPhase::Bound { domain, lease, .. } = self.phase else {
                    return Vec::new();
                };
                if self.misses >= MAX_RENEW_MISSES {
                    // Lease lost: the domain manager (or the discovery
                    // server) stopped answering. Re-discover.
                    self.rediscoveries += 1;
                    let mut acts = vec![DiscAction::Unbind];
                    acts.extend(self.start_round());
                    return acts;
                }
                self.misses += 1;
                vec![
                    DiscAction::Renew(DiscLeaseRenewMsg {
                        host: self.host,
                        domain,
                        epoch: self.epoch,
                    }),
                    DiscAction::ScheduleRenew(half(lease)),
                ]
            }
            DiscEvent::Ack(k) => {
                if k.host == self.host
                    && k.epoch == self.epoch
                    && matches!(self.phase, DiscPhase::Bound { .. })
                {
                    self.misses = 0;
                }
                Vec::new()
            }
        }
    }

    fn start_round(&mut self) -> Vec<DiscAction> {
        self.epoch += 1;
        self.misses = 0;
        self.phase = DiscPhase::Announced;
        vec![
            DiscAction::Announce(self.announce()),
            DiscAction::ScheduleRetry,
        ]
    }

    fn announce(&self) -> DiscAnnounceMsg {
        DiscAnnounceMsg {
            host: self.host,
            manager: self.manager,
            epoch: self.epoch,
        }
    }
}

fn half(d: Dur) -> Dur {
    Dur::from_micros(d.as_micros() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> DiscClient {
        DiscClient::new(HostId(3), Endpoint::new(HostId(3), 10))
    }

    fn assign(epoch: u64, domain: u32, dm_host: u32) -> DiscAssignMsg {
        DiscAssignMsg {
            host: HostId(3),
            epoch,
            domain: DomainId(domain),
            manager: Endpoint::new(HostId(dm_host), 11),
            lease: Dur::from_secs(4),
        }
    }

    #[test]
    fn happy_path_binds_and_renews() {
        let mut c = client();
        let acts = c.step(DiscEvent::Kick);
        assert!(matches!(acts[0], DiscAction::Announce(a) if a.epoch == 1));
        assert!(matches!(acts[1], DiscAction::ScheduleRetry));
        let acts = c.step(DiscEvent::Assign(assign(1, 2, 9)));
        assert!(matches!(
            acts[0],
            DiscAction::Bind {
                domain: DomainId(2),
                ..
            }
        ));
        assert_eq!(c.bound().unwrap().0, DomainId(2));
        let acts = c.step(DiscEvent::RenewDue);
        assert!(matches!(acts[0], DiscAction::Renew(r) if r.epoch == 1));
        c.step(DiscEvent::Ack(DiscLeaseAckMsg {
            host: HostId(3),
            epoch: 1,
            lease: Dur::from_secs(4),
        }));
        assert_eq!(c.misses, 0);
    }

    #[test]
    fn stale_assign_is_discarded() {
        let mut c = client();
        c.step(DiscEvent::Kick); // epoch 1
        for _ in 0..=MAX_RENEW_MISSES {
            // Not bound yet — retries only.
            c.step(DiscEvent::RetryDue);
        }
        c.step(DiscEvent::Assign(assign(1, 2, 9)));
        // Manager dies: renewals go unacked until the client gives up.
        let mut rounds = 0;
        while c.bound().is_some() {
            c.step(DiscEvent::RenewDue);
            rounds += 1;
            assert!(rounds < 10, "client re-discovers after missed acks");
        }
        assert_eq!(c.epoch, 2);
        assert_eq!(c.rediscoveries, 1);
        // The stale epoch-1 assignment arrives late: it must not rebind
        // the client to the dead manager.
        let acts = c.step(DiscEvent::Assign(assign(1, 2, 9)));
        assert!(acts.is_empty());
        assert!(c.bound().is_none());
        // The current-round assignment does bind.
        let acts = c.step(DiscEvent::Assign(assign(2, 4, 12)));
        assert!(matches!(acts[0], DiscAction::Bind { .. }));
    }

    #[test]
    fn rebind_to_new_manager_unbinds_first() {
        let mut c = client();
        c.step(DiscEvent::Kick);
        c.step(DiscEvent::Assign(assign(1, 2, 9)));
        // Same epoch, different manager (server-side remap after an
        // expiry): the client follows the server's word.
        let acts = c.step(DiscEvent::Assign(assign(1, 5, 13)));
        assert!(matches!(acts[0], DiscAction::Unbind));
        assert!(matches!(
            acts[1],
            DiscAction::Bind {
                domain: DomainId(5),
                ..
            }
        ));
    }

    #[test]
    fn buggy_client_accepts_stale_assign() {
        let mut c = client();
        c.bugs.accept_stale_assign = true;
        c.step(DiscEvent::Kick); // epoch 1
        c.step(DiscEvent::Kick); // epoch 2
        let acts = c.step(DiscEvent::Assign(assign(1, 2, 9)));
        assert!(
            acts.iter().any(|a| matches!(a, DiscAction::Bind { .. })),
            "seeded bug binds on a stale epoch"
        );
    }
}
