//! The Discovery Server as an OS process: a Unix-domain-socket daemon
//! around the same [`DiscoveryCore`] the simulated server uses.
//!
//! Domain managers and host managers connect, speak the framed wire
//! protocol (`DiscDomainRegister`, `DiscAnnounce`, `DiscLeaseRenew`),
//! and receive their replies — assignments, lease acks and route
//! pushes — on the same connection. The daemon maps logical reply
//! destinations ([`DiscDest`]) to live connections: a host's connection
//! is the one its announce arrived on, a domain's the one it registered
//! on. Buggify delays are not honoured here (chaos belongs to the
//! simulator); a delayed reply is sent immediately.
//!
//! This is deliberately small — it exists so the CI `federation` job
//! can smoke the discovery plane across real process boundaries, not to
//! be a production server.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qos_sim::{DomainId, Dur, HostId};
use qos_wire::{FrameBuffer, WireMsg};

use crate::core::{DiscDest, DiscReply, DiscoveryCore};

/// Write one framed message to a stream.
pub fn write_frame(stream: &mut UnixStream, msg: &WireMsg) -> std::io::Result<()> {
    stream.write_all(&msg.encode_frame())
}

/// Read until the buffer yields one complete frame or the deadline
/// passes. `Ok(None)` on timeout; decode errors surface as `Err`.
pub fn read_frame(
    stream: &mut UnixStream,
    buf: &mut FrameBuffer,
    timeout: Duration,
) -> std::io::Result<Option<WireMsg>> {
    let deadline = Instant::now() + timeout;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    loop {
        match buf.next() {
            Ok(Some(msg)) => return Ok(Some(msg)),
            Ok(None) => {}
            Err(e) => return Err(std::io::Error::other(format!("corrupt stream: {e}"))),
        }
        if Instant::now() >= deadline {
            return Ok(None);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
}

struct DaemonState {
    core: DiscoveryCore,
    /// Write halves, keyed by what the peer identified itself as.
    domain_conns: HashMap<DomainId, UnixStream>,
    host_conns: HashMap<HostId, UnixStream>,
}

impl DaemonState {
    fn dispatch(&mut self, replies: Vec<DiscReply>) {
        for r in replies {
            let stream = match r.dest {
                DiscDest::Host(h) => self.host_conns.get_mut(&h),
                DiscDest::Domain(d) => self.domain_conns.get_mut(&d),
            };
            if let Some(s) = stream {
                // A write error means the peer hung up; the reaper is
                // its lease expiry, not this send.
                let _ = write_frame(s, &r.msg);
            }
        }
    }
}

/// A running discovery daemon; dropping it (or calling
/// [`DiscoveryDaemon::shutdown`]) stops the threads and removes the
/// socket file.
pub struct DiscoveryDaemon {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl DiscoveryDaemon {
    /// Bind `path` and serve discovery with the given lease. A stale
    /// socket file from a crashed previous run is removed first.
    pub fn bind(path: &Path, lease: Dur) -> std::io::Result<DiscoveryDaemon> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(DaemonState {
            core: DiscoveryCore::new(lease),
            domain_conns: HashMap::new(),
            host_conns: HashMap::new(),
        }));
        let start = Instant::now();

        let mut threads = Vec::new();
        {
            // Lease sweeper.
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let period = Duration::from_micros((lease.as_micros() / 2).max(1));
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period.min(Duration::from_millis(100)));
                    let mut st = state.lock().unwrap();
                    let now = start.elapsed().as_micros() as u64;
                    let replies = st.core.sweep(now);
                    st.dispatch(replies);
                }
            }));
        }
        {
            // Acceptor: non-blocking accept loop so shutdown never
            // hangs; each connection gets its own reader thread.
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut readers = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((conn, _)) => {
                            let state = Arc::clone(&state);
                            let stop = Arc::clone(&stop);
                            readers.push(std::thread::spawn(move || {
                                serve_conn(conn, state, stop, start);
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
                for r in readers {
                    let _ = r.join();
                }
            }));
        }
        Ok(DiscoveryDaemon {
            path: path.to_path_buf(),
            stop,
            threads,
        })
    }

    /// Stop serving and remove the socket file. Idempotent with `Drop`.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for DiscoveryDaemon {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn serve_conn(
    mut conn: UnixStream,
    state: Arc<Mutex<DaemonState>>,
    stop: Arc<AtomicBool>,
    start: Instant,
) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    while !stop.load(Ordering::Relaxed) {
        match conn.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            let msg = match buf.next() {
                Ok(Some(m)) => m,
                Ok(None) => break,
                // Unsynchronisable stream: drop the connection.
                Err(_) => return,
            };
            let now = start.elapsed().as_micros() as u64;
            let mut st = state.lock().unwrap();
            let replies = match msg {
                WireMsg::DiscAnnounce(a) => {
                    if let Ok(c) = conn.try_clone() {
                        st.host_conns.insert(a.host, c);
                    }
                    st.core.on_announce(now, a)
                }
                WireMsg::DiscLeaseRenew(rn) => st.core.on_renew(now, rn),
                WireMsg::DiscDomainRegister(dr) => {
                    if let Ok(c) = conn.try_clone() {
                        st.domain_conns.insert(dr.domain, c);
                    }
                    st.core.on_domain_register(dr)
                }
                _ => Vec::new(),
            };
            st.dispatch(replies);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_sim::Endpoint;
    use qos_wire::messages::{DiscAnnounceMsg, DiscDomainRegisterMsg};

    fn temp_sock(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qos-disc-{}-{}", std::process::id(), name))
    }

    #[test]
    fn daemon_assigns_over_uds() {
        let path = temp_sock("assign");
        let daemon = DiscoveryDaemon::bind(&path, Dur::from_secs(4)).unwrap();

        // A domain manager registers and gets its (empty) routes.
        let mut dm = UnixStream::connect(&path).unwrap();
        write_frame(
            &mut dm,
            &WireMsg::DiscDomainRegister(DiscDomainRegisterMsg {
                domain: DomainId(1),
                manager: Endpoint::new(HostId(1), 11),
                parent: None,
            }),
        )
        .unwrap();
        let mut dm_buf = FrameBuffer::new();
        let msg = read_frame(&mut dm, &mut dm_buf, Duration::from_secs(5))
            .unwrap()
            .expect("routes pushed to registrant");
        assert!(matches!(msg, WireMsg::DiscRoutes(_)));

        // A host manager announces and gets an assignment.
        let mut hm = UnixStream::connect(&path).unwrap();
        write_frame(
            &mut hm,
            &WireMsg::DiscAnnounce(DiscAnnounceMsg {
                host: HostId(7),
                manager: Endpoint::new(HostId(7), 10),
                epoch: 1,
            }),
        )
        .unwrap();
        let mut hm_buf = FrameBuffer::new();
        let msg = read_frame(&mut hm, &mut hm_buf, Duration::from_secs(5))
            .unwrap()
            .expect("assignment");
        let WireMsg::DiscAssign(a) = msg else {
            panic!("expected assignment, got {msg:?}");
        };
        assert_eq!(a.host, HostId(7));
        assert_eq!(a.domain, DomainId(1));

        // The DM's routes now include the new host.
        let msg = read_frame(&mut dm, &mut dm_buf, Duration::from_secs(5))
            .unwrap()
            .expect("route update after announce");
        let WireMsg::DiscRoutes(rt) = msg else {
            panic!("expected routes, got {msg:?}");
        };
        assert!(rt.hosts.iter().any(|h| h.host == HostId(7)));

        daemon.shutdown();
        assert!(!path.exists(), "socket file cleaned up");
    }
}
