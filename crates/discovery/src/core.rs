//! The discovery server's state machine, independent of any transport.
//!
//! One instance serves both deployment shapes: the simulated
//! [`DiscoveryServer`](crate::server::DiscoveryServer) process and the
//! socket [`DiscoveryDaemon`](crate::daemon::DiscoveryDaemon). Inputs
//! are decoded wire messages plus a monotonic clock reading; outputs are
//! [`DiscReply`] values the embedding transport resolves and sends.
//!
//! Responsibilities:
//!
//! * **Federation registry** — domain managers register `(domain,
//!   endpoint, parent)`; the parent links arrange the domains into a
//!   tree (one root, `parent == None`).
//! * **Shard assignment** — an announcing host is bound to a *leaf*
//!   domain, chosen by a stable hash of its host id over the sorted leaf
//!   set (or an explicit pin), so the flat host registry shards evenly
//!   and deterministically.
//! * **Leases** — an assignment is valid for a lease; hosts renew at
//!   half the period and the sweep expires bindings that stop renewing,
//!   withdrawing them from the routing tables.
//! * **Route distribution** — on every topology change each registered
//!   domain manager is pushed the [`DiscRoutesMsg`] for its subtree,
//!   which is how cross-domain alert forwarding learns its tables
//!   (replacing hand-wired peer maps).

use std::collections::BTreeMap;

use qos_sim::{DomainId, Dur, Endpoint, HostId};
use qos_telemetry::Telemetry;
use qos_wire::messages::{
    DiscAnnounceMsg, DiscAssignMsg, DiscDomainRegisterMsg, DiscLeaseAckMsg, DiscLeaseRenewMsg,
    DiscRoutesMsg, DomainInfoEntry, HostRouteEntry,
};
use qos_wire::WireMsg;

/// How long a buggified `disc.assign.delay` holds an assignment back,
/// microseconds. Longer than a retry backoff step, so the delayed and
/// the retried assignment race — exactly the reordering the client's
/// epoch check must survive.
pub const ASSIGN_DELAY_US: u64 = 700_000;

/// Where a [`DiscReply`] should go; the embedding transport resolves
/// this to a connection or an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscDest {
    /// The host manager managing this host.
    Host(HostId),
    /// The manager of this domain.
    Domain(DomainId),
}

/// One outbound message decided by the core.
#[derive(Debug, Clone)]
pub struct DiscReply {
    /// Logical destination.
    pub dest: DiscDest,
    /// The message.
    pub msg: WireMsg,
    /// Artificial send delay (0 = immediate; nonzero only under the
    /// `disc.assign.delay` buggify point).
    pub delay_us: u64,
}

impl DiscReply {
    fn now(dest: DiscDest, msg: WireMsg) -> Self {
        DiscReply {
            dest,
            msg,
            delay_us: 0,
        }
    }
}

/// A host's current shard binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The shard the host belongs to.
    pub domain: DomainId,
    /// The host manager's control endpoint.
    pub manager: Endpoint,
    /// Binding epoch (echoed from the announce).
    pub epoch: u64,
    /// Lease deadline, absolute microseconds.
    pub deadline_us: u64,
}

#[derive(Debug, Clone, Copy)]
struct DomainEntry {
    manager: Endpoint,
    parent: Option<DomainId>,
}

/// Counters, mirrored into telemetry as `disc.*`.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiscStats {
    /// Announces received (including re-announces).
    pub announces: u64,
    /// Assignments issued.
    pub assignments: u64,
    /// Lease renewals granted.
    pub renewals: u64,
    /// Bindings expired by the lease sweep.
    pub expirations: u64,
    /// Announces dropped by the `disc.announce.drop` buggify point.
    pub dropped_announces: u64,
    /// Route pushes sent to domain managers.
    pub route_pushes: u64,
    /// Total host-route entries carried by those pushes. The per-push
    /// average is the registry traffic a domain manager actually pays —
    /// the sharding win the scale bench asserts on.
    pub pushed_host_entries: u64,
}

/// The discovery server's transport-free state machine.
pub struct DiscoveryCore {
    lease: Dur,
    domains: BTreeMap<DomainId, DomainEntry>,
    bindings: BTreeMap<HostId, Binding>,
    pins: BTreeMap<HostId, DomainId>,
    /// Topology version: bumped on any registry or binding change and
    /// stamped into route pushes so receivers can discard stale ones.
    version: u64,
    /// Counters, for tests and telemetry.
    pub stats: DiscStats,
    telemetry: Telemetry,
    mirrored: [u64; 7],
}

impl DiscoveryCore {
    /// A core granting leases of the given duration.
    pub fn new(lease: Dur) -> Self {
        DiscoveryCore {
            lease,
            domains: BTreeMap::new(),
            bindings: BTreeMap::new(),
            pins: BTreeMap::new(),
            version: 0,
            stats: DiscStats::default(),
            telemetry: Telemetry::disabled(),
            mirrored: [0; 7],
        }
    }

    /// Attach a telemetry handle: counters under `disc.*` plus
    /// `disc.shard.hosts` / `disc.domain.parent` gauges per domain
    /// (which is what `qosctl domains` renders).
    pub fn with_telemetry(mut self, t: &Telemetry) -> Self {
        self.telemetry = t.clone();
        self
    }

    /// Pin a host to a specific domain instead of the hash assignment
    /// (used by tests and benches to place workloads deliberately).
    pub fn pin(&mut self, host: HostId, domain: DomainId) {
        self.pins.insert(host, domain);
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Dur {
        self.lease
    }

    /// Current binding of a host, if any.
    pub fn binding(&self, host: HostId) -> Option<Binding> {
        self.bindings.get(&host).copied()
    }

    /// Number of live bindings per domain, sorted by domain id.
    pub fn shard_sizes(&self) -> Vec<(DomainId, usize)> {
        let mut sizes: BTreeMap<DomainId, usize> = self.domains.keys().map(|&d| (d, 0)).collect();
        for b in self.bindings.values() {
            *sizes.entry(b.domain).or_insert(0) += 1;
        }
        sizes.into_iter().collect()
    }

    /// Resolve a reply destination to a concrete endpoint (simulated
    /// transport). `None` when the destination is no longer known.
    pub fn endpoint_of(&self, dest: DiscDest) -> Option<Endpoint> {
        match dest {
            DiscDest::Host(h) => self.bindings.get(&h).map(|b| b.manager),
            DiscDest::Domain(d) => self.domains.get(&d).map(|e| e.manager),
        }
    }

    /// A domain manager registered (or re-registered, as a heartbeat).
    /// The registrant always gets a fresh route push; the rest of the
    /// federation is updated when the topology actually changed.
    pub fn on_domain_register(&mut self, msg: DiscDomainRegisterMsg) -> Vec<DiscReply> {
        let entry = DomainEntry {
            manager: msg.manager,
            parent: msg.parent,
        };
        let changed = match self.domains.get(&msg.domain) {
            Some(e) => e.manager != entry.manager || e.parent != entry.parent,
            None => true,
        };
        self.domains.insert(msg.domain, entry);
        let replies = if changed {
            self.version += 1;
            self.push_routes_all()
        } else {
            vec![self.route_push(msg.domain)]
        };
        self.mirror();
        replies
    }

    /// A host manager announced. Decides the shard, records the binding
    /// and replies with the assignment (possibly buggify-delayed); any
    /// binding change also refreshes the federation's routing tables.
    pub fn on_announce(&mut self, now_us: u64, msg: DiscAnnounceMsg) -> Vec<DiscReply> {
        self.stats.announces += 1;
        if qos_buggify::buggify!("disc.announce.drop") {
            self.stats.dropped_announces += 1;
            self.mirror();
            return Vec::new();
        }
        let Some(domain) = self.assign_domain(msg.host) else {
            // No leaf domain registered yet: stay silent, the host's
            // backoff will re-announce.
            self.mirror();
            return Vec::new();
        };
        let manager = self
            .domains
            .get(&domain)
            .map(|e| e.manager)
            .expect("assigned domain is registered");
        let binding = Binding {
            domain,
            manager: msg.manager,
            epoch: msg.epoch,
            deadline_us: now_us.saturating_add(self.lease.as_micros()),
        };
        let changed = match self.bindings.get(&msg.host) {
            Some(b) => b.domain != domain || b.manager != msg.manager || b.epoch != msg.epoch,
            None => true,
        };
        self.bindings.insert(msg.host, binding);
        self.stats.assignments += 1;
        let assign = DiscReply {
            dest: DiscDest::Host(msg.host),
            msg: WireMsg::DiscAssign(DiscAssignMsg {
                host: msg.host,
                epoch: msg.epoch,
                domain,
                manager,
                lease: self.lease,
            }),
            delay_us: if qos_buggify::buggify!("disc.assign.delay") {
                ASSIGN_DELAY_US
            } else {
                0
            },
        };
        let mut replies = vec![assign];
        if changed {
            self.version += 1;
            replies.extend(self.push_routes_all());
        }
        self.mirror();
        replies
    }

    /// A host manager renewed its lease. Epoch and domain must match the
    /// recorded binding; a mismatched renewal is ignored so the host's
    /// missed-ack counter drives it back into re-discovery.
    pub fn on_renew(&mut self, now_us: u64, msg: DiscLeaseRenewMsg) -> Vec<DiscReply> {
        let lease = self.lease;
        let Some(b) = self.bindings.get_mut(&msg.host) else {
            return Vec::new();
        };
        if b.epoch != msg.epoch || b.domain != msg.domain {
            return Vec::new();
        }
        // Chaos: grant the renewal but barely extend the lease, so the
        // sweep expires the binding long before the next renewal — the
        // host must survive losing a lease it believes it holds.
        let granted = if qos_buggify::buggify!("disc.lease.expire_early") {
            Dur::from_micros(lease.as_micros() / 8)
        } else {
            lease
        };
        b.deadline_us = now_us.saturating_add(granted.as_micros());
        self.stats.renewals += 1;
        let ack = DiscReply::now(
            DiscDest::Host(msg.host),
            WireMsg::DiscLeaseAck(DiscLeaseAckMsg {
                host: msg.host,
                epoch: msg.epoch,
                lease: granted,
            }),
        );
        self.mirror();
        vec![ack]
    }

    /// Expire bindings whose lease lapsed. Call periodically (half a
    /// lease is a good period).
    pub fn sweep(&mut self, now_us: u64) -> Vec<DiscReply> {
        let expired: Vec<HostId> = self
            .bindings
            .iter()
            .filter(|(_, b)| b.deadline_us <= now_us)
            .map(|(&h, _)| h)
            .collect();
        if expired.is_empty() {
            return Vec::new();
        }
        for h in &expired {
            self.bindings.remove(h);
        }
        self.stats.expirations += expired.len() as u64;
        self.version += 1;
        let replies = self.push_routes_all();
        self.mirror();
        replies
    }

    /// The route push currently due to every registered domain manager.
    pub fn push_routes_all(&mut self) -> Vec<DiscReply> {
        let domains: Vec<DomainId> = self.domains.keys().copied().collect();
        domains.into_iter().map(|d| self.route_push(d)).collect()
    }

    fn route_push(&mut self, to: DomainId) -> DiscReply {
        self.stats.route_pushes += 1;
        let routes = self.routes_for(to);
        self.stats.pushed_host_entries += routes.hosts.len() as u64;
        DiscReply::now(DiscDest::Domain(to), WireMsg::DiscRoutes(routes))
    }

    /// The routing table for one domain's subtree: its own hosts route
    /// to their host managers; hosts in descendant domains route to the
    /// covering domain's manager. Hosts outside the subtree are absent —
    /// a leaf domain reaches them by forwarding up to its parent.
    pub fn routes_for(&self, to: DomainId) -> DiscRoutesMsg {
        let domains = self
            .domains
            .iter()
            .map(|(&domain, e)| DomainInfoEntry {
                domain,
                manager: e.manager,
                parent: e.parent,
            })
            .collect();
        let hosts = self
            .bindings
            .iter()
            .filter_map(|(&host, b)| {
                let via = if b.domain == to {
                    b.manager
                } else if self.is_descendant(b.domain, to) {
                    self.domains.get(&b.domain)?.manager
                } else {
                    return None;
                };
                Some(HostRouteEntry {
                    host,
                    domain: b.domain,
                    via,
                })
            })
            .collect();
        DiscRoutesMsg {
            domain: to,
            version: self.version,
            domains,
            hosts,
        }
    }

    /// Whether `d` is a strict descendant of `of` in the federation tree.
    fn is_descendant(&self, d: DomainId, of: DomainId) -> bool {
        let mut cur = d;
        // Bounded walk: a registration cycle must not hang the server.
        for _ in 0..self.domains.len() {
            match self.domains.get(&cur).and_then(|e| e.parent) {
                Some(p) if p == of => return true,
                Some(p) => cur = p,
                None => return false,
            }
        }
        false
    }

    /// Pick the shard for a host: its pin if set, else a stable hash
    /// over the sorted leaf domains (domains that are nobody's parent).
    fn assign_domain(&self, host: HostId) -> Option<DomainId> {
        if let Some(&d) = self.pins.get(&host) {
            return self.domains.contains_key(&d).then_some(d);
        }
        let leaves: Vec<DomainId> = self
            .domains
            .keys()
            .copied()
            .filter(|&d| !self.domains.values().any(|e| e.parent == Some(d)))
            .collect();
        if leaves.is_empty() {
            return None;
        }
        Some(leaves[(splitmix64(host.0 as u64) % leaves.len() as u64) as usize])
    }

    /// Mirror counters and per-shard gauges into the telemetry registry
    /// (delta counters, idempotent gauges).
    fn mirror(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let cur = [
            self.stats.announces,
            self.stats.assignments,
            self.stats.renewals,
            self.stats.expirations,
            self.stats.dropped_announces,
            self.stats.route_pushes,
            self.stats.pushed_host_entries,
        ];
        const FAMILIES: [&str; 7] = [
            "disc.announces",
            "disc.assignments",
            "disc.renewals",
            "disc.expirations",
            "disc.dropped_announces",
            "disc.route_pushes",
            "disc.pushed_host_entries",
        ];
        for i in 0..7 {
            if cur[i] > self.mirrored[i] {
                self.telemetry
                    .counter(FAMILIES[i], "server")
                    .add(cur[i] - self.mirrored[i]);
            }
        }
        self.mirrored = cur;
        for (d, n) in self.shard_sizes() {
            let label = d.to_string();
            self.telemetry
                .gauge("disc.shard.hosts", &label)
                .set(n as f64);
            let parent = self
                .domains
                .get(&d)
                .and_then(|e| e.parent)
                .map(|p| p.0 as f64)
                .unwrap_or(-1.0);
            self.telemetry
                .gauge("disc.domain.parent", &label)
                .set(parent);
        }
    }
}

/// SplitMix64: the same stable mix the transport backoff uses, so shard
/// assignment is deterministic across runs and platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(d: u32, host: u32, parent: Option<u32>) -> DiscDomainRegisterMsg {
        DiscDomainRegisterMsg {
            domain: DomainId(d),
            manager: Endpoint::new(HostId(host), 11),
            parent: parent.map(DomainId),
        }
    }

    fn announce(h: u32, epoch: u64) -> DiscAnnounceMsg {
        DiscAnnounceMsg {
            host: HostId(h),
            manager: Endpoint::new(HostId(h), 10),
            epoch,
        }
    }

    #[test]
    fn assignment_is_stable_and_leaf_only() {
        let mut core = DiscoveryCore::new(Dur::from_secs(4));
        core.on_domain_register(reg(0, 0, None)); // root
        core.on_domain_register(reg(1, 1, Some(0)));
        core.on_domain_register(reg(2, 2, Some(0)));
        let mut seen_root = false;
        for h in 10..60 {
            let replies = core.on_announce(0, announce(h, 1));
            let WireMsg::DiscAssign(a) = &replies[0].msg else {
                panic!("first reply is the assignment");
            };
            assert_ne!(a.domain, DomainId(0), "root never receives hosts");
            seen_root |= a.domain == DomainId(0);
            // Re-announcing yields the same shard.
            let again = core.on_announce(1, announce(h, 1));
            let WireMsg::DiscAssign(b) = &again[0].msg else {
                panic!("assignment replayed");
            };
            assert_eq!(a.domain, b.domain);
        }
        assert!(!seen_root);
        let sizes = core.shard_sizes();
        // Both leaves got a meaningful share of the 50 hosts.
        let n1 = sizes.iter().find(|(d, _)| *d == DomainId(1)).unwrap().1;
        let n2 = sizes.iter().find(|(d, _)| *d == DomainId(2)).unwrap().1;
        assert_eq!(n1 + n2, 50);
        assert!(n1 >= 10 && n2 >= 10, "hash shards evenly enough: {n1}/{n2}");
    }

    #[test]
    fn lease_expiry_withdraws_routes() {
        let mut core = DiscoveryCore::new(Dur::from_secs(4));
        core.on_domain_register(reg(1, 1, None));
        core.on_announce(0, announce(7, 1));
        assert!(core.binding(HostId(7)).is_some());
        assert!(core.sweep(1_000_000).is_empty(), "lease still live");
        let replies = core.sweep(4_000_001);
        assert!(core.binding(HostId(7)).is_none());
        assert_eq!(core.stats.expirations, 1);
        // The withdrawal reached the registered domain manager.
        assert!(replies
            .iter()
            .any(|r| matches!(r.dest, DiscDest::Domain(DomainId(1)))));
        let WireMsg::DiscRoutes(rt) = &replies[0].msg else {
            panic!("sweep pushes routes");
        };
        assert!(rt.hosts.is_empty());
    }

    #[test]
    fn renewal_requires_matching_epoch() {
        let mut core = DiscoveryCore::new(Dur::from_secs(4));
        core.on_domain_register(reg(1, 1, None));
        core.on_announce(0, announce(7, 3));
        let stale = core.on_renew(
            1_000_000,
            DiscLeaseRenewMsg {
                host: HostId(7),
                domain: DomainId(1),
                epoch: 2,
            },
        );
        assert!(stale.is_empty(), "stale epoch is not acked");
        let ok = core.on_renew(
            1_000_000,
            DiscLeaseRenewMsg {
                host: HostId(7),
                domain: DomainId(1),
                epoch: 3,
            },
        );
        assert_eq!(ok.len(), 1);
        assert!(core.binding(HostId(7)).unwrap().deadline_us >= 5_000_000);
    }

    #[test]
    fn subtree_scoping_of_routes() {
        let mut core = DiscoveryCore::new(Dur::from_secs(4));
        core.on_domain_register(reg(0, 0, None));
        core.on_domain_register(reg(1, 1, Some(0)));
        core.on_domain_register(reg(2, 2, Some(0)));
        core.pin(HostId(10), DomainId(1));
        core.pin(HostId(20), DomainId(2));
        core.on_announce(0, announce(10, 1));
        core.on_announce(0, announce(20, 1));
        // Root sees both hosts, each via the covering DM.
        let root = core.routes_for(DomainId(0));
        assert_eq!(root.hosts.len(), 2);
        for h in &root.hosts {
            assert_eq!(h.via.port, 11, "cross-domain routes go via the DM");
        }
        // Leaf 1 sees only its own host, via the host manager itself.
        let leaf = core.routes_for(DomainId(1));
        assert_eq!(leaf.hosts.len(), 1);
        assert_eq!(leaf.hosts[0].host, HostId(10));
        assert_eq!(leaf.hosts[0].via.port, 10);
    }
}
