//! Discovery plane for the federated softqos management plane.
//!
//! The paper's management architecture (host managers reporting to a
//! QoS Domain Manager, Section 5) assumed a hand-configured domain: the
//! testbed wired every host manager to one flat registry and wired peer
//! domain managers together by hand. This crate replaces that with a
//! *discovery plane*:
//!
//! * Domain managers register with a **Discovery Server**
//!   (`DiscDomainRegister`), declaring their parent and arranging the
//!   federation into a tree of domains.
//! * Host managers **announce** (`DiscAnnounce`) and are **assigned**
//!   (`DiscAssign`) to a leaf domain — a shard of the old flat registry
//!   chosen by a stable hash, so no operator places hosts by hand.
//! * Assignments are **leased** (`DiscLeaseRenew`/`DiscLeaseAck`);
//!   a host whose renewals go unacknowledged re-enters discovery with a
//!   fresh epoch, and a binding that stops renewing expires server-side.
//! * Every topology change pushes subtree-scoped **routes**
//!   (`DiscRoutes`) to each domain manager, which is how cross-domain
//!   alert forwarding (Section 9's interconnected domain managers)
//!   learns where an off-domain upstream lives.
//!
//! Layout:
//!
//! * [`core`] — the server's transport-free state machine,
//!   [`core::DiscoveryCore`].
//! * [`client`] — the host manager's side, [`client::DiscClient`], a
//!   pure state machine shared verbatim with the model checker.
//! * [`server`] — the simulated server process,
//!   [`server::DiscoveryServer`].
//! * [`daemon`] — the Unix-domain-socket daemon,
//!   [`daemon::DiscoveryDaemon`], for cross-process smoke tests.

#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod daemon;
pub mod server;

pub use client::{DiscAction, DiscBugs, DiscClient, DiscEvent, DiscPhase, MAX_RENEW_MISSES};
pub use core::{Binding, DiscDest, DiscReply, DiscStats, DiscoveryCore};
pub use daemon::DiscoveryDaemon;
pub use server::DiscoveryServer;
