//! The Discovery Server as a simulated process.
//!
//! A thin transport shell around [`DiscoveryCore`]: decodes control
//! frames arriving on [`DISCOVERY_PORT`], feeds them to the core, and
//! sends the core's replies as encoded frames (the same always-encoded
//! convention the manager's `Measured` wire mode uses — discovery
//! messages have no legacy typed form). A periodic timer drives the
//! lease sweep; buggify-delayed assignments are parked on timers too.

use std::collections::HashMap;

use qos_sim::prelude::*;
use qos_telemetry::Telemetry;
use qos_wire::messages::{DISCOVERY_PORT, MANAGER_PROCESSING_COST};
use qos_wire::{WireBytes, WireMsg};

use crate::core::{DiscReply, DiscoveryCore};

/// Tag of the periodic lease-sweep timer.
const TAG_SWEEP: u64 = 1;
/// Timer tags at or above this carry a parked (buggify-delayed) reply.
const TAG_DELAY_BASE: u64 = 1 << 32;

/// The discovery server process: spawn it on the management host and
/// point host managers and domain managers at its endpoint.
pub struct DiscoveryServer {
    /// The protocol state machine (public so tests can pin hosts and
    /// read shard sizes through `World::logic`).
    pub core: DiscoveryCore,
    sweep_period: Dur,
    delayed: HashMap<u64, DiscReply>,
    next_delay_tag: u64,
}

impl DiscoveryServer {
    /// A server granting leases of `lease`; the expiry sweep runs at
    /// half that period.
    pub fn new(lease: Dur) -> Self {
        DiscoveryServer {
            core: DiscoveryCore::new(lease),
            sweep_period: Dur::from_micros(lease.as_micros() / 2),
            delayed: HashMap::new(),
            next_delay_tag: TAG_DELAY_BASE,
        }
    }

    /// Attach telemetry (`disc.*` counters and per-shard gauges).
    pub fn with_telemetry(mut self, t: &Telemetry) -> Self {
        self.core = self.core.with_telemetry(t);
        self
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, replies: Vec<DiscReply>) {
        for r in replies {
            let Some(ep) = self.core.endpoint_of(r.dest) else {
                continue;
            };
            if r.delay_us > 0 {
                let tag = self.next_delay_tag;
                self.next_delay_tag += 1;
                ctx.set_timer(Dur::from_micros(r.delay_us), tag);
                self.delayed.insert(tag, r);
            } else {
                send_frame(ctx, ep, &r.msg);
            }
        }
    }
}

/// Send one control message as an encoded frame, charging the network
/// for its encoded size (the `Measured` convention).
fn send_frame(ctx: &mut Ctx<'_>, dst: Endpoint, msg: &WireMsg) {
    let b = WireBytes::encode(msg);
    ctx.send(dst, DISCOVERY_PORT, b.len_bytes(), b);
}

impl ProcessLogic for DiscoveryServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => ctx.set_timer(self.sweep_period, TAG_SWEEP),
            ProcEvent::Readable(port) => {
                let Some(msg) = ctx.recv(port) else { return };
                let decoded = msg
                    .payload
                    .get::<WireBytes>()
                    .map(|b| b.decode())
                    .transpose();
                let now = ctx.now().as_micros();
                match decoded {
                    Ok(Some(WireMsg::DiscAnnounce(a))) => {
                        let replies = self.core.on_announce(now, a);
                        self.dispatch(ctx, replies);
                    }
                    Ok(Some(WireMsg::DiscLeaseRenew(rn))) => {
                        let replies = self.core.on_renew(now, rn);
                        self.dispatch(ctx, replies);
                    }
                    Ok(Some(WireMsg::DiscDomainRegister(dr))) => {
                        let replies = self.core.on_domain_register(dr);
                        self.dispatch(ctx, replies);
                    }
                    // Anything else — other control kinds, corrupt
                    // frames, app payloads — is not discovery traffic.
                    Ok(_) | Err(_) => {}
                }
                ctx.run(MANAGER_PROCESSING_COST);
            }
            ProcEvent::Timer(TAG_SWEEP) => {
                let now = ctx.now().as_micros();
                let replies = self.core.sweep(now);
                self.dispatch(ctx, replies);
                ctx.set_timer(self.sweep_period, TAG_SWEEP);
            }
            ProcEvent::Timer(tag) if tag >= TAG_DELAY_BASE => {
                if let Some(r) = self.delayed.remove(&tag) {
                    if let Some(ep) = self.core.endpoint_of(r.dest) {
                        send_frame(ctx, ep, &r.msg);
                    }
                }
            }
            ProcEvent::Timer(_) | ProcEvent::BurstDone => {}
        }
    }
}
