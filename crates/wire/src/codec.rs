//! Codec primitives: a hand-rolled little-endian writer/reader pair and
//! the [`Wire`] trait tying a Rust type to its wire form.
//!
//! Deliberately serde-free, matching the repository's no-external-deps
//! style: every encoding is explicit, so the byte layout *is* the
//! protocol specification (see DESIGN.md).
//!
//! Layout conventions:
//! * integers are little-endian, fixed width;
//! * `f64` is its IEEE-754 bit pattern, little-endian;
//! * `bool` is one byte, `0` or `1` — anything else is a decode error;
//! * `String` is a `u32` byte length followed by UTF-8 bytes;
//! * `Vec<T>` is a `u32` element count followed by the elements;
//! * `Option<T>` is a one-byte presence tag (`0`/`1`) then the value.

use crate::error::WireError;

/// Recursive wire values (policy requirement expressions) deeper than
/// this are rejected: a crafted frame must not be able to overflow the
/// decoder's stack.
pub const MAX_NESTING: u32 = 64;

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far, without consuming the writer.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Discard everything written, keeping the allocation — lets a hot
    /// path (batch assembly) reuse one buffer across frames.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Write one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i16`, little-endian two's complement.
    #[inline]
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian two's complement.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a `bool` as one strict `0`/`1` byte.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Write a length-prefixed UTF-8 string.
    #[inline]
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with no length prefix (frame assembly only).
    #[inline]
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite 4 bytes at `at` with a little-endian `u32` (back-patching
    /// the frame length once the payload size is known).
    #[inline]
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Encode a value via its [`Wire`] impl.
    #[inline]
    pub fn put<T: Wire>(&mut self, v: &T) {
        v.encode(self);
    }
}

/// Cursor over an encoded buffer. Every getter returns
/// [`WireError::Truncated`] instead of reading past the end.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Recursion depth of the value currently being decoded.
    depth: u32,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The sub-slice between two previously observed offsets. Out-of-range
    /// offsets yield an empty slice rather than a panic (offsets are
    /// supposed to come from [`WireReader::pos`], but a decoder must never
    /// be able to panic).
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> &'a [u8] {
        self.buf.get(start..end).unwrap_or(&[])
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read an `i16`.
    #[inline]
    pub fn get_i16(&mut self) -> Result<i16, WireError> {
        let b = self.take(2)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    /// Read an `i64`.
    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an `f64` from its bit pattern.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a strict `0`/`1` boolean byte.
    #[inline]
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue("bool byte not 0/1")),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        Ok(self.get_str_ref()?.to_owned())
    }

    /// Read a length-prefixed UTF-8 string as a borrowed view into the
    /// underlying buffer — the zero-copy twin of [`WireReader::get_str`].
    #[inline]
    pub fn get_str_ref(&mut self) -> Result<&'a str, WireError> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Read `n` raw bytes as a borrowed slice.
    #[inline]
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Decode a value via its [`Wire`] impl.
    #[inline]
    pub fn get<T: Wire>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }

    /// Enter one level of recursive decoding; errors past [`MAX_NESTING`].
    #[inline]
    pub fn descend(&mut self) -> Result<(), WireError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(WireError::BadValue("nesting exceeds MAX_NESTING"));
        }
        Ok(())
    }

    /// Leave one level of recursive decoding.
    #[inline]
    pub fn ascend(&mut self) {
        self.depth -= 1;
    }

    /// Assert the buffer was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// A type with a wire encoding. `decode` must accept any byte sequence
/// without panicking, returning a typed [`WireError`] on garbage.
pub trait Wire: Sized {
    /// Append this value to the writer.
    fn encode(&self, w: &mut WireWriter);
    /// Read one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_f64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_bool()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::BadValue("Option tag not 0/1")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get_u32()? as usize;
        // A corrupt count must not drive a huge allocation before the
        // per-element reads hit Truncated: every element costs at least
        // one byte, so cap the preallocation at what the buffer can hold.
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = WireWriter::new();
        v.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-1.25f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(String::from("hé🙂"));
        roundtrip(String::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((String::from("a"), 2.5f64));
    }

    #[test]
    fn nan_bit_pattern_preserved() {
        let mut w = WireWriter::new();
        f64::NAN.encode(&mut w);
        let bytes = w.into_vec();
        let back = f64::decode(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = WireWriter::new();
        String::from("hello").encode(&mut w);
        let bytes = w.into_vec();
        for cut in 0..bytes.len() {
            let err = String::decode(&mut WireReader::new(&bytes[..cut]));
            assert!(matches!(err, Err(WireError::Truncated { .. })), "cut {cut}");
        }
    }

    #[test]
    fn bad_bool_and_option_tags() {
        assert_eq!(
            bool::decode(&mut WireReader::new(&[2])),
            Err(WireError::BadValue("bool byte not 0/1"))
        );
        assert_eq!(
            Option::<u64>::decode(&mut WireReader::new(&[9])),
            Err(WireError::BadValue("Option tag not 0/1"))
        );
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = WireWriter::new();
        w.put_u32(2);
        w.put_raw(&[0xff, 0xfe]);
        let bytes = w.into_vec();
        assert_eq!(
            String::decode(&mut WireReader::new(&bytes)),
            Err(WireError::BadUtf8)
        );
    }

    #[test]
    fn huge_vec_count_does_not_allocate() {
        // Count claims 1 billion elements; buffer holds none.
        let mut w = WireWriter::new();
        w.put_u32(1_000_000_000);
        let bytes = w.into_vec();
        let err = Vec::<u64>::decode(&mut WireReader::new(&bytes));
        assert!(matches!(err, Err(WireError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        true.encode(&mut w);
        w.put_u8(0xaa);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        bool::decode(&mut r).unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(1)));
    }
}
