//! Typed decode failures. Every malformed input maps to one of these —
//! a decoder must never panic on wire data, because frames cross process
//! (and machine) boundaries where the sender cannot be trusted to be a
//! well-behaved build of this crate.

use core::fmt;

/// Why a frame or message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// The frame does not start with the protocol magic.
    BadMagic([u8; 2]),
    /// The frame's protocol version is one this build does not speak.
    UnsupportedVersion(u8),
    /// The frame header names a message kind this build does not know.
    UnknownKind(u8),
    /// A string field holds invalid UTF-8.
    BadUtf8,
    /// The payload decoded cleanly but left bytes unread — the frame
    /// length and the message disagree, so the stream is corrupt.
    TrailingBytes(usize),
    /// The frame header claims a payload larger than the protocol allows
    /// (defends the reassembly buffer against a corrupt length prefix).
    FrameTooLarge(u32),
    /// A field carried a value outside its domain (bad enum tag,
    /// non-boolean byte, nesting deeper than the protocol permits).
    BadValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::FrameTooLarge(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            WireError::BadValue(what) => write!(f, "field out of domain: {what}"),
        }
    }
}

impl std::error::Error for WireError {}
