//! Frame layout and stream reassembly.
//!
//! Every management-plane message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x51 0x57  ("QW")
//! 2       1     protocol version (currently 1)
//! 3       1     message kind (see WireMsg::kind)
//! 4       4     payload length, u32 little-endian
//! 8       len   payload (message body, kind-specific)
//! ```
//!
//! The header is checked before the payload is touched: wrong magic,
//! unknown version, unknown kind, and over-limit lengths are each a
//! distinct [`WireError`], and the payload must be consumed *exactly* —
//! a length/body mismatch is corruption, not slack.

use std::sync::Arc;

use crate::codec::{WireReader, WireWriter};
use crate::error::WireError;
use crate::messages::WireMsg;

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = [0x51, 0x57];

/// Protocol version this build speaks. Bump on any layout change; a
/// receiver hard-rejects versions it does not know rather than guessing.
pub const VERSION: u8 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame payload. Nothing legitimate approaches this
/// (the largest real message is a policy push of a few KiB); it exists so
/// a corrupt length prefix cannot make the reassembly buffer balloon.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

impl WireMsg {
    /// Encode this message as a complete frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_raw(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(self.kind());
        w.put_u32(0); // length, patched below
        let body_start = w.len();
        self.encode_body(&mut w);
        let body_len = (w.len() - body_start) as u32;
        w.patch_u32(4, body_len);
        w.into_vec()
    }

    /// Decode one complete frame. Rejects bad magic, unknown versions and
    /// kinds, over-limit and mis-sized payloads, and any bytes beyond the
    /// frame. Never panics on untrusted input.
    pub fn decode_frame(buf: &[u8]) -> Result<WireMsg, WireError> {
        let (kind, payload) = split_frame(buf)?;
        if buf.len() != HEADER_LEN + payload.len() {
            return Err(WireError::TrailingBytes(
                buf.len() - HEADER_LEN - payload.len(),
            ));
        }
        let mut r = WireReader::new(payload);
        let msg = WireMsg::decode_body(kind, &mut r)?;
        r.finish()?;
        Ok(msg)
    }
}

/// Validate the header of `buf` and return `(kind, payload)` for the
/// first frame, without decoding the payload. Errors if `buf` is shorter
/// than the frame it announces.
pub(crate) fn split_frame(buf: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    if buf[2] != VERSION {
        return Err(WireError::UnsupportedVersion(buf[2]));
    }
    let kind = buf[3];
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    Ok((kind, &buf[HEADER_LEN..total]))
}

/// An encoded frame held behind an [`Arc`] so the simulator can clone it
/// cheaply — the fault layer duplicates messages, and a control frame may
/// be tens of KiB of compiled policies.
#[derive(Debug, Clone)]
pub struct WireBytes(Arc<[u8]>);

impl WireBytes {
    /// Wrap an encoded frame.
    pub fn new(frame: Vec<u8>) -> Self {
        WireBytes(frame.into())
    }

    /// Encode `msg` into a shareable frame.
    pub fn encode(msg: &WireMsg) -> Self {
        WireBytes::new(msg.encode_frame())
    }

    /// Decode the frame back into a message.
    pub fn decode(&self) -> Result<WireMsg, WireError> {
        WireMsg::decode_frame(&self.0)
    }

    /// Encoded length in bytes — what the simulated network charges for
    /// this message in `Measured` wire mode.
    pub fn len_bytes(&self) -> u32 {
        self.0.len() as u32
    }

    /// The raw frame bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

/// Reassembles frames from a byte stream (TCP / Unix-domain socket reads
/// arrive in arbitrary chunks). Feed it bytes; pull complete frames.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete or partial frames).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pop the next complete frame as raw bytes (header included),
    /// validating only the header. `Ok(None)` means more bytes are
    /// needed; an error means the stream is corrupt and the connection
    /// should be dropped (there is no way to resynchronise a
    /// length-prefixed stream after a bad header).
    pub fn next_raw(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match split_frame(&self.buf) {
            Ok((_, payload)) => {
                let total = HEADER_LEN + payload.len();
                let frame = self.buf[..total].to_vec();
                self.buf.drain(..total);
                Ok(Some(frame))
            }
            Err(WireError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Pop and fully decode the next complete frame. `Ok(None)` means
    /// more bytes are needed. (Not an `Iterator`: it is fallible and
    /// `None` means "not yet", not "exhausted".)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WireMsg>, WireError> {
        match self.next_raw()? {
            Some(frame) => Ok(Some(WireMsg::decode_frame(&frame)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::AdaptMsg;

    fn sample() -> WireMsg {
        WireMsg::Adapt(AdaptMsg {
            actuator: "decoder".into(),
            command: "set-quality".into(),
            value: 0.65,
        })
    }

    #[test]
    fn frame_roundtrip() {
        let msg = sample();
        let frame = msg.encode_frame();
        assert_eq!(frame[0..2], MAGIC);
        assert_eq!(frame[2], VERSION);
        assert_eq!(frame[3], msg.kind());
        assert_eq!(WireMsg::decode_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = sample().encode_frame();
        frame[0] = 0xff;
        assert!(matches!(
            WireMsg::decode_frame(&frame),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut frame = sample().encode_frame();
        frame[2] = VERSION + 1;
        assert_eq!(
            WireMsg::decode_frame(&frame),
            Err(WireError::UnsupportedVersion(VERSION + 1))
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut frame = sample().encode_frame();
        frame[3] = 200;
        assert_eq!(
            WireMsg::decode_frame(&frame),
            Err(WireError::UnknownKind(200))
        );
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = sample().encode_frame();
        for cut in 0..frame.len() {
            let err = WireMsg::decode_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversize_length_rejected() {
        let mut frame = sample().encode_frame();
        frame[4..8].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            WireMsg::decode_frame(&frame),
            Err(WireError::FrameTooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn length_body_mismatch_rejected() {
        // Claim a shorter payload than the body: decode stops early and
        // the frame has trailing bytes.
        let mut frame = sample().encode_frame();
        let real = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        frame[4..8].copy_from_slice(&(real - 1).to_le_bytes());
        assert!(WireMsg::decode_frame(&frame).is_err());
    }

    #[test]
    fn buffer_reassembles_split_frames() {
        let a = sample().encode_frame();
        let b = WireMsg::Bye.encode_frame();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);

        let mut fb = FrameBuffer::new();
        for chunk in stream.chunks(3) {
            fb.extend(chunk);
        }
        assert_eq!(fb.next().unwrap(), Some(sample()));
        assert_eq!(fb.next().unwrap(), Some(WireMsg::Bye));
        assert_eq!(fb.next().unwrap(), None);
        assert!(fb.is_empty());
    }

    #[test]
    fn buffer_corruption_is_fatal() {
        let mut fb = FrameBuffer::new();
        fb.extend(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]);
        assert!(fb.next().is_err());
    }
}
