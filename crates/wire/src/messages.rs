//! Management-plane message types and their wire encodings.
//!
//! These are the payloads of Section 5's control plane: instrumented
//! processes talk to their QoS Host Manager over local IPC; host managers
//! talk to the QoS Domain Manager over the network; the Policy Agent
//! handles registration. The structs used to live in `qos-manager`; they
//! moved here so one crate owns both the types and their byte layout,
//! and `qos-manager` re-exports them unchanged.
//!
//! [`WireMsg`] is the closed union of everything the protocol can carry;
//! each variant has a stable kind byte (see [`WireMsg::kind`]) recorded
//! in the frame header.

use qos_policy::ast::{ActionStmt, ArgExpr, CmpOp, PathExpr};
use qos_policy::compile::{BoolExpr, CompiledCondition, CompiledPolicy};
use qos_sim::{DomainId, Dur, Endpoint, HostId, Pid, Port};
use qos_telemetry::{
    HistogramSnapshot, MetricSnapshot, MetricValue, Stage, TraceEvent, HISTOGRAM_BUCKETS,
};

use crate::codec::{Wire, WireReader, WireWriter};
use crate::error::WireError;

/// Port the QoS Host Manager listens on (every managed host).
pub const HOST_MANAGER_PORT: Port = 10;
/// Port the QoS Domain Manager listens on (management host).
pub const DOMAIN_MANAGER_PORT: Port = 11;
/// Port the Policy Agent listens on (management host).
pub const POLICY_AGENT_PORT: Port = 12;
/// Port the Discovery Server listens on (management host).
pub const DISCOVERY_PORT: Port = 13;

/// Default lease a discovery assignment is valid for. A host manager
/// renews at half this period; the discovery server expires bindings
/// whose lease lapses and withdraws them from the routing tables.
pub const DISCOVERY_LEASE: Dur = Dur::from_secs(4);

/// Nominal wire size of a small control message, bytes. Retained for the
/// `Typed`/`EncodedFixed` wire modes (differential-equivalence runs); the
/// default `Measured` mode charges each message its real encoded length.
pub const CTRL_MSG_BYTES: u32 = 256;

/// CPU cost model for manager message handling (drives simulated manager
/// overhead).
pub const MANAGER_PROCESSING_COST: Dur = Dur::from_micros(400);

/// How often a heartbeat-promising client re-sends its [`RegisterMsg`].
/// Re-registration doubles as state repair: a restarted host manager
/// rebuilds its registry within one period.
pub const REGISTRATION_HEARTBEAT_PERIOD: Dur = Dur::from_secs(2);

/// How long the domain manager waits for a [`StatsReplyMsg`] before
/// diagnosing from partial information. Generous against LAN latencies
/// (a round trip is milliseconds) so only real loss or partitions
/// trigger it.
pub const STATS_QUERY_DEADLINE: Dur = Dur::from_millis(500);

/// A violation notification from a coordinator, with enough context for
/// the host manager's rules to judge "how close the policy is to being
/// satisfied".
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationMsg {
    /// The violating process.
    pub pid: Pid,
    /// Process/executable name.
    pub proc_name: String,
    /// Violated policy name.
    pub policy: String,
    /// Telemetry correlation id of the violation episode (0 = none),
    /// propagated from the reporting coordinator so detection, diagnosis
    /// and adaptation share one causal chain.
    pub corr: u64,
    /// Attribute readings from the policy's sensor-read actions.
    pub readings: Vec<(String, f64)>,
    /// Requirement bounds on the primary attribute `(attr, lo, hi)`,
    /// extracted from the compiled policy's condition list.
    pub bounds: Option<(String, f64, f64)>,
    /// Where the process's stream originates, if it is a network client
    /// (lets diagnosis escalate to the right server).
    pub upstream: Option<Upstream>,
}

/// Identity of the remote peer feeding a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Upstream {
    /// Server host.
    pub host: HostId,
    /// Server process.
    pub pid: Pid,
}

/// Registration of a starting process with its host manager (the
/// prototype's "instrumented processes communicate with the QoS Host
/// Manager ... at the initialisation of the processes").
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterMsg {
    /// The registering process.
    pub pid: Pid,
    /// Port the process accepts control messages (e.g. [`AdaptMsg`]) on.
    pub control_port: Port,
    /// Executable name.
    pub executable: String,
    /// Application name.
    pub application: String,
    /// User role for this session.
    pub role: String,
    /// Relative importance for differentiated administrative policies
    /// (1.0 = default).
    pub weight: f64,
    /// If set, the process promises to re-register at least this often;
    /// the host manager treats a registration as a liveness heartbeat
    /// and, after several missed periods, declares the process dead and
    /// reclaims everything granted to it. `None` opts out (one-shot
    /// registrants are never reaped on silence).
    pub heartbeat: Option<Dur>,
}

/// Policy-distribution request to the Policy Agent.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentRequest {
    /// The registering process.
    pub pid: Pid,
    /// Port to deliver the resolution to.
    pub reply_port: Port,
    /// Registration details.
    pub registration: RegisterMsg,
}

/// Policies resolved by the Policy Agent for a process.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentReply {
    /// Compiled policies for the coordinator.
    pub policies: Vec<CompiledPolicy>,
}

/// Host manager → domain manager: a violation this host cannot explain
/// locally (small communication buffer ⇒ remote or network cause).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainAlertMsg {
    /// Host raising the alert.
    pub from_host: HostId,
    /// The violating client process.
    pub client: Pid,
    /// The stream's server side.
    pub upstream: Upstream,
    /// Observed primary metric (e.g. frames per second).
    pub observed: f64,
    /// Telemetry correlation id of the violation episode being escalated
    /// (0 = none).
    pub corr: u64,
}

/// Domain manager → host manager: report your host statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsQueryMsg {
    /// Where to send the [`StatsReplyMsg`].
    pub reply_to: Endpoint,
    /// Correlation id assigned by the querier.
    pub correlation: u64,
}

/// Host manager → domain manager: host statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsReplyMsg {
    /// Reporting host.
    pub host: HostId,
    /// 1-minute load average.
    pub load_avg: f64,
    /// Memory utilization, `[0, 1]`.
    pub mem_utilization: f64,
    /// Correlation id from the query.
    pub correlation: u64,
}

/// Domain manager → server-side host manager: raise the CPU allocation of
/// a named server process ("tell a QoS Host Manager on a server machine
/// to increase the CPU priority of the server process").
#[derive(Debug, Clone, PartialEq)]
pub struct AdjustRequestMsg {
    /// The process to boost.
    pub pid: Pid,
    /// Boost size in TS user-priority steps.
    pub steps: i16,
    /// Telemetry correlation id of the violation episode this adjustment
    /// serves (0 = none).
    pub corr: u64,
}

/// Manager → instrumented process: invoke an actuator (the Section 5.1
/// control path — used for the Section 10 "overload" extension where the
/// application adapts its behaviour because no resource allocation can
/// satisfy the requirement).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptMsg {
    /// The actuator to invoke.
    pub actuator: String,
    /// Command understood by the actuator.
    pub command: String,
    /// Numeric argument.
    pub value: f64,
}

/// Dynamic rule distribution: add/remove rules in a running manager
/// without recompilation (Section 9).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleUpdateMsg {
    /// CLIPS-format rule text to add (may contain several `defrule`s).
    pub add: Option<String>,
    /// Rule names to remove.
    pub remove: Vec<String>,
}

/// Live-mode registration handshake: a real OS process announcing itself
/// to a [`LiveHostManager`](../../qos_manager/live/index.html) over a
/// channel or socket transport.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRegisterMsg {
    /// Process identity (the registration's process string).
    pub process: String,
}

/// Live-mode violation notification — the wire form of
/// `qos_instrument::ViolationReport` (that crate adds the conversions, so
/// the codec stays free of an instrument dependency).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveViolationMsg {
    /// Violated policy name.
    pub policy: String,
    /// Reporting process (subject identity).
    pub process: String,
    /// Timestamp, microseconds.
    pub at_us: u64,
    /// Telemetry correlation id of the violation episode (0 = none).
    pub corr: u64,
    /// Attribute readings gathered by the policy's sensor-read actions.
    pub readings: Vec<(String, f64)>,
}

/// Subscriber → manager: start streaming telemetry to this connection.
/// The manager replies on the same connection with a stream of
/// [`TelemetryBatchMsg`] frames until the subscriber disconnects.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySubscribeMsg {
    /// Subscriber identity (for the manager's stats; e.g. `qosctl-tail`).
    pub subscriber: String,
    /// Stream trace events (violation lifecycles).
    pub want_events: bool,
    /// Stream periodic metrics-registry snapshots.
    pub want_metrics: bool,
}

/// Manager → subscriber: one batch of telemetry. Event batches are
/// published on a short interval (or sooner when a batch fills);
/// metrics snapshots ride along periodically.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryBatchMsg {
    /// Per-subscriber batch sequence number (gaps ⇒ batches were
    /// dropped by backpressure).
    pub seq: u64,
    /// Publishing component, e.g. `host-manager`.
    pub source: String,
    /// Trace events since the previous batch (empty for metrics-only
    /// batches).
    pub events: Vec<TraceEvent>,
    /// Periodic registry snapshot `(at_us, series)`, when due.
    pub metrics: Option<(u64, Vec<MetricSnapshot>)>,
}

/// Host manager → discovery server: "I manage host H, bind me to a
/// domain manager." Sent at start-up and re-sent with backoff until a
/// [`DiscAssignMsg`] for the current `epoch` arrives; re-discovery after
/// domain-manager loss bumps the epoch so stale assignments are
/// rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiscAnnounceMsg {
    /// The announcing host.
    pub host: HostId,
    /// The host manager's control endpoint (where assignments and
    /// domain-manager traffic should be sent).
    pub manager: Endpoint,
    /// The announcer's binding epoch: incremented on every re-discovery,
    /// echoed in the assignment so the client can reject stale replies.
    pub epoch: u64,
}

/// Discovery server → host manager: your domain manager. The binding is
/// valid for `lease`; the client renews at half the lease period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiscAssignMsg {
    /// The host being assigned.
    pub host: HostId,
    /// Epoch from the announce this assignment answers.
    pub epoch: u64,
    /// The domain shard the host now belongs to.
    pub domain: DomainId,
    /// The domain manager's control endpoint.
    pub manager: Endpoint,
    /// Lease duration for this binding.
    pub lease: Dur,
}

/// Host manager → discovery server: extend my lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiscLeaseRenewMsg {
    /// The renewing host.
    pub host: HostId,
    /// The domain the host believes it is bound to.
    pub domain: DomainId,
    /// The binding epoch being renewed.
    pub epoch: u64,
}

/// Discovery server → host manager: lease extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiscLeaseAckMsg {
    /// The renewed host.
    pub host: HostId,
    /// Epoch from the matching renewal.
    pub epoch: u64,
    /// The fresh lease duration.
    pub lease: Dur,
}

/// Domain manager → discovery server: "domain D is managed at this
/// endpoint." `parent` links the domain into the federation hierarchy
/// (None ⇒ this is the root domain). Re-sent periodically as a
/// heartbeat so a restarted discovery server re-learns the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiscDomainRegisterMsg {
    /// The registering domain.
    pub domain: DomainId,
    /// The domain manager's control endpoint.
    pub manager: Endpoint,
    /// The parent domain in the hierarchy (None ⇒ root).
    pub parent: Option<DomainId>,
}

/// One federation-topology entry in a [`DiscRoutesMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainInfoEntry {
    /// The domain.
    pub domain: DomainId,
    /// Its manager's control endpoint.
    pub manager: Endpoint,
    /// Its parent in the hierarchy (None ⇒ root).
    pub parent: Option<DomainId>,
}

/// One host-route entry in a [`DiscRoutesMsg`]: alerts about `host`
/// should be sent to `via` (the host manager itself for hosts in the
/// recipient's own shard; the covering domain manager otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostRouteEntry {
    /// The routed host.
    pub host: HostId,
    /// The domain shard covering it.
    pub domain: DomainId,
    /// Next hop for traffic concerning this host.
    pub via: Endpoint,
}

/// Discovery server → domain manager: the routes you need. Pushed on
/// every topology change, scoped to the recipient's subtree: a leaf
/// domain learns its own shard, the root learns how to reach every
/// domain — this replaces hand-wired `add_peer` tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscRoutesMsg {
    /// The recipient domain.
    pub domain: DomainId,
    /// Monotonic topology version; stale pushes (reordered in flight)
    /// are ignored by the receiver.
    pub version: u64,
    /// The federation: every registered domain with its manager and
    /// parent.
    pub domains: Vec<DomainInfoEntry>,
    /// Host routes for the recipient's subtree.
    pub hosts: Vec<HostRouteEntry>,
}

/// A coalesced frame: one frame carrying several management-plane
/// messages, so a sensor burst pays one frame header, one transport
/// send and one manager wake-up instead of N. The payload is a `u32`
/// count followed by `count` items, each `(kind u8, len u32 LE, body)`.
/// Batches must not nest — a batch item with the batch kind byte is a
/// decode error, which keeps the format depth-1 and the decoder
/// stack-safe without recursion accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchMsg {
    /// The coalesced messages, in send order.
    pub msgs: Vec<WireMsg>,
}

/// Frame-header kind byte of [`BatchMsg`] / [`WireMsg::Batch`].
pub const KIND_BATCH: u8 = 18;

/// The closed union of management-plane messages. The frame header's
/// kind byte selects the variant; unknown kinds are rejected with
/// [`WireError::UnknownKind`] so an old build fails loudly instead of
/// misparsing a newer peer.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Coordinator → host manager (simulated plane).
    Violation(ViolationMsg),
    /// Process → host manager registration/heartbeat.
    Register(RegisterMsg),
    /// Process → Policy Agent.
    AgentRequest(AgentRequest),
    /// Policy Agent → process (policy push / fallback resolution).
    AgentReply(AgentReply),
    /// Host manager → domain manager escalation.
    DomainAlert(DomainAlertMsg),
    /// Domain manager → host manager statistics query.
    StatsQuery(StatsQueryMsg),
    /// Host manager → domain manager statistics reply.
    StatsReply(StatsReplyMsg),
    /// Domain manager → host manager CPU adjustment request.
    AdjustRequest(AdjustRequestMsg),
    /// Manager → process actuator invocation.
    Adapt(AdaptMsg),
    /// Dynamic rule distribution.
    RuleUpdate(RuleUpdateMsg),
    /// Live-mode registration handshake.
    LiveRegister(LiveRegisterMsg),
    /// Live-mode violation notification.
    LiveViolation(LiveViolationMsg),
    /// Barrier request: the receiver acks with [`WireMsg::SyncAck`]
    /// carrying the same token once everything queued before this frame
    /// has been processed (the wire form of the old in-proc
    /// `Sync { ack }` channel message, which cannot cross a socket).
    SyncReq {
        /// Caller-chosen token echoed in the ack.
        token: u64,
    },
    /// Barrier acknowledgement.
    SyncAck {
        /// Token from the matching [`WireMsg::SyncReq`].
        token: u64,
    },
    /// Graceful goodbye: the peer is disconnecting on purpose.
    Bye,
    /// Subscriber → manager telemetry subscription.
    TelemetrySubscribe(TelemetrySubscribeMsg),
    /// Manager → subscriber telemetry batch.
    TelemetryBatch(TelemetryBatchMsg),
    /// Several coalesced messages in one frame (report batching).
    Batch(BatchMsg),
    /// Host manager → discovery server: find me a domain manager.
    DiscAnnounce(DiscAnnounceMsg),
    /// Discovery server → host manager: your domain assignment.
    DiscAssign(DiscAssignMsg),
    /// Host manager → discovery server: lease renewal.
    DiscLeaseRenew(DiscLeaseRenewMsg),
    /// Discovery server → host manager: lease extended.
    DiscLeaseAck(DiscLeaseAckMsg),
    /// Domain manager → discovery server: federation registration.
    DiscDomainRegister(DiscDomainRegisterMsg),
    /// Discovery server → domain manager: learned routes push.
    DiscRoutes(DiscRoutesMsg),
}

impl WireMsg {
    /// The frame-header kind byte of this message.
    pub fn kind(&self) -> u8 {
        match self {
            WireMsg::Violation(_) => 1,
            WireMsg::Register(_) => 2,
            WireMsg::AgentRequest(_) => 3,
            WireMsg::AgentReply(_) => 4,
            WireMsg::DomainAlert(_) => 5,
            WireMsg::StatsQuery(_) => 6,
            WireMsg::StatsReply(_) => 7,
            WireMsg::AdjustRequest(_) => 8,
            WireMsg::Adapt(_) => 9,
            WireMsg::RuleUpdate(_) => 10,
            WireMsg::LiveRegister(_) => 11,
            WireMsg::LiveViolation(_) => 12,
            WireMsg::SyncReq { .. } => 13,
            WireMsg::SyncAck { .. } => 14,
            WireMsg::Bye => 15,
            WireMsg::TelemetrySubscribe(_) => 16,
            WireMsg::TelemetryBatch(_) => 17,
            WireMsg::Batch(_) => KIND_BATCH,
            WireMsg::DiscAnnounce(_) => 19,
            WireMsg::DiscAssign(_) => 20,
            WireMsg::DiscLeaseRenew(_) => 21,
            WireMsg::DiscLeaseAck(_) => 22,
            WireMsg::DiscDomainRegister(_) => 23,
            WireMsg::DiscRoutes(_) => 24,
        }
    }

    /// Encode the payload body (no frame header) into `w`.
    pub fn encode_body(&self, w: &mut WireWriter) {
        match self {
            WireMsg::Violation(m) => m.encode(w),
            WireMsg::Register(m) => m.encode(w),
            WireMsg::AgentRequest(m) => m.encode(w),
            WireMsg::AgentReply(m) => m.encode(w),
            WireMsg::DomainAlert(m) => m.encode(w),
            WireMsg::StatsQuery(m) => m.encode(w),
            WireMsg::StatsReply(m) => m.encode(w),
            WireMsg::AdjustRequest(m) => m.encode(w),
            WireMsg::Adapt(m) => m.encode(w),
            WireMsg::RuleUpdate(m) => m.encode(w),
            WireMsg::LiveRegister(m) => m.encode(w),
            WireMsg::LiveViolation(m) => m.encode(w),
            WireMsg::SyncReq { token } | WireMsg::SyncAck { token } => w.put_u64(*token),
            WireMsg::Bye => {}
            WireMsg::TelemetrySubscribe(m) => m.encode(w),
            WireMsg::TelemetryBatch(m) => m.encode(w),
            WireMsg::Batch(m) => m.encode(w),
            WireMsg::DiscAnnounce(m) => m.encode(w),
            WireMsg::DiscAssign(m) => m.encode(w),
            WireMsg::DiscLeaseRenew(m) => m.encode(w),
            WireMsg::DiscLeaseAck(m) => m.encode(w),
            WireMsg::DiscDomainRegister(m) => m.encode(w),
            WireMsg::DiscRoutes(m) => m.encode(w),
        }
    }

    /// Decode the payload body of the given `kind` from `r`. The caller
    /// (frame layer) checks that `r` is consumed exactly.
    pub fn decode_body(kind: u8, r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match kind {
            1 => WireMsg::Violation(r.get()?),
            2 => WireMsg::Register(r.get()?),
            3 => WireMsg::AgentRequest(r.get()?),
            4 => WireMsg::AgentReply(r.get()?),
            5 => WireMsg::DomainAlert(r.get()?),
            6 => WireMsg::StatsQuery(r.get()?),
            7 => WireMsg::StatsReply(r.get()?),
            8 => WireMsg::AdjustRequest(r.get()?),
            9 => WireMsg::Adapt(r.get()?),
            10 => WireMsg::RuleUpdate(r.get()?),
            11 => WireMsg::LiveRegister(r.get()?),
            12 => WireMsg::LiveViolation(r.get()?),
            13 => WireMsg::SyncReq {
                token: r.get_u64()?,
            },
            14 => WireMsg::SyncAck {
                token: r.get_u64()?,
            },
            15 => WireMsg::Bye,
            16 => WireMsg::TelemetrySubscribe(r.get()?),
            17 => WireMsg::TelemetryBatch(r.get()?),
            KIND_BATCH => WireMsg::Batch(BatchMsg::decode(r)?),
            19 => WireMsg::DiscAnnounce(r.get()?),
            20 => WireMsg::DiscAssign(r.get()?),
            21 => WireMsg::DiscLeaseRenew(r.get()?),
            22 => WireMsg::DiscLeaseAck(r.get()?),
            23 => WireMsg::DiscDomainRegister(r.get()?),
            24 => WireMsg::DiscRoutes(r.get()?),
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

impl BatchMsg {
    /// Encode: `u32` count, then each item as `(kind, len, body)`.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.msgs.len() as u32);
        for m in &self.msgs {
            w.put_u8(m.kind());
            let len_at = w.len();
            w.put_u32(0); // item length, patched below
            let body_start = w.len();
            m.encode_body(w);
            w.patch_u32(len_at, (w.len() - body_start) as u32);
        }
    }

    /// Decode, validating every item eagerly (a batch is accepted whole
    /// or rejected whole). Nested batches are rejected.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get_u32()? as usize;
        // Each item costs at least 5 header bytes; cap the preallocation
        // so a corrupt count cannot drive a huge allocation.
        let mut msgs = Vec::with_capacity(n.min(r.remaining() / 5));
        for _ in 0..n {
            let kind = r.get_u8()?;
            if kind == KIND_BATCH {
                return Err(WireError::BadValue("nested batch"));
            }
            let len = r.get_u32()? as usize;
            let body = r.get_raw(len)?;
            let mut br = WireReader::new(body);
            let msg = WireMsg::decode_body(kind, &mut br)?;
            br.finish()?;
            msgs.push(msg);
        }
        Ok(BatchMsg { msgs })
    }
}

// ---------------------------------------------------------------------
// Wire impls: simulation identifiers
// ---------------------------------------------------------------------

impl Wire for HostId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(HostId(r.get_u32()?))
    }
}

impl Wire for Pid {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        w.put_u32(self.local);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Pid {
            host: HostId::decode(r)?,
            local: r.get_u32()?,
        })
    }
}

impl Wire for Endpoint {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        w.put_u16(self.port);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Endpoint {
            host: HostId::decode(r)?,
            port: r.get_u16()?,
        })
    }
}

impl Wire for Dur {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.as_micros());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Dur::from_micros(r.get_u64()?))
    }
}

impl Wire for DomainId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DomainId(r.get_u32()?))
    }
}

// ---------------------------------------------------------------------
// Wire impls: discovery-plane messages
// ---------------------------------------------------------------------

impl Wire for DiscAnnounceMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        self.manager.encode(w);
        w.put_u64(self.epoch);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DiscAnnounceMsg {
            host: r.get()?,
            manager: r.get()?,
            epoch: r.get_u64()?,
        })
    }
}

impl Wire for DiscAssignMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        w.put_u64(self.epoch);
        self.domain.encode(w);
        self.manager.encode(w);
        self.lease.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DiscAssignMsg {
            host: r.get()?,
            epoch: r.get_u64()?,
            domain: r.get()?,
            manager: r.get()?,
            lease: r.get()?,
        })
    }
}

impl Wire for DiscLeaseRenewMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        self.domain.encode(w);
        w.put_u64(self.epoch);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DiscLeaseRenewMsg {
            host: r.get()?,
            domain: r.get()?,
            epoch: r.get_u64()?,
        })
    }
}

impl Wire for DiscLeaseAckMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        w.put_u64(self.epoch);
        self.lease.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DiscLeaseAckMsg {
            host: r.get()?,
            epoch: r.get_u64()?,
            lease: r.get()?,
        })
    }
}

impl Wire for DiscDomainRegisterMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.domain.encode(w);
        self.manager.encode(w);
        self.parent.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DiscDomainRegisterMsg {
            domain: r.get()?,
            manager: r.get()?,
            parent: r.get()?,
        })
    }
}

impl Wire for DomainInfoEntry {
    fn encode(&self, w: &mut WireWriter) {
        self.domain.encode(w);
        self.manager.encode(w);
        self.parent.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DomainInfoEntry {
            domain: r.get()?,
            manager: r.get()?,
            parent: r.get()?,
        })
    }
}

impl Wire for HostRouteEntry {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        self.domain.encode(w);
        self.via.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(HostRouteEntry {
            host: r.get()?,
            domain: r.get()?,
            via: r.get()?,
        })
    }
}

impl Wire for DiscRoutesMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.domain.encode(w);
        w.put_u64(self.version);
        self.domains.encode(w);
        self.hosts.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DiscRoutesMsg {
            domain: r.get()?,
            version: r.get_u64()?,
            domains: r.get()?,
            hosts: r.get()?,
        })
    }
}

// ---------------------------------------------------------------------
// Wire impls: compiled-policy types (the AgentReply payload)
// ---------------------------------------------------------------------

impl Wire for CmpOp {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            _ => return Err(WireError::BadValue("CmpOp tag")),
        })
    }
}

impl Wire for PathExpr {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bool(self.elided_prefix);
        self.segments.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PathExpr {
            elided_prefix: r.get_bool()?,
            segments: r.get()?,
        })
    }
}

impl Wire for ArgExpr {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ArgExpr::Out(s) => {
                w.put_u8(0);
                w.put_str(s);
            }
            ArgExpr::Name(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
            ArgExpr::Num(v) => {
                w.put_u8(2);
                w.put_f64(*v);
            }
            ArgExpr::Str(s) => {
                w.put_u8(3);
                w.put_str(s);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => ArgExpr::Out(r.get_str()?),
            1 => ArgExpr::Name(r.get_str()?),
            2 => ArgExpr::Num(r.get_f64()?),
            3 => ArgExpr::Str(r.get_str()?),
            _ => return Err(WireError::BadValue("ArgExpr tag")),
        })
    }
}

impl Wire for ActionStmt {
    fn encode(&self, w: &mut WireWriter) {
        self.target.encode(w);
        w.put_str(&self.method);
        self.args.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ActionStmt {
            target: r.get()?,
            method: r.get_str()?,
            args: r.get()?,
        })
    }
}

impl Wire for CompiledCondition {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.attr);
        self.op.encode(w);
        w.put_f64(self.value);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CompiledCondition {
            attr: r.get_str()?,
            op: r.get()?,
            value: r.get_f64()?,
        })
    }
}

impl Wire for BoolExpr {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            BoolExpr::Var(i) => {
                w.put_u8(0);
                w.put_u32(*i as u32);
            }
            BoolExpr::And(es) => {
                w.put_u8(1);
                es.encode(w);
            }
            BoolExpr::Or(es) => {
                w.put_u8(2);
                es.encode(w);
            }
            BoolExpr::Not(e) => {
                w.put_u8(3);
                e.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Depth-bounded: a frame of nested Not bytes must exhaust
        // MAX_NESTING, not the thread's stack.
        r.descend()?;
        let out = match r.get_u8()? {
            0 => BoolExpr::Var(r.get_u32()? as usize),
            1 => BoolExpr::And(r.get()?),
            2 => BoolExpr::Or(r.get()?),
            3 => BoolExpr::Not(Box::new(BoolExpr::decode(r)?)),
            _ => return Err(WireError::BadValue("BoolExpr tag")),
        };
        r.ascend();
        Ok(out)
    }
}

impl Wire for CompiledPolicy {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.name);
        self.subject.encode(w);
        self.targets.encode(w);
        self.conditions.encode(w);
        self.requirement.encode(w);
        self.actions.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CompiledPolicy {
            name: r.get_str()?,
            subject: r.get()?,
            targets: r.get()?,
            conditions: r.get()?,
            requirement: r.get()?,
            actions: r.get()?,
        })
    }
}

// ---------------------------------------------------------------------
// Wire impls: the management messages themselves
// ---------------------------------------------------------------------

impl Wire for Upstream {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        self.pid.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Upstream {
            host: r.get()?,
            pid: r.get()?,
        })
    }
}

impl Wire for ViolationMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.pid.encode(w);
        w.put_str(&self.proc_name);
        w.put_str(&self.policy);
        w.put_u64(self.corr);
        self.readings.encode(w);
        self.bounds.encode(w);
        self.upstream.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ViolationMsg {
            pid: r.get()?,
            proc_name: r.get_str()?,
            policy: r.get_str()?,
            corr: r.get_u64()?,
            readings: r.get()?,
            bounds: r.get()?,
            upstream: r.get()?,
        })
    }
}

impl Wire for RegisterMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.pid.encode(w);
        w.put_u16(self.control_port);
        w.put_str(&self.executable);
        w.put_str(&self.application);
        w.put_str(&self.role);
        w.put_f64(self.weight);
        self.heartbeat.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RegisterMsg {
            pid: r.get()?,
            control_port: r.get_u16()?,
            executable: r.get_str()?,
            application: r.get_str()?,
            role: r.get_str()?,
            weight: r.get_f64()?,
            heartbeat: r.get()?,
        })
    }
}

impl Wire for AgentRequest {
    fn encode(&self, w: &mut WireWriter) {
        self.pid.encode(w);
        w.put_u16(self.reply_port);
        self.registration.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AgentRequest {
            pid: r.get()?,
            reply_port: r.get_u16()?,
            registration: r.get()?,
        })
    }
}

impl Wire for AgentReply {
    fn encode(&self, w: &mut WireWriter) {
        self.policies.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AgentReply { policies: r.get()? })
    }
}

impl Wire for DomainAlertMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.from_host.encode(w);
        self.client.encode(w);
        self.upstream.encode(w);
        w.put_f64(self.observed);
        w.put_u64(self.corr);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DomainAlertMsg {
            from_host: r.get()?,
            client: r.get()?,
            upstream: r.get()?,
            observed: r.get_f64()?,
            corr: r.get_u64()?,
        })
    }
}

impl Wire for StatsQueryMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.reply_to.encode(w);
        w.put_u64(self.correlation);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StatsQueryMsg {
            reply_to: r.get()?,
            correlation: r.get_u64()?,
        })
    }
}

impl Wire for StatsReplyMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.host.encode(w);
        w.put_f64(self.load_avg);
        w.put_f64(self.mem_utilization);
        w.put_u64(self.correlation);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StatsReplyMsg {
            host: r.get()?,
            load_avg: r.get_f64()?,
            mem_utilization: r.get_f64()?,
            correlation: r.get_u64()?,
        })
    }
}

impl Wire for AdjustRequestMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.pid.encode(w);
        w.put_i16(self.steps);
        w.put_u64(self.corr);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AdjustRequestMsg {
            pid: r.get()?,
            steps: r.get_i16()?,
            corr: r.get_u64()?,
        })
    }
}

impl Wire for AdaptMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.actuator);
        w.put_str(&self.command);
        w.put_f64(self.value);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AdaptMsg {
            actuator: r.get_str()?,
            command: r.get_str()?,
            value: r.get_f64()?,
        })
    }
}

impl Wire for RuleUpdateMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.add.encode(w);
        self.remove.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RuleUpdateMsg {
            add: r.get()?,
            remove: r.get()?,
        })
    }
}

impl Wire for LiveRegisterMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.process);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LiveRegisterMsg {
            process: r.get_str()?,
        })
    }
}

// ---------------------------------------------------------------------
// Wire impls: telemetry types (the TelemetryBatch payload)
// ---------------------------------------------------------------------

impl Wire for Stage {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Stage::from_tag(r.get_u8()?).ok_or(WireError::BadValue("Stage tag"))
    }
}

impl Wire for TraceEvent {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.at_us);
        w.put_u64(self.corr);
        self.stage.encode(w);
        w.put_str(&self.component);
        w.put_str(&self.name);
        self.fields.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TraceEvent {
            at_us: r.get_u64()?,
            corr: r.get_u64()?,
            stage: r.get()?,
            component: r.get_str()?,
            name: r.get_str()?,
            fields: r.get()?,
        })
    }
}

impl Wire for HistogramSnapshot {
    /// Sparse encoding: count/sum/max, then only the non-zero buckets
    /// as (index, count) pairs.
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.max);
        let nonzero: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        w.put_u32(nonzero.len() as u32);
        for (i, c) in nonzero {
            w.put_u32(i);
            w.put_u64(c);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut h = HistogramSnapshot::empty();
        h.count = r.get_u64()?;
        h.sum = r.get_u64()?;
        h.max = r.get_u64()?;
        let k = r.get_u32()? as usize;
        if k > HISTOGRAM_BUCKETS {
            return Err(WireError::BadValue("histogram bucket count"));
        }
        for _ in 0..k {
            let ix = r.get_u32()? as usize;
            if ix >= HISTOGRAM_BUCKETS {
                return Err(WireError::BadValue("histogram bucket index"));
            }
            h.buckets[ix] = r.get_u64()?;
        }
        Ok(h)
    }
}

impl Wire for MetricValue {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            MetricValue::Counter(v) => {
                w.put_u8(0);
                w.put_u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.put_u8(1);
                w.put_f64(*v);
            }
            MetricValue::Histogram(h) => {
                w.put_u8(2);
                h.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => MetricValue::Counter(r.get_u64()?),
            1 => MetricValue::Gauge(r.get_f64()?),
            2 => MetricValue::Histogram(Box::new(r.get()?)),
            _ => return Err(WireError::BadValue("MetricValue tag")),
        })
    }
}

impl Wire for MetricSnapshot {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.family);
        w.put_str(&self.label);
        self.value.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MetricSnapshot {
            family: r.get_str()?,
            label: r.get_str()?,
            value: r.get()?,
        })
    }
}

impl Wire for TelemetrySubscribeMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.subscriber);
        w.put_bool(self.want_events);
        w.put_bool(self.want_metrics);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TelemetrySubscribeMsg {
            subscriber: r.get_str()?,
            want_events: r.get_bool()?,
            want_metrics: r.get_bool()?,
        })
    }
}

impl Wire for TelemetryBatchMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.seq);
        w.put_str(&self.source);
        self.events.encode(w);
        self.metrics.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TelemetryBatchMsg {
            seq: r.get_u64()?,
            source: r.get_str()?,
            events: r.get()?,
            metrics: r.get()?,
        })
    }
}

impl Wire for LiveViolationMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.policy);
        w.put_str(&self.process);
        w.put_u64(self.at_us);
        w.put_u64(self.corr);
        self.readings.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LiveViolationMsg {
            policy: r.get_str()?,
            process: r.get_str()?,
            at_us: r.get_u64()?,
            corr: r.get_u64()?,
            readings: r.get()?,
        })
    }
}
