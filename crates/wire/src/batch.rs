//! Report coalescing: build and walk [`BatchMsg`] frames.
//!
//! One batch frame carries N management-plane messages behind a single
//! 8-byte frame header, so a sensor burst costs one transport send and
//! one manager wake-up. [`BatchBuilder`] assembles the frame in place
//! (reusable buffer, no per-message allocations beyond the bytes
//! themselves); [`BatchRef`] is the zero-copy read side, yielding
//! [`WireMsgRef`] views straight out of the frame buffer.

use crate::borrowed::WireMsgRef;
use crate::codec::{WireReader, WireWriter};
use crate::error::WireError;
use crate::frame::{HEADER_LEN, MAGIC, VERSION};
use crate::messages::{WireMsg, KIND_BATCH};

/// Offset of the item count within a batch frame (just after the frame
/// header).
const COUNT_AT: usize = HEADER_LEN;

/// Incremental encoder for a batch frame. Push messages, take the
/// finished frame, reuse the buffer:
///
/// ```
/// use qos_wire::{BatchBuilder, WireMsg};
/// let mut b = BatchBuilder::new();
/// b.push(&WireMsg::SyncReq { token: 1 });
/// b.push(&WireMsg::SyncReq { token: 2 });
/// let frame = b.finish();
/// assert!(matches!(WireMsg::decode_frame(&frame), Ok(WireMsg::Batch(m)) if m.msgs.len() == 2));
/// ```
#[derive(Debug)]
pub struct BatchBuilder {
    w: WireWriter,
    count: u32,
}

impl Default for BatchBuilder {
    fn default() -> Self {
        BatchBuilder::new()
    }
}

impl BatchBuilder {
    /// An empty builder (frame prologue already written).
    pub fn new() -> Self {
        let mut w = WireWriter::new();
        Self::prologue(&mut w);
        BatchBuilder { w, count: 0 }
    }

    fn prologue(w: &mut WireWriter) {
        w.put_raw(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(KIND_BATCH);
        w.put_u32(0); // frame payload length, patched on finish
        w.put_u32(0); // item count, patched on finish
    }

    /// Append one message to the batch. Batches must not nest; pushing a
    /// [`WireMsg::Batch`] is a programming error, not a wire condition,
    /// so it panics rather than producing an undecodable frame.
    pub fn push(&mut self, msg: &WireMsg) {
        assert_ne!(msg.kind(), KIND_BATCH, "batch frames must not nest");
        self.w.put_u8(msg.kind());
        let len_at = self.w.len();
        self.w.put_u32(0); // item length, patched below
        let body_start = self.w.len();
        msg.encode_body(&mut self.w);
        self.w.patch_u32(len_at, (self.w.len() - body_start) as u32);
        self.count += 1;
    }

    /// Messages pushed so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no message has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the finished frame in bytes (header included).
    pub fn frame_len(&self) -> usize {
        self.w.len()
    }

    fn patch(&mut self) {
        let payload = (self.w.len() - HEADER_LEN) as u32;
        self.w.patch_u32(4, payload);
        self.w.patch_u32(COUNT_AT, self.count);
    }

    /// Finish the frame, consuming the builder.
    pub fn finish(mut self) -> Vec<u8> {
        self.patch();
        self.w.into_vec()
    }

    /// Finish the frame into `out` and reset the builder for reuse — the
    /// zero-allocation path for hot senders that flush into a transport's
    /// write buffer.
    pub fn append_frame_to(&mut self, out: &mut Vec<u8>) {
        self.patch();
        out.extend_from_slice(self.w.as_slice());
        self.clear();
    }

    /// Discard everything pushed, keeping the allocation.
    pub fn clear(&mut self) {
        self.w.clear();
        Self::prologue(&mut self.w);
        self.count = 0;
    }
}

/// Borrowed view of a batch payload. Decoding validates every item
/// eagerly — envelope lengths and the full body of each message — so
/// the batch is accepted whole or rejected whole, exactly like the
/// owned [`crate::messages::BatchMsg`] decoder; iteration afterwards
/// cannot fail.
#[derive(Debug, Clone, Copy)]
pub struct BatchRef<'a> {
    count: u32,
    /// Raw item encodings, excluding the count prefix.
    items: &'a [u8],
}

impl<'a> BatchRef<'a> {
    pub(crate) fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let count = r.get_u32()?;
        let start = r.pos();
        for _ in 0..count {
            let kind = r.get_u8()?;
            if kind == KIND_BATCH {
                return Err(WireError::BadValue("nested batch"));
            }
            let len = r.get_u32()? as usize;
            let body = r.get_raw(len)?;
            let mut br = WireReader::new(body);
            WireMsgRef::decode_body(kind, &mut br)?;
            br.finish()?;
        }
        Ok(BatchRef {
            count,
            items: r.slice(start, r.pos()),
        })
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the batch carries no messages.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the coalesced messages as borrowed views, allocating
    /// nothing for the high-rate kinds.
    pub fn iter(&self) -> BatchIter<'a> {
        BatchIter {
            rest: self.items,
            left: self.count,
        }
    }
}

impl<'a> IntoIterator for &BatchRef<'a> {
    type Item = WireMsgRef<'a>;
    type IntoIter = BatchIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`BatchRef`].
pub struct BatchIter<'a> {
    rest: &'a [u8],
    left: u32,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = WireMsgRef<'a>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        // Items were fully validated by BatchRef::decode; the fallible
        // reads here are belt and braces, ending iteration early rather
        // than panicking if that invariant is ever broken.
        let mut r = WireReader::new(self.rest);
        let kind = r.get_u8().ok()?;
        let len = r.get_u32().ok()? as usize;
        let body = r.get_raw(len).ok()?;
        self.rest = &self.rest[self.rest.len() - r.remaining()..];
        let mut br = WireReader::new(body);
        WireMsgRef::decode_body(kind, &mut br).ok()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left as usize, Some(self.left as usize))
    }
}

impl ExactSizeIterator for BatchIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{BatchMsg, LiveViolationMsg};

    fn lv(i: u64) -> WireMsg {
        WireMsg::LiveViolation(LiveViolationMsg {
            policy: "NotifyQoSViolation".into(),
            process: format!("proc:{i}"),
            at_us: i,
            corr: i,
            readings: vec![("frame_rate".into(), i as f64)],
        })
    }

    #[test]
    fn builder_and_owned_decoder_agree() {
        let msgs: Vec<WireMsg> = (0..5).map(lv).collect();
        let mut b = BatchBuilder::new();
        for m in &msgs {
            b.push(m);
        }
        assert_eq!(b.len(), 5);
        let frame = b.finish();
        let owned = WireMsg::decode_frame(&frame).unwrap();
        assert_eq!(owned, WireMsg::Batch(BatchMsg { msgs: msgs.clone() }));
        // And the explicit encode of the owned form is byte-identical.
        assert_eq!(owned.encode_frame(), frame);
    }

    #[test]
    fn borrowed_iteration_matches() {
        let msgs: Vec<WireMsg> = (0..4).map(lv).collect();
        let mut b = BatchBuilder::new();
        for m in &msgs {
            b.push(m);
        }
        let frame = b.finish();
        let Ok(WireMsgRef::Batch(batch)) = WireMsgRef::decode_frame(&frame) else {
            panic!("batch frame must decode as a batch view");
        };
        assert_eq!(batch.len(), msgs.len());
        let back: Vec<WireMsg> = batch.iter().map(|m| m.to_owned_msg()).collect();
        assert_eq!(back, msgs);
    }

    #[test]
    fn builder_reuse_produces_identical_frames() {
        let mut b = BatchBuilder::new();
        b.push(&lv(1));
        let first = b.finish();

        let mut b = BatchBuilder::new();
        b.push(&lv(99));
        let mut out = Vec::new();
        b.append_frame_to(&mut out);
        assert!(b.is_empty());
        b.push(&lv(1));
        let mut second = Vec::new();
        b.append_frame_to(&mut second);
        assert_eq!(second, first, "reused builder must re-encode identically");
    }

    #[test]
    fn empty_batch_round_trips() {
        let frame = BatchBuilder::new().finish();
        assert_eq!(
            WireMsg::decode_frame(&frame).unwrap(),
            WireMsg::Batch(BatchMsg::default())
        );
    }

    #[test]
    fn nested_batch_is_rejected() {
        let inner = BatchMsg { msgs: vec![lv(0)] };
        let outer = WireMsg::Batch(BatchMsg {
            msgs: vec![WireMsg::Batch(inner)],
        });
        // Hand-encode (the builder refuses to build this).
        let frame = outer.encode_frame();
        assert_eq!(
            WireMsg::decode_frame(&frame),
            Err(WireError::BadValue("nested batch"))
        );
        assert!(WireMsgRef::decode_frame(&frame).is_err());
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn builder_refuses_nested_batch() {
        let mut b = BatchBuilder::new();
        b.push(&WireMsg::Batch(BatchMsg::default()));
    }

    #[test]
    fn corrupt_item_rejects_whole_batch_on_both_surfaces() {
        let mut b = BatchBuilder::new();
        b.push(&lv(1));
        b.push(&lv(2));
        let mut frame = b.finish();
        // Corrupt the last byte (inside the second item's body).
        *frame.last_mut().unwrap() ^= 0xff;
        let owned_err = WireMsg::decode_frame(&frame).is_err();
        let ref_err = WireMsgRef::decode_frame(&frame).is_err();
        assert_eq!(owned_err, ref_err);
    }
}
