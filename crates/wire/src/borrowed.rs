//! Borrowed decode: zero-copy views over an encoded frame.
//!
//! The owned decoder ([`WireMsg::decode_frame`]) allocates a `String`
//! per text field and a `Vec` per list — fine for control-rate traffic,
//! too expensive for the violation-report hot path. This module adds a
//! second decode surface, [`WireMsgRef`], whose high-rate variants
//! borrow every string and list straight out of the frame buffer:
//! decoding a [`ViolationMsgRef`] performs **zero** heap allocations.
//!
//! Ownership rules (see DESIGN.md):
//!
//! * A `*Ref<'a>` view borrows from the frame buffer it was decoded
//!   from and is valid only while that buffer is; it is `Copy`, so
//!   handing one around never implies a deep copy.
//! * Decoding validates the *entire* message eagerly — lengths, UTF-8,
//!   enum tags, nesting — so iterating a view afterwards cannot fail.
//!   The deferred iterators ([`ReadingsRef`], [`TraceEventsRef`]) walk
//!   pre-validated bytes.
//! * `to_owned()` materializes the equivalent owned message; the
//!   differential property tests in `tests/roundtrip.rs` pin
//!   borrowed-then-owned to be byte-identical with the owned decoder
//!   for every message kind, valid or corrupt.
//!
//! Only the four high-rate kinds get dedicated views (`ViolationMsg`,
//! `RegisterMsg`, `LiveViolationMsg`, `TelemetryBatchMsg`) plus the
//! batch container; every other kind falls back to the owned decoder
//! under [`WireMsgRef::Owned`] — those messages are control-rate and
//! the fallback keeps the two surfaces trivially consistent.

use qos_sim::{Dur, Pid};
use qos_telemetry::{MetricSnapshot, Stage, TraceEvent, HISTOGRAM_BUCKETS};

use crate::batch::BatchRef;
use crate::codec::{Wire, WireReader};
use crate::error::WireError;
use crate::frame::{split_frame, HEADER_LEN};
use crate::messages::{
    BatchMsg, LiveViolationMsg, RegisterMsg, TelemetryBatchMsg, Upstream, ViolationMsg, WireMsg,
    KIND_BATCH,
};

/// Strict `Option` presence tag, mirroring the owned codec's encoding.
fn opt_tag(r: &mut WireReader<'_>) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::BadValue("Option tag not 0/1")),
    }
}

/// A borrowed `(name, value)` readings list: the raw encoded span,
/// validated at decode time and walked lazily. Iterating allocates
/// nothing; [`ReadingsRef::to_vec`] materializes the owned form.
#[derive(Debug, Clone, Copy)]
pub struct ReadingsRef<'a> {
    count: u32,
    /// Raw encoding including the `u32` count prefix.
    raw: &'a [u8],
}

impl<'a> ReadingsRef<'a> {
    /// Decode and validate a readings list, keeping only a borrow.
    pub(crate) fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let start = r.pos();
        let count = r.get_u32()?;
        for _ in 0..count {
            r.get_str_ref()?;
            r.get_f64()?;
        }
        Ok(ReadingsRef {
            count,
            raw: r.slice(start, r.pos()),
        })
    }

    /// Number of readings.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the readings without allocating.
    pub fn iter(&self) -> ReadingsIter<'a> {
        ReadingsIter {
            cur: Cur::new(&self.raw[4.min(self.raw.len())..]),
            left: self.count,
        }
    }

    /// Materialize the owned form.
    pub fn to_vec(&self) -> Vec<(String, f64)> {
        self.iter().map(|(s, v)| (s.to_owned(), v)).collect()
    }
}

impl<'a> IntoIterator for &ReadingsRef<'a> {
    type Item = (&'a str, f64);
    type IntoIter = ReadingsIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`ReadingsRef`].
pub struct ReadingsIter<'a> {
    cur: Cur<'a>,
    left: u32,
}

impl<'a> Iterator for ReadingsIter<'a> {
    type Item = (&'a str, f64);
    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        let s = self.cur.str_ref();
        let v = self.cur.f64();
        Some((s, v))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left as usize, Some(self.left as usize))
    }
}

impl ExactSizeIterator for ReadingsIter<'_> {}

/// Infallible cursor over bytes that were validated at decode time.
/// Underflow (impossible by construction) yields zeros / empty strings
/// rather than panicking — a decoder must never be able to panic, even
/// against its own bugs.
struct Cur<'a> {
    b: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b }
    }

    fn bytes(&mut self, n: usize) -> &'a [u8] {
        let n = n.min(self.b.len());
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        head
    }

    fn u8(&mut self) -> u8 {
        self.bytes(1).first().copied().unwrap_or(0)
    }

    fn u32(&mut self) -> u32 {
        let mut a = [0u8; 4];
        let b = self.bytes(4);
        a[..b.len()].copy_from_slice(b);
        u32::from_le_bytes(a)
    }

    fn u64(&mut self) -> u64 {
        let mut a = [0u8; 8];
        let b = self.bytes(8);
        a[..b.len()].copy_from_slice(b);
        u64::from_le_bytes(a)
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    fn str_ref(&mut self) -> &'a str {
        let n = self.u32() as usize;
        std::str::from_utf8(self.bytes(n)).unwrap_or("")
    }
}

/// Borrowed view of a [`ViolationMsg`]. Decoding allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct ViolationMsgRef<'a> {
    /// The violating process.
    pub pid: Pid,
    /// Process/executable name.
    pub proc_name: &'a str,
    /// Violated policy name.
    pub policy: &'a str,
    /// Telemetry correlation id (0 = none).
    pub corr: u64,
    /// Attribute readings, iterated lazily.
    pub readings: ReadingsRef<'a>,
    /// Requirement bounds `(attr, lo, hi)`.
    pub bounds: Option<(&'a str, f64, f64)>,
    /// Upstream attribution.
    pub upstream: Option<Upstream>,
}

impl<'a> ViolationMsgRef<'a> {
    fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Ok(ViolationMsgRef {
            pid: r.get()?,
            proc_name: r.get_str_ref()?,
            policy: r.get_str_ref()?,
            corr: r.get_u64()?,
            readings: ReadingsRef::decode(r)?,
            bounds: if opt_tag(r)? {
                Some((r.get_str_ref()?, r.get_f64()?, r.get_f64()?))
            } else {
                None
            },
            upstream: if opt_tag(r)? { Some(r.get()?) } else { None },
        })
    }

    /// Materialize the owned message.
    pub fn to_owned(&self) -> ViolationMsg {
        ViolationMsg {
            pid: self.pid,
            proc_name: self.proc_name.to_owned(),
            policy: self.policy.to_owned(),
            corr: self.corr,
            readings: self.readings.to_vec(),
            bounds: self.bounds.map(|(a, lo, hi)| (a.to_owned(), lo, hi)),
            upstream: self.upstream,
        }
    }
}

/// Borrowed view of a [`RegisterMsg`].
#[derive(Debug, Clone, Copy)]
pub struct RegisterMsgRef<'a> {
    /// The registering process.
    pub pid: Pid,
    /// Control port.
    pub control_port: u16,
    /// Executable name.
    pub executable: &'a str,
    /// Application name.
    pub application: &'a str,
    /// User role.
    pub role: &'a str,
    /// Relative importance.
    pub weight: f64,
    /// Heartbeat promise.
    pub heartbeat: Option<Dur>,
}

impl<'a> RegisterMsgRef<'a> {
    fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Ok(RegisterMsgRef {
            pid: r.get()?,
            control_port: r.get_u16()?,
            executable: r.get_str_ref()?,
            application: r.get_str_ref()?,
            role: r.get_str_ref()?,
            weight: r.get_f64()?,
            heartbeat: if opt_tag(r)? { Some(r.get()?) } else { None },
        })
    }

    /// Materialize the owned message.
    pub fn to_owned(&self) -> RegisterMsg {
        RegisterMsg {
            pid: self.pid,
            control_port: self.control_port,
            executable: self.executable.to_owned(),
            application: self.application.to_owned(),
            role: self.role.to_owned(),
            weight: self.weight,
            heartbeat: self.heartbeat,
        }
    }
}

/// Borrowed view of a [`LiveViolationMsg`].
#[derive(Debug, Clone, Copy)]
pub struct LiveViolationMsgRef<'a> {
    /// Violated policy name.
    pub policy: &'a str,
    /// Reporting process.
    pub process: &'a str,
    /// Timestamp, microseconds.
    pub at_us: u64,
    /// Telemetry correlation id (0 = none).
    pub corr: u64,
    /// Attribute readings, iterated lazily.
    pub readings: ReadingsRef<'a>,
}

impl<'a> LiveViolationMsgRef<'a> {
    fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Ok(LiveViolationMsgRef {
            policy: r.get_str_ref()?,
            process: r.get_str_ref()?,
            at_us: r.get_u64()?,
            corr: r.get_u64()?,
            readings: ReadingsRef::decode(r)?,
        })
    }

    /// Materialize the owned message.
    pub fn to_owned(&self) -> LiveViolationMsg {
        LiveViolationMsg {
            policy: self.policy.to_owned(),
            process: self.process.to_owned(),
            at_us: self.at_us,
            corr: self.corr,
            readings: self.readings.to_vec(),
        }
    }
}

/// Borrowed view of one [`TraceEvent`] inside a telemetry batch.
#[derive(Debug, Clone, Copy)]
pub struct TraceEventRef<'a> {
    /// Timestamp, microseconds.
    pub at_us: u64,
    /// Correlation id.
    pub corr: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Emitting component.
    pub component: &'a str,
    /// Event name.
    pub name: &'a str,
    /// Event fields, iterated lazily.
    pub fields: ReadingsRef<'a>,
}

impl TraceEventRef<'_> {
    /// Materialize the owned event.
    pub fn to_owned(&self) -> TraceEvent {
        TraceEvent {
            at_us: self.at_us,
            corr: self.corr,
            stage: self.stage,
            component: self.component.to_owned(),
            name: self.name.to_owned(),
            fields: self.fields.to_vec(),
        }
    }
}

/// Borrowed list of [`TraceEvent`]s: validated eagerly, walked lazily.
#[derive(Debug, Clone, Copy)]
pub struct TraceEventsRef<'a> {
    count: u32,
    /// Raw encoding excluding the count prefix.
    items: &'a [u8],
}

impl<'a> TraceEventsRef<'a> {
    fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let count = r.get_u32()?;
        let start = r.pos();
        for _ in 0..count {
            r.get_u64()?; // at_us
            r.get_u64()?; // corr
            Stage::from_tag(r.get_u8()?).ok_or(WireError::BadValue("Stage tag"))?;
            r.get_str_ref()?; // component
            r.get_str_ref()?; // name
            ReadingsRef::decode(r)?;
        }
        Ok(TraceEventsRef {
            count,
            items: r.slice(start, r.pos()),
        })
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the events without allocating.
    pub fn iter(&self) -> TraceEventsIter<'a> {
        TraceEventsIter {
            cur: Cur::new(self.items),
            left: self.count,
        }
    }
}

/// Iterator over a [`TraceEventsRef`].
pub struct TraceEventsIter<'a> {
    cur: Cur<'a>,
    left: u32,
}

impl<'a> Iterator for TraceEventsIter<'a> {
    type Item = TraceEventRef<'a>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        let at_us = self.cur.u64();
        let corr = self.cur.u64();
        let stage = Stage::from_tag(self.cur.u8()).unwrap_or(Stage::Mark);
        let component = self.cur.str_ref();
        let name = self.cur.str_ref();
        // Delimit the fields span by walking it (validated already).
        let fields_start = self.cur.b;
        let count = self.cur.u32();
        for _ in 0..count {
            self.cur.str_ref();
            self.cur.f64();
        }
        let span = &fields_start[..fields_start.len() - self.cur.b.len()];
        Some(TraceEventRef {
            at_us,
            corr,
            stage,
            component,
            name,
            fields: ReadingsRef { count, raw: span },
        })
    }
}

/// Borrowed metrics snapshot inside a telemetry batch: validated
/// structurally at decode time, materialized on demand (histogram
/// snapshots are large; subscribers that only want events never pay
/// for them).
#[derive(Debug, Clone, Copy)]
pub struct MetricsRef<'a> {
    count: u32,
    /// Raw encoding including the count prefix.
    raw: &'a [u8],
}

impl<'a> MetricsRef<'a> {
    fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let start = r.pos();
        let count = r.get_u32()?;
        for _ in 0..count {
            r.get_str_ref()?; // family
            r.get_str_ref()?; // label
            match r.get_u8()? {
                0 => {
                    r.get_u64()?;
                }
                1 => {
                    r.get_f64()?;
                }
                2 => {
                    // Histogram: count/sum/max then sparse buckets.
                    r.get_u64()?;
                    r.get_u64()?;
                    r.get_u64()?;
                    let k = r.get_u32()? as usize;
                    if k > HISTOGRAM_BUCKETS {
                        return Err(WireError::BadValue("histogram bucket count"));
                    }
                    for _ in 0..k {
                        if r.get_u32()? as usize >= HISTOGRAM_BUCKETS {
                            return Err(WireError::BadValue("histogram bucket index"));
                        }
                        r.get_u64()?;
                    }
                }
                _ => return Err(WireError::BadValue("MetricValue tag")),
            }
        }
        Ok(MetricsRef {
            count,
            raw: r.slice(start, r.pos()),
        })
    }

    /// Number of series in the snapshot.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Materialize the owned series list.
    pub fn to_vec(&self) -> Vec<MetricSnapshot> {
        // Validated at decode time, so this cannot fail; the default is
        // defensive, not reachable.
        Vec::<MetricSnapshot>::decode(&mut WireReader::new(self.raw)).unwrap_or_default()
    }
}

/// Borrowed view of a [`TelemetryBatchMsg`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryBatchMsgRef<'a> {
    /// Batch sequence number.
    pub seq: u64,
    /// Publishing component.
    pub source: &'a str,
    /// Trace events, iterated lazily.
    pub events: TraceEventsRef<'a>,
    /// Periodic metrics snapshot `(at_us, series)`, when present.
    pub metrics: Option<(u64, MetricsRef<'a>)>,
}

impl<'a> TelemetryBatchMsgRef<'a> {
    fn decode(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Ok(TelemetryBatchMsgRef {
            seq: r.get_u64()?,
            source: r.get_str_ref()?,
            events: TraceEventsRef::decode(r)?,
            metrics: if opt_tag(r)? {
                Some((r.get_u64()?, MetricsRef::decode(r)?))
            } else {
                None
            },
        })
    }

    /// Materialize the owned message.
    pub fn to_owned(&self) -> TelemetryBatchMsg {
        TelemetryBatchMsg {
            seq: self.seq,
            source: self.source.to_owned(),
            events: self.events.iter().map(|e| e.to_owned()).collect(),
            metrics: self.metrics.map(|(at, m)| (at, m.to_vec())),
        }
    }
}

/// Borrowed twin of [`WireMsg`]: high-rate kinds decode as zero-copy
/// views, everything else falls back to the owned decoder. One frame,
/// either surface — the differential property tests pin them equal.
#[derive(Debug, Clone)]
pub enum WireMsgRef<'a> {
    /// Coordinator → host manager violation report (simulated plane).
    Violation(ViolationMsgRef<'a>),
    /// Registration / heartbeat.
    Register(RegisterMsgRef<'a>),
    /// Live-mode violation notification.
    LiveViolation(LiveViolationMsgRef<'a>),
    /// Manager → subscriber telemetry batch.
    TelemetryBatch(TelemetryBatchMsgRef<'a>),
    /// Several coalesced messages in one frame.
    Batch(BatchRef<'a>),
    /// Any control-rate kind, decoded through the owned path.
    Owned(WireMsg),
}

impl<'a> WireMsgRef<'a> {
    /// Decode one complete frame as a borrowed view. Same validation
    /// guarantees as [`WireMsg::decode_frame`]: rejects bad magic,
    /// unknown versions/kinds, mis-sized payloads and trailing bytes;
    /// never panics on untrusted input.
    pub fn decode_frame(buf: &'a [u8]) -> Result<Self, WireError> {
        let (kind, payload) = split_frame(buf)?;
        if buf.len() != HEADER_LEN + payload.len() {
            return Err(WireError::TrailingBytes(
                buf.len() - HEADER_LEN - payload.len(),
            ));
        }
        let mut r = WireReader::new(payload);
        let msg = Self::decode_body(kind, &mut r)?;
        r.finish()?;
        Ok(msg)
    }

    /// Decode a payload body of the given `kind` from `r`.
    pub(crate) fn decode_body(
        kind: u8,
        r: &mut WireReader<'a>,
    ) -> Result<WireMsgRef<'a>, WireError> {
        Ok(match kind {
            1 => WireMsgRef::Violation(ViolationMsgRef::decode(r)?),
            2 => WireMsgRef::Register(RegisterMsgRef::decode(r)?),
            12 => WireMsgRef::LiveViolation(LiveViolationMsgRef::decode(r)?),
            17 => WireMsgRef::TelemetryBatch(TelemetryBatchMsgRef::decode(r)?),
            KIND_BATCH => WireMsgRef::Batch(BatchRef::decode(r)?),
            other => WireMsgRef::Owned(WireMsg::decode_body(other, r)?),
        })
    }

    /// The frame-header kind byte of this message.
    pub fn kind(&self) -> u8 {
        match self {
            WireMsgRef::Violation(_) => 1,
            WireMsgRef::Register(_) => 2,
            WireMsgRef::LiveViolation(_) => 12,
            WireMsgRef::TelemetryBatch(_) => 17,
            WireMsgRef::Batch(_) => KIND_BATCH,
            WireMsgRef::Owned(m) => m.kind(),
        }
    }

    /// Materialize the equivalent owned [`WireMsg`].
    pub fn to_owned_msg(&self) -> WireMsg {
        match self {
            WireMsgRef::Violation(m) => WireMsg::Violation(m.to_owned()),
            WireMsgRef::Register(m) => WireMsg::Register(m.to_owned()),
            WireMsgRef::LiveViolation(m) => WireMsg::LiveViolation(m.to_owned()),
            WireMsgRef::TelemetryBatch(m) => WireMsg::TelemetryBatch(m.to_owned()),
            WireMsgRef::Batch(b) => WireMsg::Batch(BatchMsg {
                msgs: b.iter().map(|m| m.to_owned_msg()).collect(),
            }),
            WireMsgRef::Owned(m) => m.clone(),
        }
    }
}
