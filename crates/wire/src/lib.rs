//! `qos-wire`: the versioned binary wire protocol of the softqos
//! management plane.
//!
//! The paper's architecture is distributed — instrumented processes talk
//! to the QoS Host Manager over local IPC, host managers talk to the QoS
//! Domain Manager over the network — so the management plane needs a
//! real codec, not in-process struct passing. This crate owns that seam:
//!
//! * [`codec`] — a hand-rolled little-endian writer/reader pair and the
//!   [`Wire`](codec::Wire) trait (no serde; explicit layouts).
//! * [`messages`] — every management-plane message
//!   ([`ViolationMsg`](messages::ViolationMsg),
//!   [`RegisterMsg`](messages::RegisterMsg), domain queries/replies,
//!   policy push, rule updates, live-mode handshakes) unified under
//!   [`WireMsg`](messages::WireMsg).
//! * [`frame`] — the length-prefixed frame format (magic, version,
//!   kind, length) plus [`FrameBuffer`](frame::FrameBuffer) for stream
//!   reassembly and [`WireBytes`](frame::WireBytes) for cheap sharing.
//! * [`error`] — typed decode failures; decoders never panic on
//!   untrusted bytes.
//! * [`borrowed`] — the zero-copy decode surface:
//!   [`WireMsgRef`](borrowed::WireMsgRef) views that borrow strings and
//!   lists straight out of the frame buffer for the high-rate kinds.
//! * [`batch`] — report coalescing: [`BatchBuilder`](batch::BatchBuilder)
//!   packs N messages into one frame, [`BatchRef`](batch::BatchRef) walks
//!   them back out without copying.
//!
//! The same frames flow over all three transports (simulator hops,
//! in-proc channels, TCP/Unix-domain sockets), so the simulator charges
//! the network the *real* encoded size of each control message and a
//! socket peer is bit-compatible with a simulated one.

#![warn(missing_docs)]

pub mod batch;
pub mod borrowed;
pub mod codec;
pub mod error;
pub mod frame;
pub mod messages;

pub use batch::{BatchBuilder, BatchRef};
pub use borrowed::{
    LiveViolationMsgRef, ReadingsRef, RegisterMsgRef, TelemetryBatchMsgRef, TraceEventRef,
    ViolationMsgRef, WireMsgRef,
};
pub use codec::{Wire, WireReader, WireWriter, MAX_NESTING};
pub use error::WireError;
pub use frame::{FrameBuffer, WireBytes, HEADER_LEN, MAGIC, MAX_FRAME_LEN, VERSION};
pub use messages::{BatchMsg, WireMsg, KIND_BATCH};
