//! Randomized protocol properties: every message kind survives an
//! encode → decode round trip unchanged, and no amount of truncation or
//! byte-flipping makes the decoder panic — corrupt input always surfaces
//! as a typed [`WireError`].

use proptest::prelude::*;
use qos_sim::DomainId;
use qos_sim::{Dur, Endpoint, HostId, Pid};
use qos_telemetry::{HistogramSnapshot, MetricSnapshot, MetricValue, Stage, TraceEvent};
use qos_wire::messages::{
    AdaptMsg, AdjustRequestMsg, AgentReply, AgentRequest, DiscAnnounceMsg, DiscAssignMsg,
    DiscDomainRegisterMsg, DiscLeaseAckMsg, DiscLeaseRenewMsg, DiscRoutesMsg, DomainAlertMsg,
    DomainInfoEntry, HostRouteEntry, LiveRegisterMsg, LiveViolationMsg, RegisterMsg, RuleUpdateMsg,
    StatsQueryMsg, StatsReplyMsg, TelemetryBatchMsg, TelemetrySubscribeMsg, Upstream, ViolationMsg,
};
use qos_wire::{BatchBuilder, BatchMsg, FrameBuffer, WireMsg, WireMsgRef, HEADER_LEN};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,11}"
}

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1.0e9..1.0e9f64).prop_map(|x| (x * 100.0).round() / 100.0)
}

fn readings() -> impl Strategy<Value = Vec<(String, f64)>> {
    proptest::collection::vec((ident(), finite_f64()), 0..4)
}

/// A genuinely compiled policy (nontrivial nested payload for
/// `AgentReply`), parameterized by the condition bound.
fn policy(bound: f64) -> qos_policy::compile::CompiledPolicy {
    let src = format!("oblig P {{ subject s on not (m > {bound:.2}) do s->read(out m); }}");
    qos_policy::compile::compile(&qos_policy::parser::parse_policy(&src).expect("parses"))
        .expect("compiles")
}

/// One message of every wire kind, built from the generated primitives.
#[allow(clippy::too_many_arguments)]
fn all_kinds(
    host: u32,
    local: u32,
    port: u16,
    corr: u64,
    name: String,
    text: String,
    rd: Vec<(String, f64)>,
    value: f64,
    steps: i16,
    flag: bool,
    token: u64,
) -> Vec<WireMsg> {
    let pid = Pid {
        host: HostId(host),
        local,
    };
    let upstream = Upstream {
        host: HostId(host.wrapping_add(1)),
        pid,
    };
    let reg = RegisterMsg {
        pid,
        control_port: port,
        executable: name.clone(),
        application: text.clone(),
        role: "*".into(),
        weight: value.abs().min(100.0),
        heartbeat: flag.then(|| Dur::from_micros(token % 10_000_000)),
    };
    vec![
        WireMsg::Violation(ViolationMsg {
            pid,
            proc_name: name.clone(),
            policy: text.clone(),
            corr,
            readings: rd.clone(),
            bounds: flag.then(|| (name.clone(), value, value + 1.0)),
            upstream: flag.then_some(upstream),
        }),
        WireMsg::Register(reg.clone()),
        WireMsg::AgentRequest(AgentRequest {
            pid,
            reply_port: port,
            registration: reg,
        }),
        WireMsg::AgentReply(AgentReply {
            policies: vec![policy(value.abs().min(1.0e6))],
        }),
        WireMsg::DomainAlert(DomainAlertMsg {
            from_host: HostId(host),
            client: pid,
            upstream,
            observed: value,
            corr,
        }),
        WireMsg::StatsQuery(StatsQueryMsg {
            reply_to: Endpoint::new(HostId(host), port),
            correlation: corr,
        }),
        WireMsg::StatsReply(StatsReplyMsg {
            host: HostId(host),
            load_avg: value.abs(),
            mem_utilization: value.abs().min(1.0),
            correlation: corr,
        }),
        WireMsg::AdjustRequest(AdjustRequestMsg { pid, steps, corr }),
        WireMsg::Adapt(AdaptMsg {
            actuator: name.clone(),
            command: text.clone(),
            value,
        }),
        WireMsg::RuleUpdate(RuleUpdateMsg {
            add: flag.then(|| text.clone()),
            remove: vec![name.clone()],
        }),
        WireMsg::LiveRegister(LiveRegisterMsg {
            process: name.clone(),
        }),
        WireMsg::LiveViolation(LiveViolationMsg {
            policy: name,
            process: text,
            at_us: token,
            corr,
            readings: rd.clone(),
        }),
        WireMsg::SyncReq { token },
        WireMsg::SyncAck { token },
        WireMsg::Bye,
        WireMsg::TelemetrySubscribe(TelemetrySubscribeMsg {
            subscriber: "qosctl-tail".into(),
            want_events: flag,
            want_metrics: !flag,
        }),
        WireMsg::TelemetryBatch(TelemetryBatchMsg {
            seq: token,
            source: "host-manager".into(),
            events: vec![TraceEvent {
                at_us: token,
                corr,
                stage: Stage::from_tag((steps.unsigned_abs() % 7) as u8).expect("tag in range"),
                component: "client-0".into(),
                name: "NotifyQoSViolation".into(),
                fields: rd,
            }],
            metrics: flag.then(|| {
                let mut h = HistogramSnapshot::empty();
                h.count = 2;
                h.sum = token % 1000;
                h.max = token % 800;
                h.buckets[0] = 1;
                h.buckets[(token % 64) as usize + 1] = 1;
                (
                    token,
                    vec![
                        MetricSnapshot {
                            family: "live.reports_sent".into(),
                            label: "client-0".into(),
                            value: MetricValue::Counter(corr),
                        },
                        MetricSnapshot {
                            family: "video.fps".into(),
                            label: "client-0".into(),
                            value: MetricValue::Gauge(value),
                        },
                        MetricSnapshot {
                            family: "lat".into(),
                            label: "".into(),
                            value: MetricValue::Histogram(Box::new(h)),
                        },
                    ],
                )
            }),
        }),
        WireMsg::DiscAnnounce(DiscAnnounceMsg {
            host: HostId(host),
            manager: Endpoint::new(HostId(host), port),
            epoch: token,
        }),
        WireMsg::DiscAssign(DiscAssignMsg {
            host: HostId(host),
            epoch: token,
            domain: DomainId(local),
            manager: Endpoint::new(HostId(host.wrapping_add(1)), port),
            lease: Dur::from_micros(token % 10_000_000),
        }),
        WireMsg::DiscLeaseRenew(DiscLeaseRenewMsg {
            host: HostId(host),
            domain: DomainId(local),
            epoch: token,
        }),
        WireMsg::DiscLeaseAck(DiscLeaseAckMsg {
            host: HostId(host),
            epoch: token,
            lease: Dur::from_micros(token % 10_000_000),
        }),
        WireMsg::DiscDomainRegister(DiscDomainRegisterMsg {
            domain: DomainId(local),
            manager: Endpoint::new(HostId(host), port),
            parent: flag.then_some(DomainId(local.wrapping_add(1))),
        }),
        WireMsg::DiscRoutes(DiscRoutesMsg {
            domain: DomainId(local),
            version: token,
            domains: vec![
                DomainInfoEntry {
                    domain: DomainId(local),
                    manager: Endpoint::new(HostId(host), port),
                    parent: None,
                },
                DomainInfoEntry {
                    domain: DomainId(local.wrapping_add(1)),
                    manager: Endpoint::new(HostId(host.wrapping_add(1)), port),
                    parent: flag.then_some(DomainId(local)),
                },
            ],
            hosts: vec![HostRouteEntry {
                host: HostId(host),
                domain: DomainId(local),
                via: Endpoint::new(HostId(host), port),
            }],
        }),
    ]
}

proptest! {
    #[test]
    fn every_kind_round_trips(
        host: u32,
        local in 0u32..1_000_000,
        port: u16,
        corr: u64,
        name in ident(),
        text in "[ -~]{0,24}",
        rd in readings(),
        value in finite_f64(),
        steps in -100i16..100,
        flag in proptest::bool::ANY,
        token: u64,
    ) {
        for msg in all_kinds(host, local, port, corr, name.clone(), text.clone(),
                             rd.clone(), value, steps, flag, token) {
            let frame = msg.encode_frame();
            prop_assert_eq!(WireMsg::decode_frame(&frame).unwrap(), msg);
        }
    }

    /// Differential: the borrowed decoder must agree with the owned
    /// decoder for every message kind — materializing a `WireMsgRef`
    /// yields exactly what `WireMsg::decode_frame` yields, including a
    /// batch frame coalescing one message of each batchable kind.
    #[test]
    fn borrowed_decode_equals_owned_decode(
        host: u32,
        local in 0u32..1_000_000,
        port: u16,
        corr: u64,
        name in ident(),
        text in "[ -~]{0,24}",
        rd in readings(),
        value in finite_f64(),
        steps in -100i16..100,
        flag in proptest::bool::ANY,
        token: u64,
    ) {
        let msgs = all_kinds(host, local, port, corr, name, text, rd, value, steps, flag, token);
        for msg in &msgs {
            let frame = msg.encode_frame();
            let view = WireMsgRef::decode_frame(&frame).unwrap();
            prop_assert_eq!(view.kind(), msg.kind());
            prop_assert_eq!(&view.to_owned_msg(), msg);
        }
        // The whole set coalesced into one batch frame, decoded both ways.
        let mut b = BatchBuilder::new();
        for msg in &msgs {
            b.push(msg);
        }
        let frame = b.finish();
        prop_assert_eq!(
            WireMsg::decode_frame(&frame).unwrap(),
            WireMsg::Batch(BatchMsg { msgs: msgs.clone() })
        );
        let WireMsgRef::Batch(batch) = WireMsgRef::decode_frame(&frame).unwrap() else {
            panic!("batch frame must decode as a batch view");
        };
        prop_assert_eq!(batch.len(), msgs.len());
        let back: Vec<WireMsg> = batch.iter().map(|m| m.to_owned_msg()).collect();
        prop_assert_eq!(back, msgs);
    }

    /// Batch frames split and re-merge losslessly: any cut point yields
    /// two valid batch frames whose concatenated contents equal the
    /// original, and merging them back produces a byte-identical frame.
    #[test]
    fn batch_split_and_merge_round_trips(
        corr: u64,
        name in ident(),
        rd in readings(),
        n_msgs in 1usize..10,
        cut_seed: u64,
    ) {
        let msgs: Vec<WireMsg> = (0..n_msgs)
            .map(|i| WireMsg::LiveViolation(LiveViolationMsg {
                policy: name.clone(),
                process: format!("{name}:{i}"),
                at_us: i as u64,
                corr: corr.wrapping_add(i as u64),
                readings: rd.clone(),
            }))
            .collect();
        let mut whole = BatchBuilder::new();
        for m in &msgs {
            whole.push(m);
        }
        let whole = whole.finish();

        let cut = (cut_seed % (n_msgs as u64 + 1)) as usize;
        let (mut left, mut right) = (BatchBuilder::new(), BatchBuilder::new());
        for m in &msgs[..cut] {
            left.push(m);
        }
        for m in &msgs[cut..] {
            right.push(m);
        }
        let (left, right) = (left.finish(), right.finish());

        // Split: the two halves iterate back to the original sequence.
        let mut back = Vec::new();
        for frame in [&left, &right] {
            let WireMsgRef::Batch(b) = WireMsgRef::decode_frame(frame).unwrap() else {
                panic!("split halves must stay batch frames");
            };
            back.extend(b.iter().map(|m| m.to_owned_msg()));
        }
        prop_assert_eq!(&back, &msgs);

        // Merge: re-coalescing the halves is byte-identical to the
        // original frame.
        let mut merged = BatchBuilder::new();
        for frame in [&left, &right] {
            let WireMsgRef::Batch(b) = WireMsgRef::decode_frame(frame).unwrap() else {
                panic!("split halves must stay batch frames");
            };
            for m in b.iter() {
                merged.push(&m.to_owned_msg());
            }
        }
        prop_assert_eq!(merged.finish(), whole);
    }

    #[test]
    fn truncation_is_a_typed_error_never_a_panic(
        name in ident(),
        rd in readings(),
        corr: u64,
        cut_seed: u64,
    ) {
        let msgs = [
            WireMsg::LiveViolation(LiveViolationMsg {
                policy: name.clone(),
                process: name.clone(),
                at_us: corr,
                corr,
                readings: rd,
            }),
            // Discovery-plane kinds get the same treatment: no prefix or
            // suffix of a control frame may panic the decoder.
            WireMsg::DiscAnnounce(DiscAnnounceMsg {
                host: HostId(7),
                manager: Endpoint::new(HostId(7), 10),
                epoch: corr,
            }),
            WireMsg::DiscRoutes(DiscRoutesMsg {
                domain: DomainId(1),
                version: corr,
                domains: vec![DomainInfoEntry {
                    domain: DomainId(1),
                    manager: Endpoint::new(HostId(0), 11),
                    parent: Some(DomainId(0)),
                }],
                hosts: vec![HostRouteEntry {
                    host: HostId(7),
                    domain: DomainId(1),
                    via: Endpoint::new(HostId(7), 10),
                }],
            }),
        ];
        for msg in msgs {
            let frame = msg.encode_frame();
            // Every proper prefix must fail cleanly, including mid-header
            // cuts — on both decode surfaces, with the same verdict.
            let cut = (cut_seed % frame.len() as u64) as usize;
            prop_assert!(WireMsg::decode_frame(&frame[..cut]).is_err());
            prop_assert!(WireMsgRef::decode_frame(&frame[..cut]).is_err());
            // And a frame with trailing junk is rejected, not silently
            // accepted.
            let mut long = frame.clone();
            long.push(0);
            prop_assert!(WireMsg::decode_frame(&long).is_err());
            prop_assert!(WireMsgRef::decode_frame(&long).is_err());
            // Same for a batch carrying the message.
            let mut b = BatchBuilder::new();
            b.push(&msg);
            let bframe = b.finish();
            let bcut = (cut_seed % bframe.len() as u64) as usize;
            prop_assert!(WireMsg::decode_frame(&bframe[..bcut]).is_err());
            prop_assert!(WireMsgRef::decode_frame(&bframe[..bcut]).is_err());
        }
    }

    #[test]
    fn mutation_never_panics(
        name in ident(),
        rd in readings(),
        corr: u64,
        at in proptest::collection::vec((0u64..10_000, 1u8..=255), 1..8),
    ) {
        let msg = WireMsg::Violation(ViolationMsg {
            pid: Pid { host: HostId(1), local: 2 },
            proc_name: name.clone(),
            policy: name,
            corr,
            readings: rd,
            bounds: None,
            upstream: None,
        });
        let mut b = BatchBuilder::new();
        b.push(&msg);
        // A discovery control message rides in the same batch, so flips
        // land on federation payloads too.
        b.push(&WireMsg::DiscAssign(DiscAssignMsg {
            host: HostId(1),
            epoch: corr,
            domain: DomainId(3),
            manager: Endpoint::new(HostId(0), 11),
            lease: Dur::from_millis(4_000),
        }));
        let mut bframe = b.finish();
        let mut frame = msg.encode_frame();
        for (pos, xor) in at {
            let ix = (pos % frame.len() as u64) as usize;
            frame[ix] ^= xor;
            let bx = (pos % bframe.len() as u64) as usize;
            bframe[bx] ^= xor;
        }
        // Decode must return (Ok for benign flips, Err for structural
        // ones) — never panic, never loop. The borrowed surface must
        // reach the same Ok/Err verdict as the owned one, and a
        // materialized Ok must be identical.
        let owned = WireMsg::decode_frame(&frame);
        match WireMsgRef::decode_frame(&frame) {
            Ok(view) => prop_assert_eq!(Ok(view.to_owned_msg()), owned),
            Err(_) => prop_assert!(owned.is_err()),
        }
        // Same for the mutated batch frame (iteration included).
        let owned_b = WireMsg::decode_frame(&bframe);
        match WireMsgRef::decode_frame(&bframe) {
            Ok(view) => prop_assert_eq!(Ok(view.to_owned_msg()), owned_b),
            Err(_) => prop_assert!(owned_b.is_err()),
        }
        // Same through the stream-reassembly path.
        let mut buf = FrameBuffer::new();
        buf.extend(&frame);
        let _ = buf.next();
    }

    #[test]
    fn frame_buffer_reassembles_chunked_streams(
        host: u32,
        corr: u64,
        name in ident(),
        rd in readings(),
        chunk in 1usize..64,
    ) {
        let msgs = vec![
            WireMsg::SyncReq { token: corr },
            WireMsg::LiveViolation(LiveViolationMsg {
                policy: name.clone(),
                process: name.clone(),
                at_us: corr,
                corr,
                readings: rd,
            }),
            WireMsg::LiveRegister(LiveRegisterMsg { process: name }),
            WireMsg::Bye,
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_frame());
        }
        prop_assert!(stream.len() > HEADER_LEN * msgs.len());
        let _ = host;
        let mut buf = FrameBuffer::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            buf.extend(piece);
            while let Some(m) = buf.next().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert!(buf.is_empty());
    }

    /// Adversarial writer: a buggify-driven fault schedule tears some
    /// frames mid-write and duplicates others, then the stream is fed
    /// to the reader in arbitrary chunk sizes. The reader must deliver
    /// every frame written cleanly before the first tear (duplicates
    /// included, in order), never panic, and terminate — desynchronised
    /// tails may surface as `WireError`s, never as hangs.
    #[test]
    fn frame_buffer_survives_buggify_torn_and_duplicated_frames(
        seed: u64,
        n_msgs in 1usize..8,
        name in ident(),
        chunk in 1usize..64,
    ) {
        qos_buggify::enable_with(seed, 0.25);
        let mut stream = Vec::new();
        let mut expected_clean = Vec::new();
        let mut desynced = false;
        for i in 0..n_msgs {
            let msg = WireMsg::LiveViolation(LiveViolationMsg {
                policy: name.clone(),
                process: name.clone(),
                at_us: i as u64,
                corr: i as u64,
                readings: vec![("frame_rate".into(), i as f64)],
            });
            let frame = msg.encode_frame();
            if qos_buggify::fire("wire.frame.tear") {
                // Half a frame, then carry on writing as a client that
                // never learned its write was cut short.
                stream.extend_from_slice(&frame[..frame.len() / 2]);
                desynced = true;
                continue;
            }
            let dup = qos_buggify::fire("wire.frame.dup");
            stream.extend_from_slice(&frame);
            if dup {
                stream.extend_from_slice(&frame);
            }
            if !desynced {
                expected_clean.push(msg.clone());
                if dup {
                    expected_clean.push(msg);
                }
            }
        }
        qos_buggify::disable();

        let mut buf = FrameBuffer::new();
        let mut got = Vec::new();
        let mut error_seen = false;
        'feed: for piece in stream.chunks(chunk) {
            buf.extend(piece);
            loop {
                match buf.next() {
                    Ok(Some(m)) => got.push(m),
                    Ok(None) => break,
                    Err(_) => {
                        // Unreframeable from here on: a real reader
                        // drops the connection at this point.
                        error_seen = true;
                        break 'feed;
                    }
                }
            }
        }
        prop_assert!(
            got.len() >= expected_clean.len(),
            "reader lost cleanly framed messages: got {}, expected at least {}",
            got.len(),
            expected_clean.len()
        );
        prop_assert_eq!(&got[..expected_clean.len()], &expected_clean[..]);
        if !desynced {
            prop_assert!(!error_seen);
            prop_assert_eq!(got.len(), expected_clean.len());
            prop_assert!(buf.is_empty());
        }
    }
}
