//! Physical-memory model: per-process resident sets over a shared frame
//! pool.
//!
//! The paper's memory resource manager adjusts "the number of resident
//! pages each process has in physical memory". We model just enough of
//! paging for that control knob to matter: a process whose resident set is
//! smaller than its working set pays a page-fault penalty on every CPU
//! burst, proportional to the deficit. The QoS memory manager can grow a
//! process's resident set from the free pool (or shrink it, returning
//! frames).

use std::collections::HashMap;

use crate::ids::Pid;
use crate::time::Dur;

/// Cost of servicing one page fault (dominated by disk latency in the
/// paper's era; kept small enough that moderate deficits degrade rather
/// than destroy throughput).
pub const PAGE_FAULT_COST: Dur = Dur::from_micros(800);

/// Per-process memory accounting.
#[derive(Clone, Copy, Debug)]
pub struct ProcMem {
    /// Pages the process actually touches while running.
    pub working_set: u32,
    /// Pages currently resident in physical memory.
    pub resident: u32,
    /// Cumulative page faults charged.
    pub faults: u64,
}

impl ProcMem {
    /// Pages missing from the resident set.
    pub fn deficit(&self) -> u32 {
        self.working_set.saturating_sub(self.resident)
    }

    /// Fraction of the working set resident, in `[0, 1]`.
    pub fn residency(&self) -> f64 {
        if self.working_set == 0 {
            1.0
        } else {
            (self.resident.min(self.working_set)) as f64 / self.working_set as f64
        }
    }
}

/// The host-wide physical memory manager.
#[derive(Debug)]
pub struct Memory {
    total_frames: u32,
    free_frames: u32,
    procs: HashMap<Pid, ProcMem>,
}

impl Memory {
    /// A memory of `total_frames` physical page frames, all free.
    pub fn new(total_frames: u32) -> Self {
        Memory {
            total_frames,
            free_frames: total_frames,
            procs: HashMap::new(),
        }
    }

    /// Total physical frames.
    pub fn total_frames(&self) -> u32 {
        self.total_frames
    }

    /// Currently unallocated frames.
    pub fn free_frames(&self) -> u32 {
        self.free_frames
    }

    /// Fraction of physical memory in use.
    pub fn utilization(&self) -> f64 {
        if self.total_frames == 0 {
            0.0
        } else {
            (self.total_frames - self.free_frames) as f64 / self.total_frames as f64
        }
    }

    /// Register a process with a working set; it initially receives as many
    /// resident frames as the free pool can supply, up to its working set.
    pub fn register(&mut self, pid: Pid, working_set: u32) {
        let grant = working_set.min(self.free_frames);
        self.free_frames -= grant;
        self.procs.insert(
            pid,
            ProcMem {
                working_set,
                resident: grant,
                faults: 0,
            },
        );
    }

    /// Release a process's frames (process exit).
    pub fn release(&mut self, pid: Pid) {
        if let Some(m) = self.procs.remove(&pid) {
            self.free_frames += m.resident;
        }
    }

    /// Adjust a process's resident set by `delta` pages. Growth is limited
    /// by the free pool; shrinkage by the current resident set. Returns the
    /// actual change applied.
    pub fn adjust_resident(&mut self, pid: Pid, delta: i64) -> i64 {
        let Some(m) = self.procs.get_mut(&pid) else {
            return 0;
        };
        if delta >= 0 {
            let grant = (delta as u64).min(self.free_frames as u64) as u32;
            m.resident += grant;
            self.free_frames -= grant;
            grant as i64
        } else {
            let take = ((-delta) as u64).min(m.resident as u64) as u32;
            m.resident -= take;
            self.free_frames += take;
            -(take as i64)
        }
    }

    /// Memory state of a process.
    pub fn info(&self, pid: Pid) -> Option<ProcMem> {
        self.procs.get(&pid).copied()
    }

    /// Page-fault penalty to add to a CPU burst of length `burst` for this
    /// process, given its current residency. A fully resident process pays
    /// nothing. The penalty scales with both the deficit and the burst
    /// length (longer bursts touch more of the working set).
    pub fn burst_penalty(&mut self, pid: Pid, burst: Dur) -> Dur {
        let Some(m) = self.procs.get_mut(&pid) else {
            return Dur::ZERO;
        };
        let deficit = m.deficit();
        if deficit == 0 || m.working_set == 0 {
            return Dur::ZERO;
        }
        // Expected faults: deficit fraction of the working set, scaled by
        // how much of the working set a burst of this length touches
        // (assume a 100 ms burst touches it all).
        let touch = (burst.as_secs_f64() / 0.1).min(1.0);
        let faults = (deficit as f64 * touch).ceil() as u64;
        m.faults += faults;
        Dur::from_micros(faults * PAGE_FAULT_COST.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    fn pid(n: u32) -> Pid {
        Pid {
            host: HostId(0),
            local: n,
        }
    }

    #[test]
    fn register_grants_up_to_free_pool() {
        let mut mem = Memory::new(100);
        mem.register(pid(1), 60);
        mem.register(pid(2), 60);
        let m1 = mem.info(pid(1)).unwrap();
        let m2 = mem.info(pid(2)).unwrap();
        assert_eq!(m1.resident, 60);
        assert_eq!(m2.resident, 40, "second proc only gets the remainder");
        assert_eq!(mem.free_frames(), 0);
        assert_eq!(m2.deficit(), 20);
    }

    #[test]
    fn adjust_resident_bounded_both_ways() {
        let mut mem = Memory::new(50);
        mem.register(pid(1), 30);
        assert_eq!(mem.free_frames(), 20);
        // Can only grow by what's free.
        assert_eq!(mem.adjust_resident(pid(1), 100), 20);
        assert_eq!(mem.free_frames(), 0);
        // Can only shrink by what's resident.
        assert_eq!(mem.adjust_resident(pid(1), -1000), -50);
        assert_eq!(mem.free_frames(), 50);
        assert_eq!(mem.adjust_resident(pid(99), 5), 0, "unknown pid is a no-op");
    }

    #[test]
    fn release_returns_frames() {
        let mut mem = Memory::new(40);
        mem.register(pid(1), 40);
        assert_eq!(mem.free_frames(), 0);
        mem.release(pid(1));
        assert_eq!(mem.free_frames(), 40);
        assert!(mem.info(pid(1)).is_none());
    }

    #[test]
    fn fully_resident_pays_no_penalty() {
        let mut mem = Memory::new(100);
        mem.register(pid(1), 50);
        assert_eq!(mem.burst_penalty(pid(1), Dur::from_millis(50)), Dur::ZERO);
        assert_eq!(mem.info(pid(1)).unwrap().faults, 0);
    }

    #[test]
    fn deficit_incurs_fault_penalty_scaled_by_burst() {
        let mut mem = Memory::new(30);
        mem.register(pid(1), 50); // resident 30, deficit 20
        let long = mem.burst_penalty(pid(1), Dur::from_millis(100));
        // 20 faults * 800us = 16ms.
        assert_eq!(long, Dur::from_micros(20 * 800));
        let short = mem.burst_penalty(pid(1), Dur::from_millis(10));
        assert!(
            short < long,
            "shorter burst touches less of the working set"
        );
        assert!(mem.info(pid(1)).unwrap().faults >= 22);
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut mem = Memory::new(100);
        assert_eq!(mem.utilization(), 0.0);
        mem.register(pid(1), 25);
        assert!((mem.utilization() - 0.25).abs() < 1e-12);
    }
}
