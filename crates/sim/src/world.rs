//! The simulation world: hosts + network + the global event loop.
//!
//! `World` owns everything and processes events in deterministic
//! `(time, sequence)` order. All scheduling transitions (dispatch,
//! preemption, quantum expiry, starvation boost) happen here, against the
//! state stored in [`crate::host::Host`].

use crate::event::{Event, EventQueue, Message, ProcEvent};
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::host::{Host, ProcSlot, ProcState, Running, SocketPush};
use crate::ids::{Endpoint, HostId, Pid};
use crate::net::Network;
use crate::proc::{Ctx, PriocntlCmd, ProcConfig, ProcessLogic, Syscall};
use crate::rng::Rng;
use crate::sched::{SchedClass, TsState, RT_QUANTUM};
use crate::time::{Dur, SimTime};
use qos_telemetry::{Counter, Gauge, Telemetry};

/// Interval of per-host bookkeeping (load sampling, starvation boost, RT
/// budget windows).
const HOST_TICK: Dur = Dur::from_secs(1);

/// The complete simulated distributed system.
pub struct World {
    now: SimTime,
    queue: EventQueue,
    hosts: Vec<Host>,
    net: Network,
    rng: Rng,
    events_processed: u64,
    /// Hosts whose CPU needs a dispatch/preemption decision at the end of
    /// the current timestamp's event batch. Deferring the decision until
    /// every simultaneous event has been processed lets a process that
    /// finishes a burst and immediately issues another one keep the CPU
    /// (it is one logical stretch of computation), instead of leaking a
    /// full quantum to a competitor through a zero-width gap.
    need_dispatch: Vec<u32>,
    /// Optional bounded event trace filled by [`Ctx::log`]; `None` keeps
    /// logging free.
    trace: Option<Trace>,
    /// Optional fault-injection schedule; `None` keeps sends free.
    fault: Option<FaultInjector>,
    /// Pre-resolved telemetry handles; `None` keeps the event loop free
    /// of probe overhead.
    probes: Option<SimProbes>,
}

/// Simulator-side telemetry: sampled once per host tick (event-queue
/// depth, events/sec, per-class scheduler occupancy) and incremented on
/// the cold fault paths, so the hot event loop carries no probe cost
/// beyond one `Option` check at sites that already branch.
struct SimProbes {
    telemetry: Telemetry,
    queue_depth: Gauge,
    events_per_sec: Gauge,
    events_total: Counter,
    fault_dropped: Counter,
    fault_duplicated: Counter,
    fault_delayed: Counter,
    fault_kills: Counter,
    /// Per-host (time-share, real-time) runnable-occupancy gauges.
    occupancy: Vec<(Gauge, Gauge)>,
    last_events: u64,
    last_at: SimTime,
}

/// A bounded trace of process log lines, for debugging scenarios.
#[derive(Debug, Default)]
pub struct Trace {
    entries: std::collections::VecDeque<(SimTime, Pid, String)>,
    capacity: usize,
}

impl Trace {
    pub(crate) fn push(&mut self, t: SimTime, pid: Pid, line: String) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((t, pid, line));
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(SimTime, Pid, String)> {
        self.entries.iter()
    }

    /// Render the trace as text, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, pid, line) in &self.entries {
            out.push_str(&format!(
                "[{t}] {pid}: {line}
"
            ));
        }
        out
    }
}

impl World {
    /// Create an empty world. Every random draw in the run derives from
    /// `seed`, so identical setups replay identically.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let net_rng = rng.fork();
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            hosts: Vec::new(),
            net: Network::new(net_rng),
            rng,
            events_processed: 0,
            need_dispatch: Vec::new(),
            trace: None,
            fault: None,
            probes: None,
        }
    }

    /// Attach a telemetry handle: the world then samples event-queue
    /// depth, events/sec and per-class scheduler occupancy into the
    /// registry on every host tick, and counts injected faults as
    /// `sim.fault.*` series. A disabled handle detaches the probes.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.probes = t.is_enabled().then(|| SimProbes {
            telemetry: t.clone(),
            queue_depth: t.gauge("sim.queue_depth", ""),
            events_per_sec: t.gauge("sim.events_per_sec", ""),
            events_total: t.counter("sim.events", ""),
            fault_dropped: t.counter("sim.fault.msgs_dropped", ""),
            fault_duplicated: t.counter("sim.fault.msgs_duplicated", ""),
            fault_delayed: t.counter("sim.fault.msgs_delayed", ""),
            fault_kills: t.counter("sim.fault.kills", ""),
            occupancy: Vec::new(),
            last_events: self.events_processed,
            last_at: self.now,
        });
    }

    /// Enable process logging into a bounded trace of `capacity` lines
    /// (oldest entries are evicted). Disabled by default: [`Ctx::log`] is
    /// then free. Idempotent: re-enabling keeps recorded entries and
    /// only adjusts the capacity (shrinking evicts the oldest lines).
    pub fn enable_trace(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        match self.trace.as_mut() {
            Some(t) => {
                t.capacity = capacity;
                while t.entries.len() > capacity {
                    t.entries.pop_front();
                }
            }
            None => {
                self.trace = Some(Trace {
                    entries: std::collections::VecDeque::with_capacity(capacity),
                    capacity,
                })
            }
        }
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Install a seeded fault-injection schedule. Scheduled kills are
    /// enqueued immediately; message faults apply to every subsequent
    /// send. The injector draws from a stream forked off the world seed,
    /// so a faulted run replays exactly. Installing a new plan replaces
    /// the old one and resets [`World::fault_stats`].
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for &(at, pid) in plan.kills() {
            self.queue.push(at, Event::FaultKill { pid });
        }
        let rng = self.rng.fork();
        self.fault = Some(FaultInjector::new(plan, rng));
    }

    /// Counters of faults injected so far (zero if no plan installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Forcibly terminate a process, as if it crashed: it loses the CPU,
    /// its pending events and timers die with it, its memory is released
    /// and its ports close. Idempotent; unknown pids are ignored.
    pub fn kill(&mut self, pid: Pid) {
        self.kill_proc(pid);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Add a host with `frames` pages of physical memory.
    pub fn add_host(&mut self, name: impl Into<String>, frames: u32) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host::new(id, name.into(), frames));
        self.queue
            .push(self.now + HOST_TICK, Event::HostTick { host: id });
        id
    }

    /// Shared network (topology building, fault injection, statistics).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable network access.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Immutable host access.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// All host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// Spawn a process. It receives [`ProcEvent::Start`] at the current
    /// simulation time.
    pub fn spawn(
        &mut self,
        host: HostId,
        config: ProcConfig,
        logic: impl ProcessLogic + 'static,
    ) -> Pid {
        self.spawn_boxed(host, config, Box::new(logic))
    }

    pub(crate) fn spawn_boxed(
        &mut self,
        host: HostId,
        config: ProcConfig,
        logic: Box<dyn ProcessLogic>,
    ) -> Pid {
        let hid = host.0 as usize;
        let pid = Pid {
            host,
            local: self.hosts[hid].procs.len() as u32,
        };
        let proc_rng = self.rng.fork();
        let h = &mut self.hosts[hid];
        h.mem.register(pid, config.working_set);
        for &(port, cap) in &config.ports {
            h.bind(pid, port, cap);
        }
        let mut pending = std::collections::VecDeque::new();
        pending.push_back(ProcEvent::Start);
        h.procs.push(ProcSlot {
            name: config.name,
            state: ProcState::Waiting,
            logic: Some(logic),
            class: config.class,
            ts: TsState::new(),
            quantum_rem: Dur::from_millis(100),
            burst_rem: Dur::ZERO,
            pending,
            deliver_scheduled: true,
            cpu_time: Dur::ZERO,
            waiting_since: self.now,
            rt_used: Dur::ZERO,
            rt_exhausted: false,
            rng: proc_rng,
        });
        self.queue.push(self.now, Event::Deliver { pid });
        pid
    }

    /// Downcast a process's logic for post-run metric extraction.
    pub fn logic<T: 'static>(&self, pid: Pid) -> Option<&T> {
        self.hosts[pid.host.0 as usize]
            .slot(pid)?
            .logic
            .as_deref()?
            .as_any()
            .downcast_ref()
    }

    /// Mutable variant of [`World::logic`].
    pub fn logic_mut<T: 'static>(&mut self, pid: Pid) -> Option<&mut T> {
        self.hosts[pid.host.0 as usize]
            .slot_mut(pid)?
            .logic
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut()
    }

    /// Run the simulation up to (and including) time `t`.
    ///
    /// Events sharing a timestamp are processed as one batch (in
    /// deterministic order); CPU dispatch and preemption decisions run
    /// after the batch, once every simultaneous state change is visible.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(batch_time) = self.queue.peek_time() {
            if batch_time > t {
                break;
            }
            debug_assert!(batch_time >= self.now, "time went backwards");
            self.now = batch_time;
            loop {
                // Drain every event at this timestamp (handlers may add
                // more at the same instant).
                while self.queue.peek_time() == Some(batch_time) {
                    let q = self.queue.pop().expect("peeked event vanished");
                    self.events_processed += 1;
                    self.handle(q.event);
                }
                // Dispatch pass; it can complete bursts at this instant,
                // which queues more events — loop until quiescent.
                if self.need_dispatch.is_empty() {
                    break;
                }
                let hosts = std::mem::take(&mut self.need_dispatch);
                for hid in hosts {
                    self.balance(hid as usize);
                }
            }
        }
        self.now = t;
    }

    /// Run the simulation for `d` more simulated time.
    pub fn run_for(&mut self, d: Dur) {
        self.run_until(self.now + d);
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::CpuTick { host, token } => self.on_cpu_tick(host, token),
            Event::Deliver { pid } => self.deliver_one(pid),
            // Timers are signal-like: they jump ahead of queued I/O
            // events, so a backlogged process still gets its periodic
            // housekeeping (sensor ticks, renotification polls) on time.
            Event::Timer { pid, tag } => {
                self.push_pending_front(pid, ProcEvent::Timer(tag));
            }
            Event::NetArrive { msg } => self.on_net_arrive(msg),
            Event::HostTick { host } => self.on_host_tick(host),
            Event::FaultKill { pid } => {
                let alive = self
                    .hosts
                    .get(pid.host.0 as usize)
                    .and_then(|h| h.procs.get(pid.local as usize))
                    .is_some_and(|s| s.state != ProcState::Dead);
                if alive {
                    if let Some(inj) = self.fault.as_mut() {
                        inj.record_kill();
                    }
                    if let Some(p) = &self.probes {
                        p.fault_kills.inc();
                    }
                    self.kill_proc(pid);
                }
            }
        }
    }

    fn on_cpu_tick(&mut self, host: HostId, token: u64) {
        let hid = host.0 as usize;
        if self.hosts[hid].cpu_token != token {
            return; // stale: the slice was preempted or cancelled
        }
        let run = self.hosts[hid]
            .running
            .take()
            .expect("valid CpuTick with no running process");
        self.hosts[hid].cpu_token += 1;
        let elapsed = self.now.since(run.since);
        debug_assert_eq!(elapsed, run.slice, "tick must fire at slice end");
        let burst_done = self.charge(run.pid, elapsed);
        if burst_done {
            self.finish_burst(run.pid);
        } else {
            // Quantum expiry: migrate priority per the dispatch table and
            // requeue at the back of the new level. An RT process that
            // exhausted its budget is parked until the window rolls over.
            let h = &mut self.hosts[hid];
            let slot = h.procs.get_mut(run.pid.local as usize).expect("slot");
            match slot.class {
                SchedClass::TimeShare => {
                    let new_pri = h.table.entry(slot.ts.cpupri).tqexp;
                    slot.ts.cpupri = new_pri;
                    slot.quantum_rem = h.table.entry(new_pri).quantum;
                }
                SchedClass::RealTime { .. } => {
                    slot.quantum_rem = RT_QUANTUM;
                }
            }
            slot.state = ProcState::Ready;
            if slot.rt_exhausted {
                h.parked.push(run.pid);
            } else {
                let level = slot.level();
                h.ready.push_back(level, run.pid, self.now);
            }
        }
        self.mark_dispatch(hid);
    }

    fn on_net_arrive(&mut self, msg: Message) {
        let hid = msg.dst.host.0 as usize;
        if hid >= self.hosts.len() {
            return; // destination host does not exist; drop silently
        }
        match self.hosts[hid].socket_push(msg) {
            SocketPush::Delivered { owner, port } => {
                self.push_pending(owner, ProcEvent::Readable(port));
            }
            SocketPush::BufferFull | SocketPush::NoSuchPort => {}
        }
    }

    fn on_host_tick(&mut self, host: HostId) {
        let hid = host.0 as usize;
        // 1. Starvation boost for long-waiting ready processes.
        let maxwait = self.hosts[hid].table.maxwait;
        let starved = self.hosts[hid].ready.drain_starved(self.now, maxwait);
        for pid in starved {
            let h = &mut self.hosts[hid];
            let slot = h.procs.get_mut(pid.local as usize).expect("slot");
            if let SchedClass::TimeShare = slot.class {
                let lwait = h.table.entry(slot.ts.cpupri).lwait;
                slot.ts.cpupri = lwait;
                slot.quantum_rem = h.table.entry(lwait).quantum;
            }
            let level = slot.level();
            h.ready.push_back(level, pid, self.now);
        }
        // 2. Load-average sample (EMA) and raw runnable-count sample.
        let h = &mut self.hosts[hid];
        let runnable = h.runnable();
        h.load.sample(runnable);
        let load = h.load.value();
        h.load_series.push(self.now, load);
        h.runnable_series.push(self.now, runnable as f64);
        // 3. RT budget window roll-over: replenish budgets and release
        // parked processes back to their RT level.
        for slot in h.procs.iter_mut() {
            if let SchedClass::RealTime {
                budget: Some(_), ..
            } = slot.class
            {
                slot.rt_used = Dur::ZERO;
                slot.rt_exhausted = false;
            }
        }
        for pid in std::mem::take(&mut h.parked) {
            let h = &mut self.hosts[hid];
            let level = h.procs[pid.local as usize].level();
            h.ready.push_back(level, pid, self.now);
        }
        // 4. Telemetry sample: per-class scheduler occupancy for this
        // host; world-wide series once per tick round (host 0).
        if let Some(p) = self.probes.as_mut() {
            while p.occupancy.len() <= hid {
                let n = p.occupancy.len();
                p.occupancy.push((
                    p.telemetry.gauge("sim.occupancy", &format!("h{n}:ts")),
                    p.telemetry.gauge("sim.occupancy", &format!("h{n}:rt")),
                ));
            }
            let (mut ts_n, mut rt_n) = (0u32, 0u32);
            for slot in self.hosts[hid].procs.iter() {
                if matches!(slot.state, ProcState::Ready | ProcState::Running) {
                    match slot.class {
                        SchedClass::TimeShare => ts_n += 1,
                        SchedClass::RealTime { .. } => rt_n += 1,
                    }
                }
            }
            p.occupancy[hid].0.set(ts_n as f64);
            p.occupancy[hid].1.set(rt_n as f64);
            if hid == 0 {
                p.queue_depth.set(self.queue.len() as f64);
                let delta = self.events_processed - p.last_events;
                p.events_total.add(delta);
                let dt = self.now.since(p.last_at).as_secs_f64();
                if dt > 0.0 {
                    p.events_per_sec.set(delta as f64 / dt);
                }
                p.last_events = self.events_processed;
                p.last_at = self.now;
            }
        }
        // 5. The boosts may warrant a preemption.
        self.mark_dispatch(hid);
        // 6. Next tick, with ±10% jitter so the sampler cannot phase-lock
        // with periodic workloads (e.g. a video client whose decode
        // window would otherwise always miss the sampling instant).
        let jitter = self.rng.range_f64(0.9, 1.1);
        self.queue.push(
            self.now + HOST_TICK.mul_f64(jitter),
            Event::HostTick { host },
        );
    }

    // ------------------------------------------------------------------
    // Scheduling primitives
    // ------------------------------------------------------------------

    /// Charge CPU time to a process; returns true when its burst is done.
    fn charge(&mut self, pid: Pid, elapsed: Dur) -> bool {
        let h = &mut self.hosts[pid.host.0 as usize];
        h.cpu_busy += elapsed;
        let slot = h.procs.get_mut(pid.local as usize).expect("slot");
        slot.cpu_time += elapsed;
        slot.burst_rem = slot.burst_rem.saturating_sub(elapsed);
        slot.quantum_rem = slot.quantum_rem.saturating_sub(elapsed);
        if let SchedClass::RealTime {
            budget: Some(b), ..
        } = slot.class
        {
            slot.rt_used += elapsed;
            if slot.rt_used >= b.per_window {
                slot.rt_exhausted = true;
            }
        }
        slot.burst_rem.is_zero()
    }

    /// Transition a process whose burst completed back to waiting and
    /// queue its `BurstDone` event. The completion is delivered *before*
    /// any events that arrived while the burst was running — the process
    /// returns from its computation before it can look at new input.
    fn finish_burst(&mut self, pid: Pid) {
        let h = &mut self.hosts[pid.host.0 as usize];
        let slot = h.procs.get_mut(pid.local as usize).expect("slot");
        slot.state = ProcState::Waiting;
        slot.waiting_since = self.now;
        slot.pending.push_front(ProcEvent::BurstDone);
        if !slot.deliver_scheduled {
            slot.deliver_scheduled = true;
            self.queue.push(self.now, Event::Deliver { pid });
        }
    }

    /// Make a waiting process with a pending burst runnable. A process
    /// that comes back immediately (no real sleep) is continuing one
    /// logical stretch of CPU-bound work, so it keeps its turn at the
    /// front of its level instead of re-queueing behind everyone with a
    /// full quantum of service left.
    fn make_runnable(&mut self, pid: Pid) {
        let hid = pid.host.0 as usize;
        let (level, slept) = self.hosts[hid].wake_level(pid, self.now);
        let h = &mut self.hosts[hid];
        let slot = h.procs.get_mut(pid.local as usize).expect("slot");
        debug_assert_eq!(slot.state, ProcState::Waiting);
        slot.state = ProcState::Ready;
        if slot.rt_exhausted {
            h.parked.push(pid);
        } else {
            if slept {
                h.ready.push_back(level, pid, self.now);
            } else {
                h.ready.push_front(level, pid, self.now);
            }
            self.mark_dispatch(hid);
        }
    }

    /// Note that a host needs a dispatch/preemption decision at the end
    /// of the current event batch.
    fn mark_dispatch(&mut self, hid: usize) {
        let hid32 = hid as u32;
        if !self.need_dispatch.contains(&hid32) {
            self.need_dispatch.push(hid32);
        }
    }

    /// End-of-batch CPU decision: preempt if a stronger process is ready,
    /// then fill an idle CPU.
    fn balance(&mut self, hid: usize) {
        let h = &self.hosts[hid];
        if let (Some(run), Some(best)) = (h.running, h.ready.best_level()) {
            if best > run.level {
                self.preempt_current(hid);
            }
        }
        self.dispatch(hid);
    }

    /// Dispatch the best ready process if the CPU is idle.
    fn dispatch(&mut self, hid: usize) {
        let now = self.now;
        let h = &mut self.hosts[hid];
        if h.running.is_some() {
            return;
        }
        let Some((level, pid)) = h.ready.pop_best() else {
            return;
        };
        let slot = h.procs.get_mut(pid.local as usize).expect("slot");
        debug_assert_eq!(slot.state, ProcState::Ready);
        slot.state = ProcState::Running;
        let slice = slot.quantum_rem.min(slot.burst_rem);
        debug_assert!(!slice.is_zero(), "dispatch with zero slice");
        h.cpu_token += 1;
        let token = h.cpu_token;
        h.running = Some(Running {
            pid,
            level,
            since: now,
            slice,
        });
        self.queue.push(
            now + slice,
            Event::CpuTick {
                host: HostId(hid as u32),
                token,
            },
        );
    }

    /// Take the running process off the CPU, charging it for the time
    /// used. It keeps its remaining quantum and rejoins the front of its
    /// level (it did not voluntarily yield).
    fn preempt_current(&mut self, hid: usize) {
        let Some(run) = self.hosts[hid].running.take() else {
            return;
        };
        self.hosts[hid].cpu_token += 1;
        let elapsed = self.now.since(run.since);
        let done = self.charge(run.pid, elapsed);
        if done {
            self.finish_burst(run.pid);
        } else {
            let h = &mut self.hosts[hid];
            let slot = h.procs.get_mut(run.pid.local as usize).expect("slot");
            slot.state = ProcState::Ready;
            // Preempted at the exact instant its quantum ran out: treat as
            // a quantum expiry so it never re-enters with a zero slice.
            let expired = slot.quantum_rem.is_zero();
            if expired {
                match slot.class {
                    SchedClass::TimeShare => {
                        let new_pri = h.table.entry(slot.ts.cpupri).tqexp;
                        slot.ts.cpupri = new_pri;
                        slot.quantum_rem = h.table.entry(new_pri).quantum;
                    }
                    SchedClass::RealTime { .. } => slot.quantum_rem = RT_QUANTUM,
                }
            }
            if slot.rt_exhausted {
                h.parked.push(run.pid);
            } else {
                let level = slot.level();
                if expired {
                    h.ready.push_back(level, run.pid, self.now);
                } else {
                    h.ready.push_front(level, run.pid, self.now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Process event delivery
    // ------------------------------------------------------------------

    fn push_pending(&mut self, pid: Pid, ev: ProcEvent) {
        self.push_pending_at(pid, ev, false);
    }

    fn push_pending_front(&mut self, pid: Pid, ev: ProcEvent) {
        self.push_pending_at(pid, ev, true);
    }

    fn push_pending_at(&mut self, pid: Pid, ev: ProcEvent, front: bool) {
        let h = &mut self.hosts[pid.host.0 as usize];
        let Some(slot) = h.procs.get_mut(pid.local as usize) else {
            return;
        };
        if slot.state == ProcState::Dead {
            return;
        }
        if front {
            slot.pending.push_front(ev);
        } else {
            slot.pending.push_back(ev);
        }
        if slot.state == ProcState::Waiting && !slot.deliver_scheduled {
            slot.deliver_scheduled = true;
            self.queue.push(self.now, Event::Deliver { pid });
        }
    }

    fn deliver_one(&mut self, pid: Pid) {
        let hid = pid.host.0 as usize;
        let slot = self.hosts[hid]
            .procs
            .get_mut(pid.local as usize)
            .expect("slot");
        slot.deliver_scheduled = false;
        if slot.state != ProcState::Waiting {
            // It became runnable in the meantime; remaining events will be
            // delivered when it next waits.
            return;
        }
        let Some(ev) = slot.pending.pop_front() else {
            return;
        };
        self.invoke(pid, ev);
        let slot = self.hosts[hid]
            .procs
            .get_mut(pid.local as usize)
            .expect("slot");
        if slot.state == ProcState::Waiting && !slot.pending.is_empty() && !slot.deliver_scheduled {
            slot.deliver_scheduled = true;
            self.queue.push(self.now, Event::Deliver { pid });
        }
    }

    fn invoke(&mut self, pid: Pid, ev: ProcEvent) {
        let hid = pid.host.0 as usize;
        let host = &mut self.hosts[hid];
        let slot = host.procs.get_mut(pid.local as usize).expect("slot");
        let mut logic = slot.logic.take().expect("re-entrant process invocation");
        let mut rng = std::mem::replace(&mut slot.rng, Rng::new(0));
        let mut ctx = Ctx {
            now: self.now,
            pid,
            host,
            rng: &mut rng,
            syscalls: Vec::new(),
            blocking_issued: false,
            log_lines: Vec::new(),
            logging: self.trace.is_some(),
        };
        logic.on_event(&mut ctx, ev);
        let syscalls = ctx.syscalls;
        let log_lines = ctx.log_lines;
        let slot = self.hosts[hid]
            .procs
            .get_mut(pid.local as usize)
            .expect("slot");
        slot.logic = Some(logic);
        slot.rng = rng;
        if let Some(trace) = self.trace.as_mut() {
            for line in log_lines {
                trace.push(self.now, pid, line);
            }
        }
        self.apply_syscalls(pid, syscalls);
    }

    fn apply_syscalls(&mut self, pid: Pid, syscalls: Vec<Syscall>) {
        for sc in syscalls {
            match sc {
                Syscall::Run(d) => {
                    let hid = pid.host.0 as usize;
                    let penalty = self.hosts[hid].mem.burst_penalty(pid, d);
                    let total = d + penalty;
                    if total.is_zero() {
                        self.push_pending(pid, ProcEvent::BurstDone);
                    } else {
                        let slot = self.hosts[hid]
                            .procs
                            .get_mut(pid.local as usize)
                            .expect("slot");
                        if slot.state == ProcState::Dead {
                            continue;
                        }
                        slot.burst_rem = total;
                        self.make_runnable(pid);
                    }
                }
                Syscall::SetTimer(d, tag) => {
                    self.queue.push(self.now + d, Event::Timer { pid, tag });
                }
                Syscall::Send {
                    dst,
                    src_port,
                    bytes,
                    payload,
                } => {
                    let now = self.now;
                    let verdict = self.fault.as_mut().map(|inj| inj.on_send(&dst, now));
                    if verdict.is_some_and(|v| v.dropped) {
                        if let Some(p) = &self.probes {
                            p.fault_dropped.inc();
                        }
                        continue;
                    }
                    let extra = verdict.map_or(Dur::ZERO, |v| v.extra_delay);
                    if let Some(p) = &self.probes {
                        if verdict.is_some_and(|v| v.duplicate) {
                            p.fault_duplicated.inc();
                        }
                        if !extra.is_zero() {
                            p.fault_delayed.inc();
                        }
                    }
                    let msg = Message {
                        src: Endpoint::new(pid.host, src_port),
                        dst,
                        bytes,
                        sent_at: self.now,
                        payload,
                    };
                    // A duplicated message is a second packet: it takes
                    // its own trip through the network model (own
                    // queueing and jitter draws).
                    if verdict.is_some_and(|v| v.duplicate) {
                        let copy = msg.clone();
                        if let Some(arrival) = self.net.transit(&copy, self.now) {
                            self.queue
                                .push(arrival + extra, Event::NetArrive { msg: copy });
                        }
                    }
                    if let Some(arrival) = self.net.transit(&msg, self.now) {
                        self.queue.push(arrival + extra, Event::NetArrive { msg });
                    }
                }
                Syscall::Exit => self.kill_proc(pid),
                Syscall::Priocntl { target, cmd } => self.do_priocntl(target, cmd),
                Syscall::MemCtl {
                    target,
                    delta_pages,
                } => {
                    self.hosts[target.host.0 as usize]
                        .mem
                        .adjust_resident(target, delta_pages);
                }
                Syscall::Reroute { a, b, hops } => {
                    self.net.set_route_symmetric(a, b, hops);
                }
                Syscall::Spawn {
                    host,
                    config,
                    logic,
                } => {
                    self.spawn_boxed(host, config, logic);
                }
                Syscall::Kill(target) => self.kill_proc(target),
            }
        }
    }

    fn do_priocntl(&mut self, target: Pid, cmd: PriocntlCmd) {
        let hid = target.host.0 as usize;
        let Some(slot) = self.hosts[hid].procs.get_mut(target.local as usize) else {
            return;
        };
        if slot.state == ProcState::Dead {
            return;
        }
        match cmd {
            PriocntlCmd::SetUpri(v) => slot.ts.upri = v.clamp(-60, 60),
            PriocntlCmd::AdjustUpri(d) => {
                slot.ts.upri = (slot.ts.upri + d).clamp(-60, 60);
            }
            PriocntlCmd::SetClass(c) => {
                slot.class = c;
                slot.rt_used = Dur::ZERO;
                slot.rt_exhausted = false;
            }
        }
        let new_level = slot.level();
        match slot.state {
            ProcState::Ready => {
                let h = &mut self.hosts[hid];
                let exhausted = h.procs[target.local as usize].rt_exhausted;
                if exhausted {
                    // Still budget-parked; the new priority applies when
                    // the window rolls over.
                } else {
                    // Whether it sat in the ready queues or the RT parking
                    // lot, it re-enters the ready queues at its new level
                    // (a class change clears budget exhaustion).
                    h.unpark(target);
                    h.ready.remove(target);
                    h.ready.push_back(new_level, target, self.now);
                    self.mark_dispatch(hid);
                }
            }
            ProcState::Running => {
                let h = &mut self.hosts[hid];
                if let Some(run) = h.running.as_mut() {
                    if run.pid == target {
                        run.level = new_level;
                    }
                }
                self.mark_dispatch(hid);
            }
            ProcState::Waiting | ProcState::Dead => {}
        }
    }

    fn kill_proc(&mut self, pid: Pid) {
        let hid = pid.host.0 as usize;
        let Some(slot) = self.hosts[hid].procs.get_mut(pid.local as usize) else {
            return;
        };
        if slot.state == ProcState::Dead {
            return;
        }
        // If it is on the CPU, charge what it used and free the CPU.
        if let Some(run) = self.hosts[hid].running {
            if run.pid == pid {
                self.hosts[hid].running = None;
                self.hosts[hid].cpu_token += 1;
                let elapsed = self.now.since(run.since);
                self.charge(pid, elapsed);
            }
        }
        let h = &mut self.hosts[hid];
        let slot = h.procs.get_mut(pid.local as usize).expect("slot");
        slot.state = ProcState::Dead;
        slot.pending.clear();
        h.ready.remove(pid);
        h.unpark(pid);
        h.mem.release(pid);
        h.sockets.retain(|_, s| s.owner != pid);
        self.mark_dispatch(hid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProcEvent;
    use crate::sched::RtBudget;

    /// Runs `bursts` bursts of `burst` CPU each, back to back, counting
    /// completions.
    struct Cruncher {
        burst: Dur,
        bursts: u32,
        done: u32,
    }

    impl ProcessLogic for Cruncher {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => ctx.run(self.burst),
                ProcEvent::BurstDone => {
                    self.done += 1;
                    if self.done < self.bursts {
                        ctx.run(self.burst);
                    }
                }
                _ => {}
            }
        }
    }

    /// Periodically does small bursts; records completion latencies.
    struct Interactive {
        period: Dur,
        work: Dur,
        issued_at: SimTime,
        latencies: Vec<Dur>,
    }

    impl ProcessLogic for Interactive {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start | ProcEvent::Timer(_) => {
                    self.issued_at = ctx.now();
                    ctx.run(self.work);
                }
                ProcEvent::BurstDone => {
                    self.latencies.push(ctx.now().since(self.issued_at));
                    ctx.set_timer(self.period, 0);
                }
                _ => {}
            }
        }
    }

    /// Infinite CPU hog (very long bursts chained).
    struct Hog;
    impl ProcessLogic for Hog {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start | ProcEvent::BurstDone => ctx.run(Dur::from_secs(100)),
                _ => {}
            }
        }
    }

    #[test]
    fn single_burst_completes_on_time() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        let pid = w.spawn(
            h,
            ProcConfig::new("cruncher"),
            Cruncher {
                burst: Dur::from_millis(10),
                bursts: 1,
                done: 0,
            },
        );
        w.run_for(Dur::from_millis(50));
        let c: &Cruncher = w.logic(pid).unwrap();
        assert_eq!(c.done, 1);
        assert_eq!(w.host(h).proc_cpu_time(pid).unwrap(), Dur::from_millis(10));
    }

    #[test]
    fn two_crunchers_share_cpu() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        let a = w.spawn(
            h,
            ProcConfig::new("a"),
            Cruncher {
                burst: Dur::from_millis(500),
                bursts: 4,
                done: 0,
            },
        );
        let b = w.spawn(
            h,
            ProcConfig::new("b"),
            Cruncher {
                burst: Dur::from_millis(500),
                bursts: 4,
                done: 0,
            },
        );
        w.run_for(Dur::from_secs(10));
        assert_eq!(w.logic::<Cruncher>(a).unwrap().done, 4);
        assert_eq!(w.logic::<Cruncher>(b).unwrap().done, 4);
        // Total CPU consumed is exactly the demand.
        let total = w.host(h).proc_cpu_time(a).unwrap() + w.host(h).proc_cpu_time(b).unwrap();
        assert_eq!(total, Dur::from_secs(4));
    }

    #[test]
    fn interactive_process_preempts_hog() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        w.spawn(h, ProcConfig::new("hog"), Hog);
        let i = w.spawn(
            h,
            ProcConfig::new("inter"),
            Interactive {
                period: Dur::from_millis(100),
                work: Dur::from_millis(2),
                issued_at: SimTime::ZERO,
                latencies: Vec::new(),
            },
        );
        w.run_for(Dur::from_secs(20));
        let inter: &Interactive = w.logic(i).unwrap();
        assert!(inter.latencies.len() > 100, "got {}", inter.latencies.len());
        // After warm-up, sleep-return boosts should give the interactive
        // process low latency most of the time despite the hog.
        let fast = inter
            .latencies
            .iter()
            .skip(20)
            .filter(|&&l| l <= Dur::from_millis(30))
            .count();
        let total = inter.latencies.len() - 20;
        assert!(
            fast * 10 >= total * 7,
            "only {fast}/{total} interactive bursts were fast"
        );
    }

    #[test]
    fn hog_sinks_to_low_priority() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        let hog = w.spawn(h, ProcConfig::new("hog"), Hog);
        w.run_for(Dur::from_secs(5));
        let slot = w.host(h).slot(hog).unwrap();
        assert!(slot.ts.cpupri <= 10, "hog cpupri {}", slot.ts.cpupri);
    }

    #[test]
    fn rt_class_dominates_ts() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        w.spawn(h, ProcConfig::new("hog"), Hog);
        let i = w.spawn(
            h,
            ProcConfig::new("rt").class(SchedClass::RealTime {
                rtpri: 10,
                budget: None,
            }),
            Interactive {
                period: Dur::from_millis(50),
                work: Dur::from_millis(5),
                issued_at: SimTime::ZERO,
                latencies: Vec::new(),
            },
        );
        w.run_for(Dur::from_secs(10));
        let inter: &Interactive = w.logic(i).unwrap();
        assert!(!inter.latencies.is_empty());
        // RT always preempts immediately: every burst takes exactly its
        // own CPU time.
        for &l in &inter.latencies {
            assert_eq!(l, Dur::from_millis(5));
        }
    }

    #[test]
    fn rt_budget_is_enforced() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        // RT process wants 100% CPU but is budgeted to 30% per second.
        let rt = w.spawn(
            h,
            ProcConfig::new("rt").class(SchedClass::RealTime {
                rtpri: 5,
                budget: Some(RtBudget {
                    per_window: Dur::from_millis(300),
                    window: Dur::from_secs(1),
                }),
            }),
            Hog,
        );
        let ts = w.spawn(h, ProcConfig::new("ts"), Hog);
        w.run_for(Dur::from_secs(10));
        let rt_time = w.host(h).proc_cpu_time(rt).unwrap().as_secs_f64();
        let ts_time = w.host(h).proc_cpu_time(ts).unwrap().as_secs_f64();
        assert!(
            (rt_time - 3.0).abs() < 0.5,
            "rt should get ~30%: got {rt_time}s of 10s"
        );
        assert!(ts_time > 6.0, "ts gets the rest: got {ts_time}s");
    }

    #[test]
    fn load_average_tracks_hogs() {
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        for _ in 0..4 {
            w.spawn(h, ProcConfig::new("hog"), Hog);
        }
        w.run_for(Dur::from_secs(300));
        let load = w.host(h).load_avg();
        assert!((load - 4.0).abs() < 0.3, "load {load}");
    }

    #[test]
    fn messages_cross_hosts() {
        struct Pong {
            got: u32,
        }
        impl ProcessLogic for Pong {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                if let ProcEvent::Readable(port) = ev {
                    let msg = ctx.recv(port).expect("readable guarantees a message");
                    assert_eq!(msg.payload.get::<u32>(), Some(&7));
                    self.got += 1;
                }
            }
        }
        struct Ping {
            dst: Endpoint,
        }
        impl ProcessLogic for Ping {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                if let ProcEvent::Start = ev {
                    for _ in 0..5 {
                        ctx.send(self.dst, 1, 100, 7u32);
                    }
                    ctx.exit();
                }
            }
        }
        let mut w = World::new(1);
        let ha = w.add_host("a", 1 << 16);
        let hb = w.add_host("b", 1 << 16);
        let hop = w
            .net_mut()
            .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
        w.net_mut().set_route_symmetric(ha, hb, vec![hop]);
        let pong = w.spawn(
            hb,
            ProcConfig::new("pong").port(9, 1 << 16),
            Pong { got: 0 },
        );
        let _ping = w.spawn(
            ha,
            ProcConfig::new("ping"),
            Ping {
                dst: Endpoint::new(hb, 9),
            },
        );
        w.run_for(Dur::from_secs(1));
        assert_eq!(w.logic::<Pong>(pong).unwrap().got, 5);
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultPlan, MsgSelector, Window};

        struct Pong {
            got: u32,
        }
        impl ProcessLogic for Pong {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                if let ProcEvent::Readable(port) = ev {
                    let _ = ctx.recv(port);
                    self.got += 1;
                }
            }
        }
        struct Ping {
            dst: Endpoint,
            count: u32,
        }
        impl ProcessLogic for Ping {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                match ev {
                    ProcEvent::Start | ProcEvent::Timer(_) if self.count > 0 => {
                        self.count -= 1;
                        ctx.send(self.dst, 1, 100, 7u32);
                        ctx.set_timer(Dur::from_millis(10), 0);
                    }
                    _ => {}
                }
            }
        }

        /// Two hosts, a LAN hop, one receiver on port 9, one sender
        /// sending `sends` messages 10 ms apart.
        fn pingpong(seed: u64, sends: u32) -> (World, Pid) {
            let mut w = World::new(seed);
            let ha = w.add_host("a", 1 << 16);
            let hb = w.add_host("b", 1 << 16);
            let hop =
                w.net_mut()
                    .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
            w.net_mut().set_route_symmetric(ha, hb, vec![hop]);
            let pong = w.spawn(
                hb,
                ProcConfig::new("pong").port(9, 1 << 16),
                Pong { got: 0 },
            );
            w.spawn(
                ha,
                ProcConfig::new("ping"),
                Ping {
                    dst: Endpoint::new(hb, 9),
                    count: sends,
                },
            );
            (w, pong)
        }

        #[test]
        fn certain_loss_drops_everything() {
            let (mut w, pong) = pingpong(1, 20);
            w.install_faults(FaultPlan::new().lose(
                Window::always(),
                MsgSelector::ports(vec![9]),
                1.0,
            ));
            w.run_for(Dur::from_secs(1));
            assert_eq!(w.logic::<Pong>(pong).unwrap().got, 0);
            assert_eq!(w.fault_stats().msgs_dropped, 20);
        }

        #[test]
        fn selector_spares_other_ports() {
            let (mut w, pong) = pingpong(1, 20);
            w.install_faults(FaultPlan::new().lose(
                Window::always(),
                MsgSelector::ports(vec![99]),
                1.0,
            ));
            w.run_for(Dur::from_secs(1));
            assert_eq!(w.logic::<Pong>(pong).unwrap().got, 20);
            assert_eq!(w.fault_stats().msgs_dropped, 0);
        }

        #[test]
        fn duplication_delivers_extra_copies() {
            let (mut w, pong) = pingpong(1, 5);
            w.install_faults(FaultPlan::new().duplicate(Window::always(), MsgSelector::any(), 1.0));
            w.run_for(Dur::from_secs(1));
            assert_eq!(w.logic::<Pong>(pong).unwrap().got, 10);
            assert_eq!(w.fault_stats().msgs_duplicated, 5);
        }

        #[test]
        fn extra_delay_postpones_delivery() {
            let (mut w, pong) = pingpong(1, 1);
            w.install_faults(FaultPlan::new().delay(
                Window::always(),
                MsgSelector::any(),
                1.0,
                Dur::from_millis(500),
            ));
            w.run_for(Dur::from_millis(400));
            assert_eq!(w.logic::<Pong>(pong).unwrap().got, 0, "still in flight");
            w.run_for(Dur::from_millis(200));
            assert_eq!(w.logic::<Pong>(pong).unwrap().got, 1);
            assert_eq!(w.fault_stats().msgs_delayed, 1);
        }

        #[test]
        fn scheduled_kill_fires_once() {
            let mut w = World::new(1);
            let h = w.add_host("a", 1 << 16);
            let hog = w.spawn(h, ProcConfig::new("hog"), Hog);
            w.install_faults(
                FaultPlan::new()
                    .kill_at(SimTime::from_micros(500_000), hog)
                    // A second kill of the same (then-dead) pid is a no-op.
                    .kill_at(SimTime::from_micros(600_000), hog),
            );
            w.run_for(Dur::from_secs(1));
            assert_eq!(w.host(h).proc_state(hog), Some(ProcState::Dead));
            assert_eq!(w.fault_stats().kills, 1);
            let cpu = w.host(h).proc_cpu_time(hog).unwrap().as_secs_f64();
            assert!((cpu - 0.5).abs() < 0.05, "ran ~0.5s then died: {cpu}");
        }

        #[test]
        fn faulted_runs_replay_from_seed() {
            let run = |seed| {
                let (mut w, pong) = pingpong(seed, 50);
                w.install_faults(FaultPlan::new().lose(Window::always(), MsgSelector::any(), 0.4));
                w.run_for(Dur::from_secs(2));
                (w.logic::<Pong>(pong).unwrap().got, w.fault_stats())
            };
            assert_eq!(run(3), run(3));
            let (got, stats) = run(3);
            assert!(got < 50, "some loss expected");
            assert_eq!(got as u64 + stats.msgs_dropped, 50);
        }
    }

    #[test]
    fn priocntl_boost_rescues_cpu_bound_process() {
        // A continuously-demanding worker (it never sleeps, so it earns no
        // interactivity boost) against 8 hogs gets roughly a fair share.
        // A manager-style +60 upri pins it above the hogs' starvation
        // boosts and it should then dominate the CPU. This is the core
        // mechanism behind the paper's Figure 3.
        struct Booster {
            target: Pid,
        }
        impl ProcessLogic for Booster {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                if let ProcEvent::Start = ev {
                    ctx.priocntl(self.target, PriocntlCmd::SetUpri(60));
                    ctx.exit();
                }
            }
        }
        fn run(boost: bool) -> f64 {
            let mut w = World::new(1);
            let h = w.add_host("a", 1 << 16);
            for _ in 0..8 {
                w.spawn(h, ProcConfig::new("hog"), Hog);
            }
            let worker = w.spawn(h, ProcConfig::new("worker"), Hog);
            if boost {
                w.spawn(h, ProcConfig::new("booster"), Booster { target: worker });
            }
            w.run_for(Dur::from_secs(30));
            w.host(h).proc_cpu_time(worker).unwrap().as_secs_f64() / 30.0
        }
        let without = run(false);
        let with = run(true);
        assert!(
            (0.05..0.25).contains(&without),
            "unboosted worker should get roughly a fair share: {without}"
        );
        assert!(with > 0.8, "boosted worker should dominate: {with}");
    }

    #[test]
    fn kill_frees_cpu_and_memory() {
        struct Killer {
            victim: Pid,
        }
        impl ProcessLogic for Killer {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                if let ProcEvent::Timer(_) = ev {
                    ctx.kill(self.victim);
                    ctx.exit();
                } else if let ProcEvent::Start = ev {
                    ctx.set_timer(Dur::from_secs(1), 0);
                }
            }
        }
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        let victim = w.spawn(h, ProcConfig::new("victim").working_set(100), Hog);
        w.spawn(h, ProcConfig::new("killer"), Killer { victim });
        w.run_for(Dur::from_secs(5));
        assert_eq!(w.host(h).proc_state(victim), Some(ProcState::Dead));
        assert!(w.host(h).proc_mem(victim).is_none());
        // CPU time stops accumulating at death (~1s, not 5s).
        let t = w.host(h).proc_cpu_time(victim).unwrap().as_secs_f64();
        assert!((0.9..1.5).contains(&t), "victim cpu {t}");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        fn run(seed: u64) -> (u64, Dur) {
            let mut w = World::new(seed);
            let h = w.add_host("a", 1 << 16);
            for _ in 0..3 {
                w.spawn(h, ProcConfig::new("hog"), Hog);
            }
            let i = w.spawn(
                h,
                ProcConfig::new("inter"),
                Interactive {
                    period: Dur::from_millis(37),
                    work: Dur::from_millis(3),
                    issued_at: SimTime::ZERO,
                    latencies: Vec::new(),
                },
            );
            w.run_for(Dur::from_secs(20));
            (w.events_processed(), w.host(h).proc_cpu_time(i).unwrap())
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, 0);
    }

    mod trace_and_telemetry {
        use super::*;
        use crate::fault::{FaultPlan, MsgSelector, Window};
        use qos_telemetry::Telemetry;

        /// Logs one numbered line per timer tick.
        struct Chatty {
            n: u32,
        }
        impl ProcessLogic for Chatty {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                match ev {
                    ProcEvent::Start | ProcEvent::Timer(_) => {
                        let n = self.n;
                        self.n += 1;
                        ctx.log(|| format!("line {n}"));
                        ctx.set_timer(Dur::from_millis(10), 0);
                    }
                    _ => {}
                }
            }
        }

        #[test]
        fn trace_bounded_capacity_evicts_oldest_first() {
            let mut w = World::new(1);
            let h = w.add_host("a", 1 << 16);
            w.enable_trace(3);
            w.spawn(h, ProcConfig::new("chatty"), Chatty { n: 0 });
            // 10 ticks of logging against capacity 3.
            w.run_for(Dur::from_millis(95));
            let lines: Vec<&str> = w
                .trace()
                .expect("trace enabled")
                .entries()
                .map(|(_, _, l)| l.as_str())
                .collect();
            assert_eq!(
                lines,
                ["line 7", "line 8", "line 9"],
                "only the newest `capacity` lines survive, oldest first"
            );
        }

        #[test]
        fn enable_trace_is_idempotent_and_resizes() {
            let mut w = World::new(1);
            let h = w.add_host("a", 1 << 16);
            w.enable_trace(10);
            w.spawn(h, ProcConfig::new("chatty"), Chatty { n: 0 });
            w.run_for(Dur::from_millis(45)); // lines 0..=4
                                             // Re-enabling with the same capacity keeps existing entries.
            w.enable_trace(10);
            assert_eq!(w.trace().unwrap().entries().count(), 5);
            // Shrinking evicts the oldest entries but keeps the rest.
            w.enable_trace(2);
            let lines: Vec<&str> = w
                .trace()
                .unwrap()
                .entries()
                .map(|(_, _, l)| l.as_str())
                .collect();
            assert_eq!(lines, ["line 3", "line 4"]);
            // The shrunk capacity governs subsequent pushes.
            w.run_for(Dur::from_millis(20));
            assert_eq!(w.trace().unwrap().entries().count(), 2);
            // Zero capacity is clamped to one.
            w.enable_trace(0);
            w.run_for(Dur::from_millis(10));
            assert_eq!(w.trace().unwrap().entries().count(), 1);
        }

        #[test]
        fn trace_renders_one_line_per_entry() {
            let mut w = World::new(1);
            let h = w.add_host("a", 1 << 16);
            w.enable_trace(16);
            let pid = w.spawn(h, ProcConfig::new("chatty"), Chatty { n: 0 });
            w.run_for(Dur::from_millis(15));
            let text = w.trace().unwrap().render();
            assert_eq!(text.lines().count(), 2, "two ticks logged:\n{text}");
            assert!(text.contains("line 0") && text.contains("line 1"));
            assert!(
                text.contains(&format!("{pid}")),
                "rendered lines carry the pid: {text}"
            );
        }

        #[test]
        fn host_tick_samples_sim_series() {
            let t = Telemetry::enabled();
            let mut w = World::new(1);
            let h = w.add_host("a", 1 << 16);
            w.set_telemetry(&t);
            w.spawn(h, ProcConfig::new("hog"), Hog);
            w.spawn(
                h,
                ProcConfig::new("rt").class(SchedClass::RealTime {
                    rtpri: 5,
                    budget: None,
                }),
                Hog,
            );
            w.run_for(Dur::from_secs(5));
            #[cfg(not(feature = "telemetry-off"))]
            {
                assert!(
                    t.counter_value("sim.events", "") > 0,
                    "event counter mirrors the loop"
                );
                assert!(t.gauge_value("sim.events_per_sec", "") > 0.0);
                // Two always-runnable hogs, one per class.
                assert_eq!(t.gauge_value("sim.occupancy", "h0:ts"), 1.0);
                assert_eq!(t.gauge_value("sim.occupancy", "h0:rt"), 1.0);
            }
        }

        #[test]
        fn fault_counters_mirror_fault_stats() {
            let t = Telemetry::enabled();
            let mut w = World::new(1);
            let ha = w.add_host("a", 1 << 16);
            let hb = w.add_host("b", 1 << 16);
            let hop =
                w.net_mut()
                    .add_hop("lan", 10_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
            w.net_mut().set_route_symmetric(ha, hb, vec![hop]);
            w.set_telemetry(&t);
            struct Spammer {
                dst: Endpoint,
            }
            impl ProcessLogic for Spammer {
                fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                    match ev {
                        ProcEvent::Start | ProcEvent::Timer(_) => {
                            ctx.send(self.dst, 1, 100, 7u32);
                            ctx.set_timer(Dur::from_millis(10), 0);
                        }
                        _ => {}
                    }
                }
            }
            let victim = w.spawn(hb, ProcConfig::new("sink").port(9, 1 << 16), Hog);
            w.spawn(
                ha,
                ProcConfig::new("spam"),
                Spammer {
                    dst: Endpoint::new(hb, 9),
                },
            );
            w.install_faults(
                FaultPlan::new()
                    .lose(Window::always(), MsgSelector::ports(vec![9]), 0.5)
                    .duplicate(Window::always(), MsgSelector::ports(vec![9]), 0.5)
                    .delay(
                        Window::always(),
                        MsgSelector::ports(vec![9]),
                        0.5,
                        Dur::from_millis(2),
                    )
                    .kill_at(SimTime::from_micros(500_000), victim),
            );
            w.run_for(Dur::from_secs(1));
            let stats = w.fault_stats();
            assert!(stats.msgs_dropped > 0 && stats.msgs_duplicated > 0);
            #[cfg(not(feature = "telemetry-off"))]
            {
                assert_eq!(
                    t.counter_value("sim.fault.msgs_dropped", ""),
                    stats.msgs_dropped
                );
                assert_eq!(
                    t.counter_value("sim.fault.msgs_duplicated", ""),
                    stats.msgs_duplicated
                );
                assert_eq!(
                    t.counter_value("sim.fault.msgs_delayed", ""),
                    stats.msgs_delayed
                );
                assert_eq!(t.counter_value("sim.fault.kills", ""), stats.kills);
            }
        }
    }

    #[test]
    fn spawn_syscall_creates_live_process() {
        struct Spawner;
        impl ProcessLogic for Spawner {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                if let ProcEvent::Start = ev {
                    let host = ctx.host_id();
                    ctx.spawn(
                        host,
                        ProcConfig::new("child"),
                        Box::new(Cruncher {
                            burst: Dur::from_millis(5),
                            bursts: 2,
                            done: 0,
                        }),
                    );
                    ctx.exit();
                }
            }
        }
        let mut w = World::new(1);
        let h = w.add_host("a", 1 << 16);
        w.spawn(h, ProcConfig::new("spawner"), Spawner);
        w.run_for(Dur::from_secs(1));
        let child = Pid { host: h, local: 1 };
        assert_eq!(w.logic::<Cruncher>(child).unwrap().done, 2);
    }
}
