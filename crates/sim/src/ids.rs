//! Identifiers for simulation entities.

use core::fmt;

/// Identifies a host (machine) in the simulated distributed system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// A process identifier, globally unique: the owning host plus a host-local
/// slot index. Mirrors how the paper's managers name processes (hostname +
/// pid).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid {
    /// Host the process runs on.
    pub host: HostId,
    /// Host-local process slot.
    pub local: u32,
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:p{}", self.host.0, self.local)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:p{}", self.host.0, self.local)
    }
}

/// Identifies a management domain in the federated management plane: a
/// shard of hosts under one QoS Domain Manager. Stable across
/// re-discovery — a domain keeps its id when its manager restarts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A communication port, local to a host (like a UDP/TCP port number).
pub type Port = u16;

/// A network endpoint: host + port. The analogue of a socket address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Endpoint {
    /// Host part of the address.
    pub host: HostId,
    /// Port part of the address.
    pub port: Port,
}

impl Endpoint {
    /// Construct an endpoint.
    pub const fn new(host: HostId, port: Port) -> Self {
        Endpoint { host, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// Identifies a hop (link or switch queue) in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HopId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display() {
        let p = Pid {
            host: HostId(2),
            local: 7,
        };
        assert_eq!(p.to_string(), "h2:p7");
    }

    #[test]
    fn endpoint_equality() {
        let a = Endpoint::new(HostId(1), 80);
        let b = Endpoint::new(HostId(1), 80);
        assert_eq!(a, b);
        assert_ne!(a, Endpoint::new(HostId(1), 81));
    }
}
