//! Run-time statistics: Unix-style load averages, time series and summary
//! statistics used by experiments and by the management plane's diagnosis
//! rules ("ask the server-side QoS Host Manager for CPU load and memory
//! usage").

use crate::time::{Dur, SimTime};

/// Exponentially-damped load average, sampled at a fixed interval like the
/// classical Unix 1-minute load average. The sampled quantity is the number
/// of runnable processes (running + ready).
#[derive(Clone, Debug)]
pub struct LoadAvg {
    value: f64,
    /// decay factor per sample: exp(-interval / window)
    decay: f64,
    interval: Dur,
}

impl LoadAvg {
    /// A load average over `window` sampled every `interval`.
    pub fn new(interval: Dur, window: Dur) -> Self {
        assert!(!interval.is_zero() && !window.is_zero());
        let decay = (-(interval.as_secs_f64() / window.as_secs_f64())).exp();
        LoadAvg {
            value: 0.0,
            decay,
            interval,
        }
    }

    /// The standard 1-minute load average sampled once per second.
    pub fn one_minute() -> Self {
        LoadAvg::new(Dur::from_secs(1), Dur::from_secs(60))
    }

    /// Feed one sample (current runnable count).
    pub fn sample(&mut self, runnable: usize) {
        self.value = self.value * self.decay + runnable as f64 * (1.0 - self.decay);
    }

    /// Current load average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Sampling interval this average expects.
    pub fn interval(&self) -> Dur {
        self.interval
    }
}

/// A recorded time series of (time, value) points.
#[derive(Clone, Debug, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Append a point.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Iterate over values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Mean of all values; 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.values().sum::<f64>() / self.points.len() as f64
    }

    /// Mean over points with `t >= from` (e.g. to skip warm-up).
    pub fn mean_from(&self, from: SimTime) -> f64 {
        let (sum, n) = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from)
            .fold((0.0, 0usize), |(s, n), &(_, v)| (s + v, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Last recorded value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// Streaming summary statistics (Welford's online algorithm — numerically
/// stable single pass).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of all observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_avg_converges_to_constant_input() {
        let mut la = LoadAvg::one_minute();
        for _ in 0..600 {
            la.sample(4);
        }
        assert!((la.value() - 4.0).abs() < 0.01, "load {}", la.value());
    }

    #[test]
    fn load_avg_decays_toward_zero() {
        let mut la = LoadAvg::one_minute();
        for _ in 0..120 {
            la.sample(10);
        }
        let peak = la.value();
        for _ in 0..300 {
            la.sample(0);
        }
        assert!(la.value() < peak * 0.05);
    }

    #[test]
    fn load_avg_one_minute_time_constant() {
        // After exactly 60 samples of 1 from 0, value should be 1 - 1/e.
        let mut la = LoadAvg::one_minute();
        for _ in 0..60 {
            la.sample(1);
        }
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (la.value() - expected).abs() < 1e-6,
            "{} vs {}",
            la.value(),
            expected
        );
    }

    #[test]
    fn series_mean_and_mean_from() {
        let mut s = Series::new();
        s.push(SimTime::from_micros(0), 10.0);
        s.push(SimTime::from_micros(100), 20.0);
        s.push(SimTime::from_micros(200), 30.0);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.mean_from(SimTime::from_micros(100)), 25.0);
        assert_eq!(s.mean_from(SimTime::from_micros(500)), 0.0);
        assert_eq!(s.last(), Some(30.0));
    }

    #[test]
    fn summary_matches_naive_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }
}
