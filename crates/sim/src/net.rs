//! Network model: hops (links / switch queues) with bandwidth, propagation
//! delay, bounded queues and injectable background cross-traffic.
//!
//! Messages between hosts traverse a configured route (a sequence of
//! hops). Each hop is a FIFO queue served at a fixed rate; background
//! utilization inflates the effective service time and adds stochastic
//! queueing jitter. A hop drops a packet whose queueing delay would exceed
//! the hop's buffering, which is how an "unexpected load on a network
//! switch" (the paper's example fault) manifests to the application as
//! lost/late video frames — while the client's own CPU and socket buffer
//! stay healthy, the signature the buffer-length sensor heuristic of
//! Example 5 relies on.

use std::collections::HashMap;

use crate::event::Message;
use crate::fault::Window;
use crate::ids::{HopId, HostId};
use crate::rng::Rng;
use crate::time::{Dur, SimTime};

/// Latency of same-host IPC (message queues in the prototype).
pub const LOCAL_IPC_DELAY: Dur = Dur::from_micros(5);

/// Highest background utilization accepted; beyond this the hop is
/// effectively dead and service times diverge.
const MAX_BG_UTIL: f64 = 0.98;

/// One store-and-forward element: a link or a switch output queue.
#[derive(Debug)]
pub struct Hop {
    name: String,
    /// Service rate in bytes per second.
    rate: f64,
    /// Propagation delay added after service completes.
    prop_delay: Dur,
    /// Background (cross-traffic) utilization in `[0, MAX_BG_UTIL]`.
    bg_util: f64,
    /// Virtual-queue horizon: when the hop next becomes free.
    busy_until: SimTime,
    /// Maximum tolerated queueing delay; packets that would wait longer
    /// are dropped (models finite switch buffers).
    queue_cap: Dur,
    /// Time windows in which the hop is down and drops every packet
    /// (dead link or flapping switch port).
    outages: Vec<Window>,
    delivered: u64,
    dropped: u64,
    blackout_dropped: u64,
    bytes_forwarded: u64,
    busy: Dur,
}

/// Counters for one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopStats {
    /// Packets forwarded by this hop.
    pub delivered: u64,
    /// Packets dropped at this hop (tail drop or outage).
    pub dropped: u64,
    /// Of `dropped`, those lost to blackout/flap outage windows.
    pub blackout_dropped: u64,
    /// Payload bytes carried by forwarded packets. With measured wire
    /// sizes (`WireMode::Measured`) this is the real control-plane load;
    /// under the legacy nominal size every control message counts as
    /// `CTRL_MSG_BYTES` regardless of content.
    pub bytes_forwarded: u64,
    /// Cumulative service time spent forwarding (occupancy). Divide by
    /// elapsed sim time for utilization.
    pub busy: Dur,
}

impl Hop {
    /// Current queueing delay a newly arriving packet would experience.
    fn backlog(&self, now: SimTime) -> Dur {
        self.busy_until.since(now)
    }
}

/// The network: a set of hops plus per-host-pair routes.
#[derive(Debug)]
pub struct Network {
    hops: Vec<Hop>,
    routes: HashMap<(HostId, HostId), Vec<HopId>>,
    rng: Rng,
    local_delivered: u64,
}

impl Network {
    pub(crate) fn new(rng: Rng) -> Self {
        Network {
            hops: Vec::new(),
            routes: HashMap::new(),
            rng,
            local_delivered: 0,
        }
    }

    /// Add a hop (link or switch queue). `rate_bytes_per_sec` is the
    /// service rate; `queue_cap` bounds queueing delay before tail drop.
    pub fn add_hop(
        &mut self,
        name: impl Into<String>,
        rate_bytes_per_sec: f64,
        prop_delay: Dur,
        queue_cap: Dur,
    ) -> HopId {
        assert!(rate_bytes_per_sec > 0.0, "hop rate must be positive");
        let id = HopId(self.hops.len() as u32);
        self.hops.push(Hop {
            name: name.into(),
            rate: rate_bytes_per_sec,
            prop_delay,
            bg_util: 0.0,
            busy_until: SimTime::ZERO,
            queue_cap,
            outages: Vec::new(),
            delivered: 0,
            dropped: 0,
            blackout_dropped: 0,
            bytes_forwarded: 0,
            busy: Dur::ZERO,
        });
        id
    }

    /// Install the route used for traffic from `a` to `b`. Routes are
    /// directional; call twice for symmetric paths.
    pub fn set_route(&mut self, a: HostId, b: HostId, hops: Vec<HopId>) {
        for h in &hops {
            assert!(
                (h.0 as usize) < self.hops.len(),
                "unknown hop {h:?} in route"
            );
        }
        self.routes.insert((a, b), hops);
    }

    /// Install the same hop sequence in both directions.
    pub fn set_route_symmetric(&mut self, a: HostId, b: HostId, hops: Vec<HopId>) {
        self.set_route(a, b, hops.clone());
        self.set_route(b, a, hops);
    }

    /// Set background cross-traffic utilization on a hop (the fault
    /// injection knob for "unexpected load on a network switch").
    pub fn set_bg_util(&mut self, hop: HopId, util: f64) {
        self.hops[hop.0 as usize].bg_util = util.clamp(0.0, MAX_BG_UTIL);
    }

    /// Background utilization of a hop.
    pub fn bg_util(&self, hop: HopId) -> f64 {
        self.hops[hop.0 as usize].bg_util
    }

    /// Take the hop down for one time window: every packet reaching it
    /// inside `[window.from, window.until)` is dropped.
    pub fn add_blackout(&mut self, hop: HopId, window: Window) {
        self.hops[hop.0 as usize].outages.push(window);
    }

    /// Flap the hop: starting at `from`, alternate `down` of outage with
    /// `up` of service until `until`. Models a flapping switch port.
    pub fn add_flap(&mut self, hop: HopId, from: SimTime, until: SimTime, down: Dur, up: Dur) {
        assert!(!down.is_zero(), "flap down-time must be non-zero");
        let mut t = from;
        while t < until {
            let end = (t + down).min(until);
            self.hops[hop.0 as usize].outages.push(Window::new(t, end));
            t = end + up;
        }
    }

    /// Delivery/drop counters for a hop.
    pub fn hop_stats(&self, hop: HopId) -> HopStats {
        let h = &self.hops[hop.0 as usize];
        HopStats {
            delivered: h.delivered,
            dropped: h.dropped,
            blackout_dropped: h.blackout_dropped,
            bytes_forwarded: h.bytes_forwarded,
            busy: h.busy,
        }
    }

    /// Name of a hop.
    pub fn hop_name(&self, hop: HopId) -> &str {
        &self.hops[hop.0 as usize].name
    }

    /// Messages delivered host-locally (no network traversal).
    pub fn local_delivered(&self) -> u64 {
        self.local_delivered
    }

    /// Compute the arrival time of `msg` sent now, updating hop queues.
    /// Returns `None` if a hop dropped the packet.
    pub(crate) fn transit(&mut self, msg: &Message, now: SimTime) -> Option<SimTime> {
        if msg.src.host == msg.dst.host {
            self.local_delivered += 1;
            return Some(now + LOCAL_IPC_DELAY);
        }
        let route = self
            .routes
            .get(&(msg.src.host, msg.dst.host))
            .unwrap_or_else(|| {
                panic!(
                    "no route configured from h{} to h{}",
                    msg.src.host.0, msg.dst.host.0
                )
            })
            .clone();
        let mut t = now + LOCAL_IPC_DELAY; // protocol-stack cost at sender
        for hop_id in route {
            let jitter = {
                // Stochastic extra queueing behind cross traffic; zero when
                // the hop is idle of background load.
                let h = &self.hops[hop_id.0 as usize];
                let svc = msg.bytes as f64 / (h.rate * (1.0 - h.bg_util));
                if h.bg_util > 0.0 {
                    Dur::from_secs_f64(self.rng.exponential(svc * h.bg_util))
                } else {
                    Dur::ZERO
                }
            };
            let h = &mut self.hops[hop_id.0 as usize];
            if h.outages.iter().any(|w| w.contains(t)) {
                h.dropped += 1;
                h.blackout_dropped += 1;
                return None;
            }
            if h.backlog(t) > h.queue_cap {
                h.dropped += 1;
                return None;
            }
            let svc = Dur::from_secs_f64(msg.bytes as f64 / (h.rate * (1.0 - h.bg_util)));
            let start = if h.busy_until > t { h.busy_until } else { t };
            h.busy_until = start + svc + jitter;
            h.delivered += 1;
            h.bytes_forwarded += msg.bytes as u64;
            h.busy += svc + jitter;
            t = h.busy_until + h.prop_delay;
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Payload;
    use crate::ids::Endpoint;

    fn msg(src: u32, dst: u32, bytes: u32, at: SimTime) -> Message {
        Message {
            src: Endpoint::new(HostId(src), 1),
            dst: Endpoint::new(HostId(dst), 2),
            bytes,
            sent_at: at,
            payload: Payload::empty(),
        }
    }

    fn net() -> Network {
        Network::new(Rng::new(1))
    }

    #[test]
    fn local_delivery_uses_ipc_delay() {
        let mut n = net();
        let t = SimTime::from_micros(100);
        let arrival = n.transit(&msg(0, 0, 1000, t), t).unwrap();
        assert_eq!(arrival, t + LOCAL_IPC_DELAY);
        assert_eq!(n.local_delivered(), 1);
    }

    #[test]
    fn single_hop_service_and_prop_delay() {
        let mut n = net();
        // 1 MB/s, 1 ms propagation.
        let h = n.add_hop("lan", 1_000_000.0, Dur::from_millis(1), Dur::from_secs(1));
        n.set_route(HostId(0), HostId(1), vec![h]);
        let t = SimTime::ZERO;
        let arrival = n.transit(&msg(0, 1, 10_000, t), t).unwrap();
        // service = 10ms, + 1ms prop + 5us stack.
        let expected = t + LOCAL_IPC_DELAY + Dur::from_millis(10) + Dur::from_millis(1);
        assert_eq!(arrival, expected);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut n = net();
        let h = n.add_hop("lan", 1_000_000.0, Dur::ZERO, Dur::from_secs(10));
        n.set_route(HostId(0), HostId(1), vec![h]);
        let t = SimTime::ZERO;
        let a1 = n.transit(&msg(0, 1, 10_000, t), t).unwrap();
        let a2 = n.transit(&msg(0, 1, 10_000, t), t).unwrap();
        assert_eq!(a2.since(a1), Dur::from_millis(10), "second waits for first");
    }

    #[test]
    fn background_utilization_inflates_service() {
        let mut idle = net();
        let h1 = idle.add_hop("sw", 1_000_000.0, Dur::ZERO, Dur::from_secs(10));
        idle.set_route(HostId(0), HostId(1), vec![h1]);
        let base = idle
            .transit(&msg(0, 1, 10_000, SimTime::ZERO), SimTime::ZERO)
            .unwrap();

        let mut busy = net();
        let h2 = busy.add_hop("sw", 1_000_000.0, Dur::ZERO, Dur::from_secs(10));
        busy.set_route(HostId(0), HostId(1), vec![h2]);
        busy.set_bg_util(h2, 0.9);
        let loaded = busy
            .transit(&msg(0, 1, 10_000, SimTime::ZERO), SimTime::ZERO)
            .unwrap();
        // 10x inflation at 90% background utilization, plus jitter.
        assert!(
            loaded.since(SimTime::ZERO) >= base.since(SimTime::ZERO).mul_f64(8.0),
            "base {base:?} loaded {loaded:?}"
        );
    }

    #[test]
    fn overloaded_hop_drops() {
        let mut n = net();
        let h = n.add_hop("sw", 100_000.0, Dur::ZERO, Dur::from_millis(50));
        n.set_route(HostId(0), HostId(1), vec![h]);
        let t = SimTime::ZERO;
        // Each 10 KB packet takes 100 ms to serve; cap is 50 ms of backlog,
        // so the queue fills almost immediately.
        let mut dropped = 0;
        for _ in 0..20 {
            if n.transit(&msg(0, 1, 10_000, t), t).is_none() {
                dropped += 1;
            }
        }
        assert!(dropped >= 15, "dropped {dropped}");
        assert_eq!(n.hop_stats(h).dropped, dropped);
    }

    #[test]
    fn rerouting_switches_paths() {
        let mut n = net();
        let slow = n.add_hop("congested", 100_000.0, Dur::ZERO, Dur::from_secs(10));
        let fast = n.add_hop("backup", 10_000_000.0, Dur::ZERO, Dur::from_secs(10));
        n.set_route(HostId(0), HostId(1), vec![slow]);
        n.set_bg_util(slow, 0.9);
        let t = SimTime::ZERO;
        let before = n.transit(&msg(0, 1, 10_000, t), t).unwrap();
        n.set_route(HostId(0), HostId(1), vec![fast]);
        let after = n.transit(&msg(0, 1, 10_000, t), t).unwrap();
        assert!(after < before, "reroute must bypass congestion");
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut n = net();
        let m = msg(0, 1, 10, SimTime::ZERO);
        let _ = n.transit(&m, SimTime::ZERO);
    }

    #[test]
    fn blackout_window_drops_then_recovers() {
        let mut n = net();
        let h = n.add_hop("lan", 1_000_000.0, Dur::ZERO, Dur::from_secs(10));
        n.set_route(HostId(0), HostId(1), vec![h]);
        n.add_blackout(
            h,
            Window::new(SimTime::from_micros(1_000), SimTime::from_micros(2_000)),
        );
        let before = SimTime::ZERO;
        let during = SimTime::from_micros(1_500);
        let after = SimTime::from_micros(3_000);
        assert!(n.transit(&msg(0, 1, 100, before), before).is_some());
        assert!(n.transit(&msg(0, 1, 100, during), during).is_none());
        assert!(n.transit(&msg(0, 1, 100, after), after).is_some());
        let s = n.hop_stats(h);
        assert_eq!(s.blackout_dropped, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.delivered, 2);
    }

    #[test]
    fn flap_alternates_down_and_up() {
        let mut n = net();
        let h = n.add_hop("lan", 1_000_000_000.0, Dur::ZERO, Dur::from_secs(10));
        n.set_route(HostId(0), HostId(1), vec![h]);
        // Down 1ms / up 1ms from t=0 to t=10ms: sends at even ms fail,
        // odd ms succeed (stack delay of 5us keeps t inside the window).
        n.add_flap(
            h,
            SimTime::ZERO,
            SimTime::from_micros(10_000),
            Dur::from_millis(1),
            Dur::from_millis(1),
        );
        for k in 0..10u64 {
            let t = SimTime::from_micros(k * 1_000);
            let got = n.transit(&msg(0, 1, 10, t), t);
            if k % 2 == 0 {
                assert!(got.is_none(), "ms {k} should be down");
            } else {
                assert!(got.is_some(), "ms {k} should be up");
            }
        }
        assert_eq!(n.hop_stats(h).blackout_dropped, 5);
    }

    #[test]
    fn hop_accounts_bytes_and_occupancy() {
        let mut n = net();
        let h = n.add_hop("lan", 1_000_000.0, Dur::ZERO, Dur::from_secs(10));
        n.set_route(HostId(0), HostId(1), vec![h]);
        let t = SimTime::ZERO;
        n.transit(&msg(0, 1, 10_000, t), t).unwrap();
        n.transit(&msg(0, 1, 2_500, t), t).unwrap();
        let s = n.hop_stats(h);
        assert_eq!(s.bytes_forwarded, 12_500);
        // 10 ms + 2.5 ms of service at 1 MB/s, no background jitter.
        assert_eq!(s.busy, Dur::from_micros(12_500));
    }

    #[test]
    fn multi_hop_accumulates_delay() {
        let mut n = net();
        let a = n.add_hop("l1", 1_000_000.0, Dur::from_millis(2), Dur::from_secs(1));
        let b = n.add_hop("l2", 1_000_000.0, Dur::from_millis(3), Dur::from_secs(1));
        n.set_route(HostId(0), HostId(1), vec![a, b]);
        let t = SimTime::ZERO;
        let arrival = n.transit(&msg(0, 1, 1_000, t), t).unwrap();
        // 2 * 1ms service + 2ms + 3ms prop + stack.
        let expected = t + LOCAL_IPC_DELAY + Dur::from_millis(7);
        assert_eq!(arrival, expected);
    }
}
