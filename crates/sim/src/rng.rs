//! Deterministic pseudo-random number generation.
//!
//! The simulator deliberately avoids external RNG crates in its core: every
//! run must be exactly reproducible from a single `u64` seed across
//! platforms and crate-version bumps. We use the xoshiro256** generator
//! (public domain, Blackman & Vigna) seeded through SplitMix64, which is the
//! recommended seeding procedure for the xoshiro family.

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator; used to give each host /
    /// process its own stream so adding one workload does not perturb the
    /// random draws of another.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Rng::below called with bound 0");
        // Lemire's multiply-shift rejection method (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times in the network cross-traffic model).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Sample from a truncated normal via the sum-of-uniforms approximation
    /// (Irwin–Hall with 12 terms: mean 6, variance 1). Adequate for workload
    /// jitter; avoids pulling in a full statistics crate.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        mean + (acc - 6.0) * std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut root1 = Rng::new(7);
        let mut root2 = Rng::new(7);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(9);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn range_inclusive_bounds_hit() {
        let mut r = Rng::new(17);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
