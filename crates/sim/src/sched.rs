//! CPU scheduling: a Solaris-style time-sharing (TS) class with a dispatch
//! table, plus a fixed-priority real-time (RT) class sitting above it.
//!
//! This models the scheduling surface the paper's prototype manipulated on
//! Solaris 2.8 through `priocntl`: the CPU resource manager either nudges a
//! process's TS *user priority* (`upri`, the per-process boost an
//! administrator may set within bounds) or moves the process into the RT
//! class with an optional CPU budget ("allocating units of real-time CPU
//! cycles").
//!
//! The TS dispatch table captures the three behaviours that produce the
//! phenomenon in the paper's Figure 3:
//!
//! * CPU-bound processes expire quanta and sink to low priorities
//!   (`tqexp`), getting long quanta there;
//! * processes returning from sleep are boosted (`slpret`), favouring
//!   interactive work;
//! * processes that starve on the ready queue longer than `maxwait` are
//!   periodically boosted to `lwait` (Solaris's anti-starvation rule) — it
//!   is precisely this boost that lets a pile of CPU hogs steal the video
//!   player's cycles and collapse its frame rate when no QoS manager
//!   intervenes.

use std::collections::VecDeque;

use crate::ids::Pid;
use crate::time::{Dur, SimTime};

/// Number of TS priority levels (0 = weakest, 59 = strongest), as in
/// Solaris.
pub const TS_LEVELS: u8 = 60;
/// Number of RT priority levels.
pub const RT_LEVELS: u8 = 60;
/// Global priority of RT level 0. All RT priorities dominate all TS ones.
pub const RT_BASE: u16 = 100;
/// Total number of global priority levels (TS occupy 0..59).
pub const GLOBAL_LEVELS: u16 = RT_BASE + RT_LEVELS as u16;

/// Default RT round-robin quantum.
pub const RT_QUANTUM: Dur = Dur::from_millis(100);

/// Scheduling class of a process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedClass {
    /// Time-sharing: priority migrates according to the dispatch table.
    TimeShare,
    /// Fixed-priority real-time, always above TS. An optional budget
    /// limits CPU per accounting window; when exhausted, the process is
    /// scheduled as the weakest TS process until the window rolls over.
    RealTime {
        /// RT priority level, `0..RT_LEVELS`.
        rtpri: u8,
        /// Optional CPU budget (consumed per [`RtBudget::window`]).
        budget: Option<RtBudget>,
    },
}

/// CPU budget for a real-time process: at most `per_window` of CPU within
/// each `window` of wall time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RtBudget {
    /// CPU allowed per window.
    pub per_window: Dur,
    /// Accounting window length.
    pub window: Dur,
}

/// One row of the TS dispatch table.
#[derive(Clone, Copy, Debug)]
pub struct DispatchEntry {
    /// Time slice granted at this level.
    pub quantum: Dur,
    /// New level after the quantum is fully consumed.
    pub tqexp: u8,
    /// New level when returning from sleep.
    pub slpret: u8,
    /// Level granted when starved on the ready queue for `maxwait`.
    pub lwait: u8,
}

/// The TS dispatch table: quantum and priority-migration rules per level.
#[derive(Clone, Debug)]
pub struct DispatchTable {
    entries: Vec<DispatchEntry>,
    /// Ready-queue residence time after which the starvation boost applies.
    pub maxwait: Dur,
}

impl DispatchTable {
    /// A table patterned on the Solaris TS defaults: 200 ms quanta at the
    /// weakest levels shrinking to 20 ms at the strongest, quantum expiry
    /// dropping a process by 10 levels, sleep return boosting into the
    /// 50s, and a starvation boost to level 50 after one second of
    /// waiting.
    pub fn solaris_like() -> Self {
        let entries = (0..TS_LEVELS)
            .map(|p| {
                let quantum_ms = match p {
                    0..=9 => 200,
                    10..=19 => 160,
                    20..=29 => 120,
                    30..=39 => 80,
                    40..=49 => 40,
                    _ => 20,
                };
                DispatchEntry {
                    quantum: Dur::from_millis(quantum_ms),
                    tqexp: p.saturating_sub(10),
                    slpret: (50 + p / 6).min(TS_LEVELS - 1),
                    lwait: 50,
                }
            })
            .collect();
        DispatchTable {
            entries,
            maxwait: Dur::from_secs(1),
        }
    }

    /// Row for a TS level.
    #[inline]
    pub fn entry(&self, level: u8) -> &DispatchEntry {
        &self.entries[level.min(TS_LEVELS - 1) as usize]
    }
}

/// Per-process TS state.
#[derive(Clone, Copy, Debug)]
pub struct TsState {
    /// Table-managed component of the priority.
    pub cpupri: u8,
    /// Administrator/manager-set boost, clamped to `[-60, 60]`
    /// (the `priocntl` user priority). This is the knob the paper's CPU
    /// resource manager turns.
    pub upri: i16,
}

impl TsState {
    /// Default state for a newly created TS process.
    pub fn new() -> Self {
        // New TS processes start in the middle of the range.
        TsState {
            cpupri: 29,
            upri: 0,
        }
    }

    /// Effective TS level: `clamp(cpupri + upri, 0, 59)`.
    #[inline]
    pub fn level(&self) -> u8 {
        (self.cpupri as i16 + self.upri).clamp(0, TS_LEVELS as i16 - 1) as u8
    }
}

impl Default for TsState {
    fn default() -> Self {
        Self::new()
    }
}

/// Multi-level ready queues over the global priority space. Entries carry
/// their enqueue time so the starvation scan can find long-waiting TS
/// processes.
#[derive(Debug)]
pub struct ReadyQueues {
    levels: Vec<VecDeque<(Pid, SimTime)>>,
    len: usize,
}

impl ReadyQueues {
    /// Empty ready queues.
    pub fn new() -> Self {
        ReadyQueues {
            levels: (0..GLOBAL_LEVELS).map(|_| VecDeque::new()).collect(),
            len: 0,
        }
    }

    /// Number of queued (ready, not running) processes.
    /// Number of queued (ready, not running) processes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no process is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue at the back of a level (normal arrival).
    pub fn push_back(&mut self, level: u16, pid: Pid, now: SimTime) {
        self.levels[level as usize].push_back((pid, now));
        self.len += 1;
    }

    /// Enqueue at the front of a level (preempted process keeps its turn).
    pub fn push_front(&mut self, level: u16, pid: Pid, now: SimTime) {
        self.levels[level as usize].push_front((pid, now));
        self.len += 1;
    }

    /// Pop the strongest-priority process, FIFO within a level.
    pub fn pop_best(&mut self) -> Option<(u16, Pid)> {
        if self.len == 0 {
            return None;
        }
        for level in (0..GLOBAL_LEVELS).rev() {
            if let Some((pid, _)) = self.levels[level as usize].pop_front() {
                self.len -= 1;
                return Some((level, pid));
            }
        }
        None
    }

    /// Strongest level with a ready process, if any.
    pub fn best_level(&self) -> Option<u16> {
        if self.len == 0 {
            return None;
        }
        (0..GLOBAL_LEVELS)
            .rev()
            .find(|&l| !self.levels[l as usize].is_empty())
    }

    /// Remove a specific process (e.g. killed while ready, or being
    /// re-prioritised). Returns true if it was queued.
    pub fn remove(&mut self, pid: Pid) -> bool {
        for q in &mut self.levels {
            if let Some(ix) = q.iter().position(|&(p, _)| p == pid) {
                q.remove(ix);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Occupancy per level: `(level, queued count)` for non-empty levels.
    pub fn occupancy(&self) -> Vec<(u16, usize)> {
        (0..GLOBAL_LEVELS)
            .filter(|&l| !self.levels[l as usize].is_empty())
            .map(|l| (l, self.levels[l as usize].len()))
            .collect()
    }

    /// Collect TS processes (levels below [`RT_BASE`]) that have waited at
    /// least `maxwait` and therefore earn the `lwait` starvation boost.
    /// They are removed from their queues; the caller re-inserts them at
    /// their boosted level.
    pub fn drain_starved(&mut self, now: SimTime, maxwait: Dur) -> Vec<Pid> {
        let mut out = Vec::new();
        for level in 0..RT_BASE {
            let q = &mut self.levels[level as usize];
            let mut keep = VecDeque::with_capacity(q.len());
            while let Some((pid, since)) = q.pop_front() {
                if now.since(since) >= maxwait {
                    out.push(pid);
                    self.len -= 1;
                } else {
                    keep.push_back((pid, since));
                }
            }
            *q = keep;
        }
        out
    }
}

impl Default for ReadyQueues {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    fn pid(n: u32) -> Pid {
        Pid {
            host: HostId(0),
            local: n,
        }
    }

    #[test]
    fn table_quanta_shrink_with_priority() {
        let t = DispatchTable::solaris_like();
        assert_eq!(t.entry(0).quantum, Dur::from_millis(200));
        assert_eq!(t.entry(35).quantum, Dur::from_millis(80));
        assert_eq!(t.entry(59).quantum, Dur::from_millis(20));
    }

    #[test]
    fn table_tqexp_sinks_and_slpret_boosts() {
        let t = DispatchTable::solaris_like();
        assert_eq!(t.entry(29).tqexp, 19);
        assert_eq!(t.entry(5).tqexp, 0);
        assert!(t.entry(0).slpret >= 50);
        assert!(t.entry(59).slpret <= 59);
        assert_eq!(t.entry(30).lwait, 50);
    }

    #[test]
    fn ts_state_level_clamps() {
        let mut s = TsState::new();
        assert_eq!(s.level(), 29);
        s.upri = 60;
        assert_eq!(s.level(), 59);
        s.upri = -60;
        assert_eq!(s.level(), 0);
        s.upri = 10;
        s.cpupri = 55;
        assert_eq!(s.level(), 59);
    }

    #[test]
    fn ready_queue_priority_order_and_fifo() {
        let mut rq = ReadyQueues::new();
        let t = SimTime::ZERO;
        rq.push_back(10, pid(1), t);
        rq.push_back(50, pid(2), t);
        rq.push_back(50, pid(3), t);
        rq.push_back(RT_BASE + 5, pid(4), t);
        assert_eq!(rq.len(), 4);
        assert_eq!(rq.pop_best(), Some((RT_BASE + 5, pid(4))), "RT beats TS");
        assert_eq!(rq.pop_best(), Some((50, pid(2))), "FIFO within level");
        assert_eq!(rq.pop_best(), Some((50, pid(3))));
        assert_eq!(rq.pop_best(), Some((10, pid(1))));
        assert_eq!(rq.pop_best(), None);
    }

    #[test]
    fn push_front_takes_precedence_within_level() {
        let mut rq = ReadyQueues::new();
        let t = SimTime::ZERO;
        rq.push_back(20, pid(1), t);
        rq.push_front(20, pid(2), t);
        assert_eq!(rq.pop_best(), Some((20, pid(2))));
    }

    #[test]
    fn remove_unqueues() {
        let mut rq = ReadyQueues::new();
        rq.push_back(5, pid(1), SimTime::ZERO);
        rq.push_back(5, pid(2), SimTime::ZERO);
        assert!(rq.remove(pid(1)));
        assert!(!rq.remove(pid(1)));
        assert_eq!(rq.len(), 1);
        assert_eq!(rq.pop_best(), Some((5, pid(2))));
    }

    #[test]
    fn starvation_scan_only_picks_old_ts_entries() {
        let mut rq = ReadyQueues::new();
        let t0 = SimTime::ZERO;
        let t_late = t0 + Dur::from_millis(1500);
        rq.push_back(3, pid(1), t0); // starved TS
        rq.push_back(3, pid(2), t_late); // fresh TS
        rq.push_back(RT_BASE + 1, pid(3), t0); // RT: never boosted
        let starved = rq.drain_starved(t_late, Dur::from_secs(1));
        assert_eq!(starved, vec![pid(1)]);
        assert_eq!(rq.len(), 2);
        assert_eq!(rq.best_level(), Some(RT_BASE + 1));
    }

    #[test]
    fn best_level_reflects_queue_state() {
        let mut rq = ReadyQueues::new();
        assert_eq!(rq.best_level(), None);
        rq.push_back(7, pid(1), SimTime::ZERO);
        rq.push_back(40, pid(2), SimTime::ZERO);
        assert_eq!(rq.best_level(), Some(40));
    }
}
