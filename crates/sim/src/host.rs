//! A simulated host: process table, CPU scheduler state, socket buffers,
//! physical memory and load statistics.
//!
//! The host holds the state; the global event loop in [`crate::world`]
//! drives the transitions. The methods here are the "kernel services"
//! visible to processes through [`crate::proc::Ctx`].

use std::collections::{HashMap, VecDeque};

use crate::event::{Message, ProcEvent};
use crate::ids::{HostId, Pid, Port};
use crate::memory::{Memory, ProcMem};
use crate::proc::{HostSnapshot, ProcessLogic};
use crate::rng::Rng;
use crate::sched::{DispatchTable, ReadyQueues, SchedClass, TsState, RT_BASE};
use crate::stats::{LoadAvg, Series};
use crate::time::{Dur, SimTime};

/// Lifecycle state of a process slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Waiting for events (not runnable).
    Waiting,
    /// Runnable, queued for the CPU.
    Ready,
    /// Currently on the CPU.
    Running,
    /// Exited or killed. The slot (and its logic) is retained so
    /// experiments can read back accumulated metrics.
    Dead,
}

/// Minimum time a process must have been waiting for its wake-up to count
/// as a "return from sleep" and earn the dispatch table's `slpret` boost.
/// A CPU-bound process that chains bursts back-to-back does not qualify.
const SLEEP_BOOST_MIN: Dur = Dur::from_micros(500);

pub(crate) struct ProcSlot {
    pub name: String,
    pub state: ProcState,
    pub logic: Option<Box<dyn ProcessLogic>>,
    pub class: SchedClass,
    pub ts: TsState,
    /// Remaining quantum at the current level.
    pub quantum_rem: Dur,
    /// Remaining CPU demand of the current burst.
    pub burst_rem: Dur,
    /// Events queued for delivery.
    pub pending: VecDeque<ProcEvent>,
    /// True when a `Deliver` event for this process is already in flight.
    pub deliver_scheduled: bool,
    /// Cumulative CPU time consumed.
    pub cpu_time: Dur,
    /// When the process last entered `Waiting` (for the sleep boost).
    pub waiting_since: SimTime,
    /// RT budget accounting for the current window.
    pub rt_used: Dur,
    pub rt_exhausted: bool,
    /// Private deterministic random stream.
    pub rng: Rng,
}

impl ProcSlot {
    /// Global priority level this process queues at.
    pub fn level(&self) -> u16 {
        match self.class {
            SchedClass::TimeShare => self.ts.level() as u16,
            SchedClass::RealTime { rtpri, .. } => RT_BASE + (rtpri as u16).min(59),
        }
    }
}

/// The process currently holding the CPU.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Running {
    pub pid: Pid,
    pub level: u16,
    pub since: SimTime,
    /// Length of the scheduled slice (min of quantum and burst remainder).
    pub slice: Dur,
}

/// A bound socket with a bounded in-queue.
pub(crate) struct SockBuf {
    pub owner: Pid,
    pub cap_bytes: u64,
    pub queue: VecDeque<Message>,
    pub bytes: u64,
    pub dropped: u64,
}

/// Outcome of delivering a message to a host's socket table.
pub(crate) enum SocketPush {
    Delivered { owner: Pid, port: Port },
    BufferFull,
    NoSuchPort,
}

/// A simulated machine.
pub struct Host {
    pub(crate) id: HostId,
    pub(crate) name: String,
    pub(crate) procs: Vec<ProcSlot>,
    pub(crate) ready: ReadyQueues,
    pub(crate) running: Option<Running>,
    /// Invalidation token for in-flight CpuTick events.
    pub(crate) cpu_token: u64,
    pub(crate) table: DispatchTable,
    pub(crate) sockets: HashMap<Port, SockBuf>,
    /// RT processes suspended until their budget window rolls over.
    pub(crate) parked: Vec<Pid>,
    pub(crate) mem: Memory,
    pub(crate) load: LoadAvg,
    pub(crate) load_series: Series,
    /// Raw runnable-count samples (unbiased, unlike the EMA).
    pub(crate) runnable_series: Series,
    pub(crate) cpu_busy: Dur,
}

impl Host {
    pub(crate) fn new(id: HostId, name: String, frames: u32) -> Self {
        Host {
            id,
            name,
            procs: Vec::new(),
            ready: ReadyQueues::new(),
            running: None,
            cpu_token: 0,
            table: DispatchTable::solaris_like(),
            sockets: HashMap::new(),
            parked: Vec::new(),
            mem: Memory::new(frames),
            load: LoadAvg::one_minute(),
            load_series: Series::new(),
            runnable_series: Series::new(),
            cpu_busy: Dur::ZERO,
        }
    }

    /// Host identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// 1-minute load average.
    pub fn load_avg(&self) -> f64 {
        self.load.value()
    }

    /// Recorded load-average series (one point per second).
    pub fn load_series(&self) -> &Series {
        &self.load_series
    }

    /// Raw runnable-count samples (one per second) — an unbiased load
    /// measure that does not carry the EMA's warm-up transient.
    pub fn runnable_series(&self) -> &Series {
        &self.runnable_series
    }

    /// Cumulative busy CPU time.
    pub fn cpu_busy(&self) -> Dur {
        self.cpu_busy
    }

    /// Number of runnable processes right now (budget-parked RT processes
    /// count: they have demand, they are just throttled).
    pub fn runnable(&self) -> usize {
        self.ready.len() + self.parked.len() + usize::from(self.running.is_some())
    }

    /// Remove a process from the RT budget parking lot; true if it was
    /// parked.
    pub(crate) fn unpark(&mut self, pid: Pid) -> bool {
        if let Some(ix) = self.parked.iter().position(|&p| p == pid) {
            self.parked.swap_remove(ix);
            true
        } else {
            false
        }
    }

    /// Statistics snapshot for management queries.
    pub fn snapshot(&self) -> HostSnapshot {
        HostSnapshot {
            load_avg: self.load.value(),
            mem_utilization: self.mem.utilization(),
            runnable: self.runnable(),
            cpu_busy: self.cpu_busy,
        }
    }

    /// Cumulative CPU time of a process.
    pub fn proc_cpu_time(&self, pid: Pid) -> Option<Dur> {
        self.slot(pid).map(|s| s.cpu_time)
    }

    /// Memory accounting of a process.
    pub fn proc_mem(&self, pid: Pid) -> Option<ProcMem> {
        self.mem.info(pid)
    }

    /// Name of a process.
    pub fn proc_name(&self, pid: Pid) -> Option<&str> {
        self.slot(pid).map(|s| s.name.as_str())
    }

    /// Lifecycle state of a process.
    pub fn proc_state(&self, pid: Pid) -> Option<ProcState> {
        self.slot(pid).map(|s| s.state)
    }

    /// Scheduling class of a process.
    pub fn proc_class(&self, pid: Pid) -> Option<SchedClass> {
        self.slot(pid).map(|s| s.class)
    }

    /// Current TS user-priority boost of a process.
    pub fn proc_upri(&self, pid: Pid) -> Option<i16> {
        self.slot(pid).map(|s| s.ts.upri)
    }

    /// Scheduler diagnostic: ready-queue occupancy per level.
    pub fn ready_occupancy(&self) -> Vec<(u16, usize)> {
        self.ready.occupancy()
    }

    /// Messages dropped at a socket because its buffer was full.
    pub fn socket_dropped(&self, port: Port) -> u64 {
        self.sockets.get(&port).map_or(0, |s| s.dropped)
    }

    pub(crate) fn slot(&self, pid: Pid) -> Option<&ProcSlot> {
        debug_assert_eq!(pid.host, self.id);
        self.procs.get(pid.local as usize)
    }

    pub(crate) fn slot_mut(&mut self, pid: Pid) -> Option<&mut ProcSlot> {
        debug_assert_eq!(pid.host, self.id);
        self.procs.get_mut(pid.local as usize)
    }

    pub(crate) fn bind(&mut self, owner: Pid, port: Port, cap_bytes: u32) {
        let prev = self.sockets.insert(
            port,
            SockBuf {
                owner,
                cap_bytes: cap_bytes as u64,
                queue: VecDeque::new(),
                bytes: 0,
                dropped: 0,
            },
        );
        assert!(
            prev.is_none(),
            "port {port} already bound on host {}",
            self.name
        );
    }

    pub(crate) fn socket_push(&mut self, msg: Message) -> SocketPush {
        let Some(sock) = self.sockets.get_mut(&msg.dst.port) else {
            return SocketPush::NoSuchPort;
        };
        if sock.bytes + msg.bytes as u64 > sock.cap_bytes {
            sock.dropped += 1;
            return SocketPush::BufferFull;
        }
        sock.bytes += msg.bytes as u64;
        let owner = sock.owner;
        let port = msg.dst.port;
        sock.queue.push_back(msg);
        SocketPush::Delivered { owner, port }
    }

    pub(crate) fn socket_recv(&mut self, pid: Pid, port: Port) -> Option<Message> {
        let sock = self.sockets.get_mut(&port)?;
        if sock.owner != pid {
            return None;
        }
        let msg = sock.queue.pop_front()?;
        sock.bytes -= msg.bytes as u64;
        Some(msg)
    }

    pub(crate) fn socket_len(&self, port: Port) -> (usize, u64) {
        self.sockets
            .get(&port)
            .map_or((0, 0), |s| (s.queue.len(), s.bytes))
    }

    /// Compute the wake-up level for a process becoming runnable and
    /// refresh its quantum. Applies the `slpret` sleep-return boost when
    /// the process genuinely waited.
    pub(crate) fn wake_level(&mut self, pid: Pid, now: SimTime) -> (u16, bool) {
        debug_assert_eq!(pid.host, self.id);
        let table = &self.table;
        let slot = self
            .procs
            .get_mut(pid.local as usize)
            .expect("wake of unknown pid");
        let slept = now.since(slot.waiting_since) >= SLEEP_BOOST_MIN;
        if let SchedClass::TimeShare = slot.class {
            if slept {
                // A genuine sleep: boost and grant a fresh quantum.
                slot.ts.cpupri = table.entry(slot.ts.cpupri).slpret;
                slot.quantum_rem = table.entry(slot.ts.cpupri).quantum;
            } else if slot.quantum_rem.is_zero() {
                // Back-to-back bursts drained the quantum: this is CPU-bound
                // behaviour, so the quantum-expiry decay applies even though
                // the expiry fell on a burst boundary.
                slot.ts.cpupri = table.entry(slot.ts.cpupri).tqexp;
                slot.quantum_rem = table.entry(slot.ts.cpupri).quantum;
            }
            // Otherwise: keep the remaining quantum — chaining bursts does
            // not launder CPU-bound work into interactive work.
        } else {
            slot.quantum_rem = crate::sched::RT_QUANTUM;
        }
        (slot.level(), slept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Payload;
    use crate::ids::Endpoint;

    fn host() -> Host {
        Host::new(HostId(0), "test".into(), 1024)
    }

    fn push_slot(h: &mut Host, name: &str) -> Pid {
        let pid = Pid {
            host: h.id,
            local: h.procs.len() as u32,
        };
        h.procs.push(ProcSlot {
            name: name.into(),
            state: ProcState::Waiting,
            logic: None,
            class: SchedClass::TimeShare,
            ts: TsState::new(),
            quantum_rem: Dur::from_millis(100),
            burst_rem: Dur::ZERO,
            pending: VecDeque::new(),
            deliver_scheduled: false,
            cpu_time: Dur::ZERO,
            waiting_since: SimTime::ZERO,
            rt_used: Dur::ZERO,
            rt_exhausted: false,
            rng: Rng::new(1),
        });
        pid
    }

    fn msg_to(port: Port, bytes: u32) -> Message {
        Message {
            src: Endpoint::new(HostId(9), 1),
            dst: Endpoint::new(HostId(0), port),
            bytes,
            sent_at: SimTime::ZERO,
            payload: Payload::empty(),
        }
    }

    #[test]
    fn socket_push_recv_roundtrip() {
        let mut h = host();
        let pid = push_slot(&mut h, "a");
        h.bind(pid, 10, 1000);
        match h.socket_push(msg_to(10, 100)) {
            SocketPush::Delivered { owner, port } => {
                assert_eq!(owner, pid);
                assert_eq!(port, 10);
            }
            _ => panic!("expected delivery"),
        }
        assert_eq!(h.socket_len(10), (1, 100));
        let m = h.socket_recv(pid, 10).unwrap();
        assert_eq!(m.bytes, 100);
        assert_eq!(h.socket_len(10), (0, 0));
    }

    #[test]
    fn socket_tail_drop_when_full() {
        let mut h = host();
        let pid = push_slot(&mut h, "a");
        h.bind(pid, 10, 150);
        assert!(matches!(
            h.socket_push(msg_to(10, 100)),
            SocketPush::Delivered { .. }
        ));
        assert!(matches!(
            h.socket_push(msg_to(10, 100)),
            SocketPush::BufferFull
        ));
        assert_eq!(h.socket_dropped(10), 1);
        assert_eq!(h.socket_len(10), (1, 100));
    }

    #[test]
    fn socket_unknown_port_and_wrong_owner() {
        let mut h = host();
        let pid = push_slot(&mut h, "a");
        let other = push_slot(&mut h, "b");
        h.bind(pid, 10, 1000);
        assert!(matches!(
            h.socket_push(msg_to(99, 10)),
            SocketPush::NoSuchPort
        ));
        h.socket_push(msg_to(10, 10));
        assert!(h.socket_recv(other, 10).is_none(), "non-owner cannot read");
        assert!(h.socket_recv(pid, 10).is_some());
    }

    #[test]
    fn wake_level_applies_sleep_boost_only_after_real_wait() {
        let mut h = host();
        let pid = push_slot(&mut h, "a");
        // No wait: no boost, level stays at the default TS priority.
        let (lvl, slept) = h.wake_level(pid, SimTime::ZERO);
        assert_eq!(lvl, TsState::new().cpupri as u16);
        assert!(!slept);
        // Waited 5 ms: slpret boost applies.
        h.slot_mut(pid).unwrap().waiting_since = SimTime::ZERO;
        let (lvl, slept) = h.wake_level(pid, SimTime::from_micros(5_000));
        assert!(lvl >= 50, "boosted level {lvl}");
        assert!(slept);
    }

    #[test]
    fn rt_level_sits_above_all_ts() {
        let mut h = host();
        let pid = push_slot(&mut h, "rt");
        let slot = h.slot_mut(pid).unwrap();
        slot.class = SchedClass::RealTime {
            rtpri: 10,
            budget: None,
        };
        assert_eq!(slot.level(), RT_BASE + 10);
        slot.class = SchedClass::TimeShare;
        assert!(slot.level() < RT_BASE);
    }

    #[test]
    fn unpark_removes_exactly_once() {
        let mut h = host();
        let pid = push_slot(&mut h, "rt");
        h.parked.push(pid);
        assert!(h.unpark(pid));
        assert!(!h.unpark(pid));
        assert_eq!(h.runnable(), 0);
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut h = host();
        let pid = push_slot(&mut h, "a");
        h.mem.register(pid, 100);
        let snap = h.snapshot();
        assert_eq!(snap.runnable, 0);
        assert!(snap.mem_utilization > 0.0);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut h = host();
        let pid = push_slot(&mut h, "a");
        h.bind(pid, 5, 10);
        h.bind(pid, 5, 10);
    }
}
