//! Simulated time.
//!
//! The simulator keeps a virtual clock with microsecond resolution. All
//! timestamps are [`SimTime`] (microseconds since simulation start) and all
//! intervals are [`Dur`]. Both are thin wrappers over `u64` so they are
//! `Copy`, totally ordered and cheap to pass around; arithmetic saturates
//! rather than wrapping so a buggy workload cannot silently travel back in
//! time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the simulation epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The zero-length interval.
    pub const ZERO: Dur = Dur(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Dur(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Dur((s.max(0.0) * 1e6).round() as u64)
    }

    /// Length in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero interval.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two intervals.
    #[inline]
    pub fn min(self, rhs: Dur) -> Dur {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Dur {
        Dur((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_ordering_and_arithmetic() {
        let a = SimTime::from_micros(10);
        let b = a + Dur::from_micros(5);
        assert!(b > a);
        assert_eq!(b.since(a), Dur::from_micros(5));
        assert_eq!(a.since(b), Dur::ZERO, "since saturates");
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(Dur::from_millis(3), Dur::from_micros(3_000));
        assert_eq!(Dur::from_secs(2), Dur::from_micros(2_000_000));
        assert_eq!(Dur::from_secs_f64(0.5), Dur::from_micros(500_000));
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn dur_scaling_rounds() {
        assert_eq!(Dur::from_micros(10).mul_f64(0.25), Dur::from_micros(3));
        assert_eq!(Dur::from_micros(10).mul_f64(-2.0), Dur::ZERO);
    }

    #[test]
    fn saturating_add_at_extremes() {
        let far = SimTime::from_micros(u64::MAX - 1);
        assert_eq!((far + Dur::from_secs(10)).as_micros(), u64::MAX);
    }

    #[test]
    fn min_and_saturating_sub() {
        let a = Dur::from_micros(7);
        let b = Dur::from_micros(9);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a), Dur::from_micros(2));
        assert_eq!(a.saturating_sub(b), Dur::ZERO);
    }
}
