//! Deterministic fault injection: seeded schedules of message loss,
//! duplication and extra delay, hop blackout/flap windows, and process
//! kills.
//!
//! The paper's premise is that the management plane must keep working
//! while the system degrades; this module supplies the degradation. A
//! [`FaultPlan`] is built by a scenario (windows, selectors,
//! probabilities, kill times) and installed into a
//! [`crate::world::World`]; every probabilistic decision is drawn from
//! an [`Rng`] forked off the world's seed, so a faulted run is exactly
//! as reproducible as a healthy one: same setup + same seed = same
//! drops, same duplicates, same crashes.
//!
//! Message faults apply where the paper's control messages actually
//! travel — at the send syscall, before the network model — so they
//! cover host-local IPC (coordinator → host manager on the same host)
//! as well as cross-host traffic. Hop blackout/flap windows live in
//! [`crate::net::Network`] and model a dead link or a flapping switch
//! port rather than packet-level loss.

use crate::ids::{Endpoint, HostId, Pid, Port};
use crate::rng::Rng;
use crate::time::{Dur, SimTime};

/// A half-open time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
}

impl Window {
    /// Window covering `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        Window { from, until }
    }

    /// Window covering the whole run.
    pub fn always() -> Self {
        Window {
            from: SimTime::ZERO,
            until: SimTime::from_micros(u64::MAX),
        }
    }

    /// Is `t` inside the window?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// Which messages a fault rule applies to. An empty selector matches
/// everything; restrict by destination port set (e.g. the well-known
/// management ports) and/or destination host.
#[derive(Debug, Clone, Default)]
pub struct MsgSelector {
    dst_ports: Option<Vec<Port>>,
    dst_host: Option<HostId>,
}

impl MsgSelector {
    /// Match every message.
    pub fn any() -> Self {
        MsgSelector::default()
    }

    /// Match messages to any of the given destination ports.
    pub fn ports(ports: impl Into<Vec<Port>>) -> Self {
        MsgSelector {
            dst_ports: Some(ports.into()),
            dst_host: None,
        }
    }

    /// Restrict to messages destined to `host`.
    pub fn to_host(mut self, host: HostId) -> Self {
        self.dst_host = Some(host);
        self
    }

    fn matches(&self, dst: &Endpoint) -> bool {
        if let Some(ports) = &self.dst_ports {
            if !ports.contains(&dst.port) {
                return false;
            }
        }
        if let Some(h) = self.dst_host {
            if dst.host != h {
                return false;
            }
        }
        true
    }
}

#[derive(Debug, Clone)]
enum MsgFaultKind {
    /// Drop the message with probability `prob`.
    Lose { prob: f64 },
    /// Deliver one extra copy with probability `prob`.
    Duplicate { prob: f64 },
    /// Add `extra` latency with probability `prob`.
    Delay { prob: f64, extra: Dur },
}

#[derive(Debug, Clone)]
struct MsgFault {
    window: Window,
    select: MsgSelector,
    kind: MsgFaultKind,
}

/// A seeded schedule of faults, installed with
/// [`crate::world::World::install_faults`]. Builder-style: chain
/// [`FaultPlan::lose`], [`FaultPlan::duplicate`], [`FaultPlan::delay`]
/// and [`FaultPlan::kill_at`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    msg_faults: Vec<MsgFault>,
    kills: Vec<(SimTime, Pid)>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Drop matching messages with probability `prob` inside `window`.
    pub fn lose(mut self, window: Window, select: MsgSelector, prob: f64) -> Self {
        self.msg_faults.push(MsgFault {
            window,
            select,
            kind: MsgFaultKind::Lose {
                prob: prob.clamp(0.0, 1.0),
            },
        });
        self
    }

    /// Deliver an extra copy of matching messages with probability
    /// `prob` inside `window` (at-least-once delivery).
    pub fn duplicate(mut self, window: Window, select: MsgSelector, prob: f64) -> Self {
        self.msg_faults.push(MsgFault {
            window,
            select,
            kind: MsgFaultKind::Duplicate {
                prob: prob.clamp(0.0, 1.0),
            },
        });
        self
    }

    /// Add `extra` latency to matching messages with probability `prob`
    /// inside `window`.
    pub fn delay(mut self, window: Window, select: MsgSelector, prob: f64, extra: Dur) -> Self {
        self.msg_faults.push(MsgFault {
            window,
            select,
            kind: MsgFaultKind::Delay {
                prob: prob.clamp(0.0, 1.0),
                extra,
            },
        });
        self
    }

    /// Kill `pid` at simulated time `at` (process death / crash).
    pub fn kill_at(mut self, at: SimTime, pid: Pid) -> Self {
        self.kills.push((at, pid));
        self
    }

    /// The scheduled kills, for the world to enqueue.
    pub(crate) fn kills(&self) -> &[(SimTime, Pid)] {
        &self.kills
    }
}

/// Counters of injected faults, for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by loss rules.
    pub msgs_dropped: u64,
    /// Extra copies delivered by duplication rules.
    pub msgs_duplicated: u64,
    /// Messages given extra latency by delay rules.
    pub msgs_delayed: u64,
    /// Processes killed by the schedule (not by scenario code).
    pub kills: u64,
}

/// What the injector decided for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SendVerdict {
    /// Lose the message entirely.
    pub dropped: bool,
    /// Deliver one extra copy.
    pub duplicate: bool,
    /// Extra latency to add to every delivered copy.
    pub extra_delay: Dur,
}

impl SendVerdict {
    const CLEAN: SendVerdict = SendVerdict {
        dropped: false,
        duplicate: false,
        extra_delay: Dur::ZERO,
    };
}

/// The plan plus its forked RNG; owned by the world.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    pub stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, rng: Rng) -> Self {
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// Decide the fate of a message sent to `dst` at `now`.
    ///
    /// Every matching rule draws exactly once, so the stream of random
    /// decisions is a deterministic function of the (plan, seed, event
    /// order) triple.
    pub fn on_send(&mut self, dst: &Endpoint, now: SimTime) -> SendVerdict {
        let mut v = SendVerdict::CLEAN;
        for f in &self.plan.msg_faults {
            if !f.window.contains(now) || !f.select.matches(dst) {
                continue;
            }
            match f.kind {
                MsgFaultKind::Lose { prob } => {
                    if self.rng.next_f64() < prob {
                        v.dropped = true;
                    }
                }
                MsgFaultKind::Duplicate { prob } => {
                    if self.rng.next_f64() < prob {
                        v.duplicate = true;
                    }
                }
                MsgFaultKind::Delay { prob, extra } => {
                    if self.rng.next_f64() < prob {
                        v.extra_delay += extra;
                    }
                }
            }
        }
        if v.dropped {
            self.stats.msgs_dropped += 1;
        } else {
            if v.duplicate {
                self.stats.msgs_duplicated += 1;
            }
            if !v.extra_delay.is_zero() {
                self.stats.msgs_delayed += 1;
            }
        }
        v
    }

    pub fn record_kill(&mut self) {
        self.stats.kills += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(host: u32, port: Port) -> Endpoint {
        Endpoint::new(HostId(host), port)
    }

    #[test]
    fn selector_filters_by_port_and_host() {
        let s = MsgSelector::ports(vec![10, 11]).to_host(HostId(2));
        assert!(s.matches(&ep(2, 10)));
        assert!(!s.matches(&ep(2, 99)), "wrong port");
        assert!(!s.matches(&ep(1, 10)), "wrong host");
        assert!(MsgSelector::any().matches(&ep(7, 7)));
    }

    #[test]
    fn loss_probability_zero_and_one() {
        let w = Window::always();
        let mut never = FaultInjector::new(
            FaultPlan::new().lose(w, MsgSelector::any(), 0.0),
            Rng::new(1),
        );
        let mut always = FaultInjector::new(
            FaultPlan::new().lose(w, MsgSelector::any(), 1.0),
            Rng::new(1),
        );
        for i in 0..100 {
            let t = SimTime::from_micros(i);
            assert!(!never.on_send(&ep(0, 1), t).dropped);
            assert!(always.on_send(&ep(0, 1), t).dropped);
        }
        assert_eq!(never.stats.msgs_dropped, 0);
        assert_eq!(always.stats.msgs_dropped, 100);
    }

    #[test]
    fn window_gates_the_rule() {
        let w = Window::new(SimTime::from_micros(10), SimTime::from_micros(20));
        let mut inj = FaultInjector::new(
            FaultPlan::new().lose(w, MsgSelector::any(), 1.0),
            Rng::new(1),
        );
        assert!(!inj.on_send(&ep(0, 1), SimTime::from_micros(9)).dropped);
        assert!(inj.on_send(&ep(0, 1), SimTime::from_micros(10)).dropped);
        assert!(inj.on_send(&ep(0, 1), SimTime::from_micros(19)).dropped);
        assert!(!inj.on_send(&ep(0, 1), SimTime::from_micros(20)).dropped);
    }

    #[test]
    fn same_seed_same_verdicts() {
        let plan = FaultPlan::new()
            .lose(Window::always(), MsgSelector::any(), 0.3)
            .duplicate(Window::always(), MsgSelector::any(), 0.2)
            .delay(
                Window::always(),
                MsgSelector::any(),
                0.1,
                Dur::from_millis(5),
            );
        let run = |seed| {
            let mut inj = FaultInjector::new(plan.clone(), Rng::new(seed));
            (0..200)
                .map(|i| inj.on_send(&ep(0, 1), SimTime::from_micros(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn intermediate_loss_rate_is_plausible() {
        let mut inj = FaultInjector::new(
            FaultPlan::new().lose(Window::always(), MsgSelector::any(), 0.3),
            Rng::new(42),
        );
        for i in 0..1000 {
            inj.on_send(&ep(0, 1), SimTime::from_micros(i));
        }
        let d = inj.stats.msgs_dropped;
        assert!((200..400).contains(&d), "0.3 loss over 1000 sends: {d}");
    }

    #[test]
    fn duplicate_and_delay_do_not_count_on_dropped_messages() {
        let mut inj = FaultInjector::new(
            FaultPlan::new()
                .lose(Window::always(), MsgSelector::any(), 1.0)
                .duplicate(Window::always(), MsgSelector::any(), 1.0)
                .delay(
                    Window::always(),
                    MsgSelector::any(),
                    1.0,
                    Dur::from_millis(1),
                ),
            Rng::new(3),
        );
        inj.on_send(&ep(0, 1), SimTime::ZERO);
        assert_eq!(inj.stats.msgs_dropped, 1);
        assert_eq!(inj.stats.msgs_duplicated, 0);
        assert_eq!(inj.stats.msgs_delayed, 0);
    }
}
