//! The process model: application and management logic plugged into the
//! simulated kernel.
//!
//! A process is a state machine implementing [`ProcessLogic`]. The kernel
//! invokes [`ProcessLogic::on_event`] with one [`ProcEvent`] at a time; the
//! logic reacts by making synchronous reads (receive a message, inspect a
//! socket buffer, read host statistics) and by issuing *syscalls* through
//! [`Ctx`] (request a CPU burst, set a timer, send a message, adjust
//! another process's priority, ...). Syscalls are buffered and applied by
//! the kernel after the callback returns, which keeps the callback free of
//! re-entrancy hazards.
//!
//! At most one *blocking* syscall ([`Ctx::run`] or [`Ctx::exit`]) may be
//! issued per callback; any number of non-blocking ones may accompany it.
//! A process that issues no blocking syscall simply waits for its next
//! event (timer or message).

use std::any::Any;

use crate::event::{Message, Payload, ProcEvent};
use crate::ids::{Endpoint, HostId, Pid, Port};
use crate::memory::ProcMem;
use crate::rng::Rng;
use crate::sched::SchedClass;
use crate::time::{Dur, SimTime};

/// Blanket object-safe downcasting support for process logic, so
/// experiments can retrieve their workload objects (and the metrics they
/// accumulated) after a run.
pub trait AsAny {
    /// Upcast to `Any` for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast to `Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Behaviour of a simulated process.
pub trait ProcessLogic: Send + AsAny {
    /// React to one event. The first event a process receives is
    /// [`ProcEvent::Start`].
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent);
}

/// Static configuration for spawning a process.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// Human-readable name (the paper's "executable" name).
    pub name: String,
    /// Initial scheduling class.
    pub class: SchedClass,
    /// Working-set size in pages.
    pub working_set: u32,
    /// Ports to bind, with socket-buffer capacities in bytes.
    pub ports: Vec<(Port, u32)>,
}

impl ProcConfig {
    /// New config with defaults: TS class, no working set, no ports.
    pub fn new(name: impl Into<String>) -> Self {
        ProcConfig {
            name: name.into(),
            class: SchedClass::TimeShare,
            working_set: 0,
            ports: Vec::new(),
        }
    }

    /// Set the initial scheduling class.
    pub fn class(mut self, class: SchedClass) -> Self {
        self.class = class;
        self
    }

    /// Set the working-set size in pages.
    pub fn working_set(mut self, pages: u32) -> Self {
        self.working_set = pages;
        self
    }

    /// Bind a port with the given socket-buffer capacity.
    pub fn port(mut self, port: Port, capacity_bytes: u32) -> Self {
        self.ports.push((port, capacity_bytes));
        self
    }
}

/// `priocntl`-style scheduling control commands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriocntlCmd {
    /// Set the TS user-priority boost (clamped to ±60 by the kernel).
    SetUpri(i16),
    /// Add to the TS user-priority boost.
    AdjustUpri(i16),
    /// Change scheduling class.
    SetClass(SchedClass),
}

/// Buffered kernel requests. Applied in order after the callback returns.
pub(crate) enum Syscall {
    Run(Dur),
    SetTimer(Dur, u64),
    Send {
        dst: Endpoint,
        src_port: Port,
        bytes: u32,
        payload: Payload,
    },
    Exit,
    Priocntl {
        target: Pid,
        cmd: PriocntlCmd,
    },
    MemCtl {
        target: Pid,
        delta_pages: i64,
    },
    Reroute {
        a: HostId,
        b: HostId,
        hops: Vec<crate::ids::HopId>,
    },
    Spawn {
        host: HostId,
        config: ProcConfig,
        logic: Box<dyn ProcessLogic>,
    },
    Kill(Pid),
}

/// Snapshot of host-level statistics visible to management processes.
#[derive(Debug, Clone, Copy)]
pub struct HostSnapshot {
    /// 1-minute load average.
    pub load_avg: f64,
    /// Physical-memory utilization in `[0, 1]`.
    pub mem_utilization: f64,
    /// Number of runnable (ready + running) processes.
    pub runnable: usize,
    /// Cumulative busy CPU time.
    pub cpu_busy: Dur,
}

/// The kernel interface handed to a process callback.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) pid: Pid,
    pub(crate) host: &'a mut crate::host::Host,
    pub(crate) rng: &'a mut Rng,
    pub(crate) syscalls: Vec<Syscall>,
    pub(crate) blocking_issued: bool,
    pub(crate) log_lines: Vec<String>,
    pub(crate) logging: bool,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's host.
    pub fn host_id(&self) -> HostId {
        self.pid.host
    }

    /// The process's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    fn blocking(&mut self, what: &str) {
        assert!(
            !self.blocking_issued,
            "process {} issued a second blocking syscall ({what}) in one callback",
            self.pid
        );
        self.blocking_issued = true;
    }

    /// Request a CPU burst of `cpu` time. The kernel will schedule the
    /// process (subject to priorities and page faults) and deliver
    /// [`ProcEvent::BurstDone`] when the burst has consumed its CPU time.
    /// Blocking: at most one per callback.
    pub fn run(&mut self, cpu: Dur) {
        self.blocking("run");
        self.syscalls.push(Syscall::Run(cpu));
    }

    /// Arrange for [`ProcEvent::Timer`]`(tag)` after `delay`. Non-blocking;
    /// multiple timers may be outstanding.
    pub fn set_timer(&mut self, delay: Dur, tag: u64) {
        self.syscalls.push(Syscall::SetTimer(delay, tag));
    }

    /// Send a message. Same-host destinations are delivered with local IPC
    /// latency; remote ones traverse the configured network route. The
    /// payload must be `Clone` so fault injection can duplicate it.
    pub fn send<T: Any + Send + Clone>(
        &mut self,
        dst: Endpoint,
        src_port: Port,
        bytes: u32,
        payload: T,
    ) {
        self.syscalls.push(Syscall::Send {
            dst,
            src_port,
            bytes,
            payload: Payload::new(payload),
        });
    }

    /// Terminate this process. Blocking (and final).
    pub fn exit(&mut self) {
        self.blocking("exit");
        self.syscalls.push(Syscall::Exit);
    }

    /// Pop one queued message from an owned port. Guaranteed to return a
    /// message when called in response to a [`ProcEvent::Readable`] for
    /// that port (one `Readable` is delivered per queued message).
    pub fn recv(&mut self, port: Port) -> Option<Message> {
        self.host.socket_recv(self.pid, port)
    }

    /// Queue occupancy of an owned port: `(messages, bytes)`. This is the
    /// quantity the paper's communication-buffer sensor reads (Example 5).
    pub fn buffer_len(&self, port: Port) -> (usize, u64) {
        self.host.socket_len(port)
    }

    /// Host statistics (load average, memory, runnable count) — what a QoS
    /// Host Manager reads on its own machine.
    pub fn host_stats(&self) -> HostSnapshot {
        self.host.snapshot()
    }

    /// Cumulative CPU time consumed by a process on this host.
    pub fn proc_cpu_time(&self, pid: Pid) -> Option<Dur> {
        self.host.proc_cpu_time(pid)
    }

    /// Memory accounting of a process on this host.
    pub fn proc_mem(&self, pid: Pid) -> Option<ProcMem> {
        self.host.proc_mem(pid)
    }

    /// Adjust scheduling of a process on this host (the CPU resource
    /// manager's knob; applied after the callback returns).
    pub fn priocntl(&mut self, target: Pid, cmd: PriocntlCmd) {
        self.syscalls.push(Syscall::Priocntl { target, cmd });
    }

    /// Adjust a process's resident set by `delta_pages` (the memory
    /// resource manager's knob).
    pub fn memctl(&mut self, target: Pid, delta_pages: i64) {
        self.syscalls.push(Syscall::MemCtl {
            target,
            delta_pages,
        });
    }

    /// Reconfigure the route between two hosts (network management
    /// interface used for the "reroute traffic around a congested switch"
    /// adaptation).
    pub fn reroute(&mut self, a: HostId, b: HostId, hops: Vec<crate::ids::HopId>) {
        self.syscalls.push(Syscall::Reroute { a, b, hops });
    }

    /// Spawn a new process (e.g. the "restart a failed process"
    /// adaptation).
    pub fn spawn(&mut self, host: HostId, config: ProcConfig, logic: Box<dyn ProcessLogic>) {
        self.syscalls.push(Syscall::Spawn {
            host,
            config,
            logic,
        });
    }

    /// Kill a process on this host.
    pub fn kill(&mut self, target: Pid) {
        self.syscalls.push(Syscall::Kill(target));
    }

    /// Append a line to the world's trace, if tracing is enabled
    /// ([`crate::world::World::enable_trace`]); free otherwise. The
    /// closure style keeps formatting cost off the disabled path.
    pub fn log(&mut self, line: impl FnOnce() -> String) {
        if self.logging {
            let text = line();
            self.log_lines.push(text);
        }
    }
}
