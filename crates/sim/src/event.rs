//! The global event queue and message types.
//!
//! A single binary heap orders all pending events by `(time, sequence)`.
//! The monotonically increasing sequence number makes ordering of
//! simultaneous events deterministic (FIFO in scheduling order), which is
//! what makes whole-system runs reproducible from a seed.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::ids::{Endpoint, HostId, Pid};
use crate::time::SimTime;

/// An opaque, typed message payload. Applications and managers exchange
/// their own struct types; receivers downcast with [`Payload::get`].
///
/// Payload types must be `Clone` so the fault-injection layer can model
/// at-least-once delivery (duplicated messages) without knowing the
/// concrete type: the constructor captures a monomorphised clone
/// function alongside the erased value.
pub struct Payload {
    value: Box<dyn Any + Send>,
    clone_fn: fn(&(dyn Any + Send)) -> Box<dyn Any + Send>,
}

fn clone_boxed<T: Any + Send + Clone>(any: &(dyn Any + Send)) -> Box<dyn Any + Send> {
    match any.downcast_ref::<T>() {
        Some(v) => Box::new(v.clone()),
        // clone_fn is only ever paired with the value it was created
        // from, so the downcast cannot fail.
        None => unreachable!("payload clone_fn type mismatch"),
    }
}

impl Payload {
    /// Wrap a value as a payload.
    pub fn new<T: Any + Send + Clone>(value: T) -> Self {
        Payload {
            value: Box::new(value),
            clone_fn: clone_boxed::<T>,
        }
    }

    /// An empty payload (pure byte traffic, e.g. cross traffic).
    pub fn empty() -> Self {
        Payload::new(())
    }

    /// Borrow the payload as `T`, if it is one.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.value.downcast_ref::<T>()
    }

    /// Consume the payload, returning `T` if it is one.
    pub fn take<T: Any>(self) -> Result<T, Payload> {
        let clone_fn = self.clone_fn;
        match self.value.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(b) => Err(Payload { value: b, clone_fn }),
        }
    }

    /// True if the payload is of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.value.is::<T>()
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload {
            value: (self.clone_fn)(&*self.value),
            clone_fn: self.clone_fn,
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Payload(..)")
    }
}

/// A message in flight or queued in a socket buffer. `Clone` exists so
/// the fault layer can inject duplicate deliveries.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Wire size in bytes; drives transmission/queueing delay and socket
    /// buffer occupancy.
    pub bytes: u32,
    /// Time the sender issued the send.
    pub sent_at: SimTime,
    /// Typed payload.
    pub payload: Payload,
}

/// Events a process receives through its [`crate::proc::ProcessLogic`]
/// callback.
#[derive(Debug)]
pub enum ProcEvent {
    /// The process's requested CPU burst has completed.
    BurstDone,
    /// A timer set with `set_timer` fired; carries the caller's tag.
    Timer(u64),
    /// One message arrived on the given port. The contract is one
    /// `Readable` per delivered message: a `recv` on that port is
    /// guaranteed to return a message if the process only receives in
    /// response to `Readable` events.
    Readable(crate::ids::Port),
    /// First event a process ever receives.
    Start,
}

/// World-level events processed by the simulation loop.
pub(crate) enum Event {
    /// A CPU's current time slice ends (quantum expiry or burst completion).
    /// Stale ticks are filtered by `token`.
    CpuTick { host: HostId, token: u64 },
    /// Deliver one pending [`ProcEvent`] to a waiting process.
    Deliver { pid: Pid },
    /// A process timer fires.
    Timer { pid: Pid, tag: u64 },
    /// A message finishes traversing the network and arrives at its
    /// destination host.
    NetArrive { msg: Message },
    /// Periodic per-host bookkeeping: load average sampling and
    /// time-sharing starvation boost.
    HostTick { host: HostId },
    /// A scheduled fault-injection kill of a process.
    FaultKill { pid: Pid },
}

pub(crate) struct Queued {
    pub time: SimTime,
    pub seq: u64,
    pub event: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic time-ordered event queue.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Queued>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Queued { time, seq, event });
    }

    pub fn pop(&mut self) -> Option<Queued> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.time)
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn tick(host: u32) -> Event {
        Event::CpuTick {
            host: HostId(host),
            token: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO;
        q.push(t0 + Dur::from_micros(30), tick(3));
        q.push(t0 + Dur::from_micros(10), tick(1));
        q.push(t0 + Dur::from_micros(20), tick(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.event {
                Event::CpuTick { host, .. } => host.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.push(t, tick(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.event {
                Event::CpuTick { host, .. } => host.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn payload_downcast_roundtrip() {
        #[derive(Debug, Clone, PartialEq)]
        struct Frame(u32);
        let p = Payload::new(Frame(9));
        assert!(p.is::<Frame>());
        assert_eq!(p.get::<Frame>(), Some(&Frame(9)));
        assert!(p.get::<String>().is_none());
        assert_eq!(p.take::<Frame>().unwrap(), Frame(9));
    }

    #[test]
    fn payload_take_wrong_type_returns_self() {
        let p = Payload::new(42u32);
        let p = p.take::<String>().unwrap_err();
        assert_eq!(p.take::<u32>().unwrap(), 42);
    }

    #[test]
    fn payload_clone_preserves_type_and_value() {
        let p = Payload::new(String::from("dup"));
        let c = p.clone();
        assert_eq!(p.get::<String>().map(String::as_str), Some("dup"));
        assert_eq!(c.take::<String>().unwrap(), "dup");
    }

    #[test]
    fn payload_clone_survives_failed_take() {
        // The clone_fn must travel with the box through the Err path.
        let p = Payload::new(7u8).take::<String>().unwrap_err();
        assert_eq!(*p.clone().get::<u8>().unwrap(), 7);
    }
}
