//! # qos-sim — deterministic distributed-system substrate
//!
//! A discrete-event simulator standing in for the Solaris 2.8 testbed of
//! the paper *"Managing Soft QoS Requirements in Distributed Systems"*
//! (Molenkamp, Katchabaw, Lutfiyya, Bauer; ICPP 2000 workshops): hosts
//! with a Solaris-style time-sharing CPU scheduler plus a real-time class,
//! physical memory with resident-set control, socket buffers, and a
//! network of links and switch queues with injectable cross traffic.
//!
//! Everything above this crate — instrumented applications, QoS host and
//! domain managers, policy distribution — runs as [`proc::ProcessLogic`]
//! state machines inside this substrate, communicating through simulated
//! messages exactly as the paper's prototype components communicated
//! through message queues and sockets.
//!
//! Determinism: a run is a pure function of its construction and a `u64`
//! seed. Simultaneous events process in scheduling order, every random
//! draw comes from seeded per-entity streams, and simulated time is
//! integral microseconds.
//!
//! ## Quick example
//!
//! ```
//! use qos_sim::prelude::*;
//!
//! struct Ticker { ticks: u32 }
//! impl ProcessLogic for Ticker {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
//!         match ev {
//!             ProcEvent::Start | ProcEvent::Timer(_) => {
//!                 self.ticks += 1;
//!                 ctx.set_timer(Dur::from_millis(100), 0);
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut world = World::new(42);
//! let host = world.add_host("node-0", 1 << 16);
//! let pid = world.spawn(host, ProcConfig::new("ticker"), Ticker { ticks: 0 });
//! world.run_for(Dur::from_secs(1));
//! assert_eq!(world.logic::<Ticker>(pid).unwrap().ticks, 11);
//! ```

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod event;
pub mod fault;
pub mod host;
pub mod ids;
pub mod memory;
pub mod net;
pub mod proc;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod world;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::event::{Message, Payload, ProcEvent};
    pub use crate::fault::{FaultPlan, FaultStats, MsgSelector, Window};
    pub use crate::host::ProcState;
    pub use crate::ids::{DomainId, Endpoint, HopId, HostId, Pid, Port};
    pub use crate::proc::{Ctx, PriocntlCmd, ProcConfig, ProcessLogic};
    pub use crate::sched::{RtBudget, SchedClass};
    pub use crate::time::{Dur, SimTime};
    pub use crate::world::{Trace, World};
}

pub use prelude::*;
