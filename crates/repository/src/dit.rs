//! The directory information tree: hierarchical entry storage with
//! base/one-level/subtree search — the Repository Service of Section 6.2.

use std::collections::BTreeMap;

use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;
use core::fmt;

/// Search scope, as in LDAP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Immediate children of the base.
    One,
    /// The base and everything beneath it.
    Sub,
}

/// Directory operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DitError {
    /// Adding an entry whose parent does not exist.
    NoSuchParent(String),
    /// Adding an entry that already exists.
    AlreadyExists(String),
    /// Operating on a missing entry.
    NoSuchEntry(String),
    /// Deleting an entry that still has children.
    NotLeaf(String),
}

impl fmt::Display for DitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DitError::NoSuchParent(dn) => write!(f, "parent of '{dn}' does not exist"),
            DitError::AlreadyExists(dn) => write!(f, "entry '{dn}' already exists"),
            DitError::NoSuchEntry(dn) => write!(f, "entry '{dn}' does not exist"),
            DitError::NotLeaf(dn) => write!(f, "entry '{dn}' has children"),
        }
    }
}
impl std::error::Error for DitError {}

/// The tree. The root DN ("") always exists implicitly.
#[derive(Debug, Default, Clone)]
pub struct Dit {
    entries: BTreeMap<Dn, Entry>,
}

impl Dit {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add an entry. Its parent must exist (or be the root).
    pub fn add(&mut self, entry: Entry) -> Result<(), DitError> {
        let dn = entry.dn.clone();
        if self.entries.contains_key(&dn) {
            return Err(DitError::AlreadyExists(dn.to_string()));
        }
        if let Some(parent) = dn.parent() {
            if parent.depth() > 0 && !self.entries.contains_key(&parent) {
                return Err(DitError::NoSuchParent(dn.to_string()));
            }
        }
        self.entries.insert(dn, entry);
        Ok(())
    }

    /// Add an entry, creating missing ancestors as bare `organizationalUnit`
    /// containers (convenience for schema loaders).
    pub fn add_with_parents(&mut self, entry: Entry) -> Result<(), DitError> {
        let mut missing = Vec::new();
        let mut cur = entry.dn.parent();
        while let Some(p) = cur {
            if p.depth() == 0 || self.entries.contains_key(&p) {
                break;
            }
            missing.push(p.clone());
            cur = p.parent();
        }
        for dn in missing.into_iter().rev() {
            self.add(Entry::new(dn).with("objectClass", "organizationalUnit"))?;
        }
        self.add(entry)
    }

    /// Fetch an entry.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(dn)
    }

    /// Mutable fetch (modify in place).
    pub fn get_mut(&mut self, dn: &Dn) -> Option<&mut Entry> {
        self.entries.get_mut(dn)
    }

    /// Delete a leaf entry.
    pub fn delete(&mut self, dn: &Dn) -> Result<Entry, DitError> {
        if !self.entries.contains_key(dn) {
            return Err(DitError::NoSuchEntry(dn.to_string()));
        }
        if self.entries.keys().any(|k| k.is_child_of(dn)) {
            return Err(DitError::NotLeaf(dn.to_string()));
        }
        Ok(self.entries.remove(dn).expect("checked present"))
    }

    /// Delete an entry and its whole subtree; returns how many entries
    /// were removed.
    pub fn delete_subtree(&mut self, dn: &Dn) -> usize {
        let doomed: Vec<Dn> = self
            .entries
            .keys()
            .filter(|k| k.is_under(dn))
            .cloned()
            .collect();
        let n = doomed.len();
        for d in doomed {
            self.entries.remove(&d);
        }
        n
    }

    /// Search under `base` with the given scope and filter.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|(dn, _)| match scope {
                Scope::Base => *dn == base,
                Scope::One => dn.is_child_of(base),
                Scope::Sub => dn.is_under(base),
            })
            .filter(|(_, e)| filter.matches(e))
            .map(|(_, e)| e)
            .collect()
    }

    /// Iterate all entries in DN order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn seeded() -> Dit {
        let mut d = Dit::new();
        d.add(Entry::new(dn("o=qos")).with("objectClass", "organization"))
            .unwrap();
        d.add(Entry::new(dn("ou=policies,o=qos")).with("objectClass", "organizationalUnit"))
            .unwrap();
        d.add(
            Entry::new(dn("cn=p1,ou=policies,o=qos"))
                .with("objectClass", "qosPolicy")
                .with("app", "video"),
        )
        .unwrap();
        d.add(
            Entry::new(dn("cn=p2,ou=policies,o=qos"))
                .with("objectClass", "qosPolicy")
                .with("app", "web"),
        )
        .unwrap();
        d
    }

    #[test]
    fn add_requires_parent() {
        let mut d = Dit::new();
        let orphan = Entry::new(dn("cn=x,ou=nowhere,o=qos"));
        assert_eq!(
            d.add(orphan.clone()),
            Err(DitError::NoSuchParent("cn=x,ou=nowhere,o=qos".into()))
        );
        assert!(d.add_with_parents(orphan).is_ok());
        assert_eq!(d.len(), 3, "two ancestors auto-created");
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut d = seeded();
        let e = Entry::new(dn("cn=p1,ou=policies,o=qos"));
        assert!(matches!(d.add(e), Err(DitError::AlreadyExists(_))));
    }

    #[test]
    fn scopes() {
        let d = seeded();
        let any = Filter::parse("(objectClass=*)").unwrap();
        assert_eq!(
            d.search(&dn("ou=policies,o=qos"), Scope::Base, &any).len(),
            1
        );
        assert_eq!(
            d.search(&dn("ou=policies,o=qos"), Scope::One, &any).len(),
            2
        );
        assert_eq!(
            d.search(&dn("ou=policies,o=qos"), Scope::Sub, &any).len(),
            3
        );
        assert_eq!(d.search(&dn("o=qos"), Scope::Sub, &any).len(), 4);
        assert_eq!(d.search(&Dn::root(), Scope::Sub, &any).len(), 4);
    }

    #[test]
    fn search_with_filter() {
        let d = seeded();
        let f = Filter::parse("(&(objectClass=qosPolicy)(app=video))").unwrap();
        let hits = d.search(&dn("o=qos"), Scope::Sub, &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("app"), Some("video"));
    }

    #[test]
    fn delete_leaf_only() {
        let mut d = seeded();
        assert!(matches!(
            d.delete(&dn("ou=policies,o=qos")),
            Err(DitError::NotLeaf(_))
        ));
        assert!(d.delete(&dn("cn=p1,ou=policies,o=qos")).is_ok());
        assert!(matches!(
            d.delete(&dn("cn=p1,ou=policies,o=qos")),
            Err(DitError::NoSuchEntry(_))
        ));
    }

    #[test]
    fn delete_subtree_counts() {
        let mut d = seeded();
        assert_eq!(d.delete_subtree(&dn("ou=policies,o=qos")), 3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn modify_in_place() {
        let mut d = seeded();
        d.get_mut(&dn("cn=p1,ou=policies,o=qos"))
            .unwrap()
            .set("app", vec!["newapp".into()]);
        assert_eq!(
            d.get(&dn("cn=p1,ou=policies,o=qos")).unwrap().get("app"),
            Some("newapp")
        );
    }
}
