//! Directory entries: a DN plus multi-valued attributes.

use std::collections::BTreeMap;

use crate::dn::Dn;

/// A directory entry. Attribute types are lowercased; each may hold
/// several values (LDAP semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The entry's distinguished name.
    pub dn: Dn,
    attrs: BTreeMap<String, Vec<String>>,
}

impl Entry {
    /// Empty entry at a DN.
    pub fn new(dn: Dn) -> Self {
        Entry {
            dn,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder: add one attribute value.
    pub fn with(mut self, attr: &str, value: impl Into<String>) -> Self {
        self.add(attr, value);
        self
    }

    /// Add a value to an attribute.
    ///
    /// `dn` is not a storable attribute (it is the entry's name, emitted
    /// as the LDIF header line); attempting to use it is a programming
    /// error.
    pub fn add(&mut self, attr: &str, value: impl Into<String>) {
        assert!(
            !attr.eq_ignore_ascii_case("dn"),
            "'dn' is the entry name, not an attribute"
        );
        self.attrs
            .entry(attr.to_ascii_lowercase())
            .or_default()
            .push(value.into());
    }

    /// Replace all values of an attribute.
    pub fn set(&mut self, attr: &str, values: Vec<String>) {
        self.attrs.insert(attr.to_ascii_lowercase(), values);
    }

    /// Remove an attribute entirely; true if present.
    pub fn remove(&mut self, attr: &str) -> bool {
        self.attrs.remove(&attr.to_ascii_lowercase()).is_some()
    }

    /// First value of an attribute.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.attrs
            .get(&attr.to_ascii_lowercase())
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// All values of an attribute.
    pub fn get_all(&self, attr: &str) -> &[String] {
        self.attrs
            .get(&attr.to_ascii_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// True if the attribute exists with at least one value.
    pub fn has(&self, attr: &str) -> bool {
        !self.get_all(attr).is_empty()
    }

    /// True if the entry carries this objectClass (case-insensitive
    /// value comparison, as LDAP treats objectClass).
    pub fn has_class(&self, class: &str) -> bool {
        self.get_all("objectclass")
            .iter()
            .any(|v| v.eq_ignore_ascii_case(class))
    }

    /// Iterate attributes as `(type, values)` in sorted order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    #[test]
    fn multivalued_attributes() {
        let mut e = Entry::new(dn("cn=p,o=qos"))
            .with("objectClass", "top")
            .with("objectClass", "qosPolicy");
        e.add("attrName", "frame_rate");
        assert_eq!(e.get("objectclass"), Some("top"));
        assert_eq!(e.get_all("OBJECTCLASS").len(), 2);
        assert!(e.has_class("qospolicy"));
        assert!(!e.has_class("sensor"));
        assert!(e.has("attrname"));
    }

    #[test]
    fn set_replaces_and_remove_deletes() {
        let mut e = Entry::new(dn("cn=x"));
        e.add("a", "1");
        e.add("a", "2");
        e.set("a", vec!["3".into()]);
        assert_eq!(e.get_all("a"), ["3".to_string()]);
        assert!(e.remove("a"));
        assert!(!e.remove("a"));
        assert!(!e.has("a"));
        assert_eq!(e.get("a"), None);
    }

    #[test]
    #[should_panic(expected = "not an attribute")]
    fn dn_attribute_rejected() {
        let mut e = Entry::new(dn("cn=x"));
        e.add("dn", "cn=evil");
    }

    #[test]
    fn attrs_iteration_sorted() {
        let e = Entry::new(dn("cn=x")).with("b", "2").with("a", "1");
        let keys: Vec<&str> = e.attrs().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
