//! LDIF import/export — the paper's prototype "gets translated into an
//! LDIF file which can be easily uploaded into LDAP".
//!
//! Supported: `dn:` lines, `attr: value` lines, multi-valued attributes,
//! line continuations (leading space), `#` comments, blank-line entry
//! separation.

use core::fmt;

use crate::dn::Dn;
use crate::entry::Entry;

/// LDIF syntax error with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdifError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LDIF error at line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for LdifError {}

/// Parse LDIF text into entries (in file order).
pub fn parse_ldif(src: &str) -> Result<Vec<Entry>, LdifError> {
    // Unfold continuations: a line starting with a single space continues
    // the previous line.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (ix, raw) in src.lines().enumerate() {
        let lineno = ix + 1;
        if let Some(cont) = raw.strip_prefix(' ') {
            match logical.last_mut() {
                Some((_, prev)) if !prev.is_empty() => prev.push_str(cont),
                _ => {
                    return Err(LdifError {
                        line: lineno,
                        msg: "continuation with nothing to continue".into(),
                    })
                }
            }
        } else {
            logical.push((lineno, raw.to_string()));
        }
    }

    let mut entries = Vec::new();
    let mut current: Option<Entry> = None;
    for (lineno, line) in logical {
        let trimmed = line.trim_end();
        if trimmed.starts_with('#') {
            continue;
        }
        if trimmed.is_empty() {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            continue;
        }
        let (attr, value) = trimmed.split_once(':').ok_or_else(|| LdifError {
            line: lineno,
            msg: format!("expected 'attr: value', got '{trimmed}'"),
        })?;
        let value = value.trim_start();
        if attr.eq_ignore_ascii_case("dn") {
            if current.is_some() {
                return Err(LdifError {
                    line: lineno,
                    msg: "dn inside an entry (missing blank separator?)".into(),
                });
            }
            let dn = Dn::parse(value).map_err(|e| LdifError {
                line: lineno,
                msg: e.0,
            })?;
            current = Some(Entry::new(dn));
        } else {
            match current.as_mut() {
                Some(e) => e.add(attr, value),
                None => {
                    return Err(LdifError {
                        line: lineno,
                        msg: format!("attribute '{attr}' before any dn"),
                    })
                }
            }
        }
    }
    if let Some(e) = current {
        entries.push(e);
    }
    Ok(entries)
}

/// Serialise entries to LDIF.
pub fn to_ldif(entries: &[Entry]) -> String {
    let mut out = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("dn: ");
        out.push_str(&e.dn.to_string());
        out.push('\n');
        for (attr, values) in e.attrs() {
            for v in values {
                out.push_str(attr);
                out.push_str(": ");
                out.push_str(v);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# QoS policy repository export
dn: o=qos
objectclass: organization

dn: cn=p1,ou=policies,o=qos
objectclass: qosPolicy
app: video
policysource: oblig P { subject s
  on not (x > 5) do s->read(out x) }
";

    #[test]
    fn parse_basic() {
        let es = parse_ldif(SAMPLE).unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].dn.to_string(), "o=qos");
        assert_eq!(es[1].get("app"), Some("video"));
        // Continuation joined.
        assert!(es[1]
            .get("policysource")
            .unwrap()
            .contains("on not (x > 5)"));
    }

    #[test]
    fn roundtrip() {
        let es = parse_ldif(SAMPLE).unwrap();
        let text = to_ldif(&es);
        let es2 = parse_ldif(&text).unwrap();
        assert_eq!(es, es2);
    }

    #[test]
    fn multivalued_roundtrip() {
        let src = "dn: cn=x\nobjectclass: top\nobjectclass: qosSensor\nattr: a\nattr: b\n";
        let es = parse_ldif(src).unwrap();
        assert_eq!(es[0].get_all("objectclass").len(), 2);
        assert_eq!(es[0].get_all("attr"), ["a".to_string(), "b".to_string()]);
        let es2 = parse_ldif(&to_ldif(&es)).unwrap();
        assert_eq!(es, es2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_ldif("dn: o=x\nbroken line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_ldif("attr: orphan\n").unwrap_err();
        assert!(e.msg.contains("before any dn"));
        let e = parse_ldif("dn: o=x\ndn: o=y\n").unwrap_err();
        assert!(e.msg.contains("missing blank separator"));
        let e = parse_ldif(" leading continuation\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_ldif("").unwrap().is_empty());
        assert!(parse_ldif("# just a comment\n\n").unwrap().is_empty());
    }
}
