//! Management-application operations (Section 6.2): authorised
//! administrators add/remove/browse policies, with the integrity checks of
//! Section 7 run before anything enters the repository, and LDIF
//! import/export.

use qos_policy::model::InfoModel;
use qos_policy::parser::parse_policy;
use qos_policy::validate::{check_policy, Violation};

use crate::ldif::{parse_ldif, to_ldif, LdifError};
use crate::schema::{Repository, StoredPolicy};
use core::fmt;

/// Why an administrative operation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminError {
    /// The policy source does not parse.
    ParseFailed(String),
    /// The integrity checks failed.
    IntegrityFailed(Vec<Violation>),
    /// The referenced executable is not in the information model.
    UnknownExecutable(String),
    /// The referenced application is not in the information model.
    UnknownApplication(String),
    /// No such policy.
    NoSuchPolicy(String),
    /// Directory-level failure.
    Directory(String),
}

impl fmt::Display for AdminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminError::ParseFailed(m) => write!(f, "policy does not parse: {m}"),
            AdminError::IntegrityFailed(vs) => {
                write!(f, "integrity check failed:")?;
                for v in vs {
                    write!(f, " [{v}]")?;
                }
                Ok(())
            }
            AdminError::UnknownExecutable(e) => write!(f, "unknown executable '{e}'"),
            AdminError::UnknownApplication(a) => write!(f, "unknown application '{a}'"),
            AdminError::NoSuchPolicy(p) => write!(f, "no such policy '{p}'"),
            AdminError::Directory(m) => write!(f, "directory error: {m}"),
        }
    }
}
impl std::error::Error for AdminError {}

/// The policy administration application.
#[derive(Debug, Default)]
pub struct ManagementApp;

impl ManagementApp {
    /// Add (or replace) a policy after validating it against the
    /// information model stored in the repository.
    pub fn add_policy(
        &self,
        repo: &mut Repository,
        policy: &StoredPolicy,
    ) -> Result<(), AdminError> {
        let model = repo.load_model();
        Self::validate(&model, policy)?;
        repo.store_policy(policy)
            .map_err(|e| AdminError::Directory(e.to_string()))
    }

    /// Validate a policy against a model without storing it.
    pub fn validate(model: &InfoModel, policy: &StoredPolicy) -> Result<(), AdminError> {
        let exec = model
            .executable_by_name(&policy.executable)
            .ok_or_else(|| AdminError::UnknownExecutable(policy.executable.clone()))?;
        let app_known = model.applications().any(|a| a.name == policy.application);
        if !app_known {
            return Err(AdminError::UnknownApplication(policy.application.clone()));
        }
        let ast =
            parse_policy(&policy.source).map_err(|e| AdminError::ParseFailed(e.to_string()))?;
        let problems = check_policy(model, exec.id, &ast);
        if problems.is_empty() {
            Ok(())
        } else {
            Err(AdminError::IntegrityFailed(problems))
        }
    }

    /// Remove a policy.
    pub fn remove_policy(&self, repo: &mut Repository, name: &str) -> Result<(), AdminError> {
        if repo.delete_policy(name) {
            Ok(())
        } else {
            Err(AdminError::NoSuchPolicy(name.to_string()))
        }
    }

    /// Enable or disable a policy in place.
    pub fn set_enabled(
        &self,
        repo: &mut Repository,
        name: &str,
        enabled: bool,
    ) -> Result<(), AdminError> {
        let mut p = repo
            .policy(name)
            .ok_or_else(|| AdminError::NoSuchPolicy(name.to_string()))?;
        p.enabled = enabled;
        repo.store_policy(&p)
            .map_err(|e| AdminError::Directory(e.to_string()))
    }

    /// Browse: all policies, sorted by name.
    pub fn list_policies(&self, repo: &Repository) -> Vec<StoredPolicy> {
        let mut ps = repo.policies();
        ps.sort_by(|a, b| a.name.cmp(&b.name));
        ps
    }

    /// Export the full repository (model + policies) as LDIF.
    pub fn export_ldif(&self, repo: &Repository) -> String {
        let entries: Vec<_> = repo.dit().iter().cloned().collect();
        to_ldif(&entries)
    }

    /// Import LDIF into the repository (entries are added with missing
    /// parents auto-created; existing entries are replaced).
    pub fn import_ldif(&self, repo: &mut Repository, ldif: &str) -> Result<usize, LdifError> {
        let entries = parse_ldif(ldif)?;
        let n = entries.len();
        for e in entries {
            let dn = e.dn.clone();
            if repo.dit().get(&dn).is_some() {
                *repo.dit_mut().get_mut(&dn).expect("just checked presence") = e;
            } else {
                repo.dit_mut()
                    .add_with_parents(e)
                    .expect("parents auto-created");
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_policy::model::video_example_model;

    const GOOD_SOURCE: &str = "oblig NotifyQoSViolation { \
        subject (...)/VideoApplication/qosl_coordinator \
        target fps_sensor, jitter_sensor, buffer_sensor, (...)QoSHostManager \
        on not (frame_rate = 25(+2)(-2) AND jitter_rate < 1.25) \
        do fps_sensor->read(out frame_rate); \
           jitter_sensor->read(out jitter_rate); \
           buffer_sensor->read(out buffer_size); \
           (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size); }";

    fn seeded_repo() -> Repository {
        let (model, _, _) = video_example_model();
        let mut repo = Repository::new();
        repo.store_model(&model).unwrap();
        repo
    }

    fn good_policy() -> StoredPolicy {
        StoredPolicy {
            name: "NotifyQoSViolation".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "*".into(),
            source: GOOD_SOURCE.into(),
            enabled: true,
        }
    }

    #[test]
    fn add_valid_policy() {
        let mut repo = seeded_repo();
        let app = ManagementApp;
        app.add_policy(&mut repo, &good_policy()).unwrap();
        assert_eq!(app.list_policies(&repo).len(), 1);
    }

    #[test]
    fn reject_policy_with_unmonitored_attribute() {
        let mut repo = seeded_repo();
        let app = ManagementApp;
        let mut p = good_policy();
        p.source = "oblig P { subject s on not (colour_depth > 8) \
                    do fps_sensor->read(out frame_rate); }"
            .into();
        match app.add_policy(&mut repo, &p) {
            Err(AdminError::IntegrityFailed(vs)) => {
                assert!(vs.iter().any(|v| matches!(
                    v,
                    Violation::UnmonitoredAttribute { attr } if attr == "colour_depth"
                )));
            }
            other => panic!("expected integrity failure, got {other:?}"),
        }
        assert!(app.list_policies(&repo).is_empty(), "nothing stored");
    }

    #[test]
    fn reject_unknown_executable_or_application() {
        let mut repo = seeded_repo();
        let app = ManagementApp;
        let mut p = good_policy();
        p.executable = "Mystery".into();
        assert!(matches!(
            app.add_policy(&mut repo, &p),
            Err(AdminError::UnknownExecutable(_))
        ));
        let mut p = good_policy();
        p.application = "Mystery".into();
        assert!(matches!(
            app.add_policy(&mut repo, &p),
            Err(AdminError::UnknownApplication(_))
        ));
    }

    #[test]
    fn reject_unparseable_policy() {
        let mut repo = seeded_repo();
        let app = ManagementApp;
        let mut p = good_policy();
        p.source = "oblig ???".into();
        assert!(matches!(
            app.add_policy(&mut repo, &p),
            Err(AdminError::ParseFailed(_))
        ));
    }

    #[test]
    fn enable_disable_and_remove() {
        let mut repo = seeded_repo();
        let app = ManagementApp;
        app.add_policy(&mut repo, &good_policy()).unwrap();
        app.set_enabled(&mut repo, "NotifyQoSViolation", false)
            .unwrap();
        assert!(!repo.policy("NotifyQoSViolation").unwrap().enabled);
        app.remove_policy(&mut repo, "NotifyQoSViolation").unwrap();
        assert!(matches!(
            app.remove_policy(&mut repo, "NotifyQoSViolation"),
            Err(AdminError::NoSuchPolicy(_))
        ));
        assert!(matches!(
            app.set_enabled(&mut repo, "NotifyQoSViolation", true),
            Err(AdminError::NoSuchPolicy(_))
        ));
    }

    #[test]
    fn ldif_export_import_roundtrip() {
        let mut repo = seeded_repo();
        let app = ManagementApp;
        app.add_policy(&mut repo, &good_policy()).unwrap();
        let ldif = app.export_ldif(&repo);
        assert!(ldif.contains("qosPolicy"));
        assert!(ldif.contains("qosSensor"));

        let mut fresh = Repository::new();
        let n = app.import_ldif(&mut fresh, &ldif).unwrap();
        assert!(n > 5);
        assert_eq!(
            fresh.policy("NotifyQoSViolation"),
            repo.policy("NotifyQoSViolation")
        );
        let model = fresh.load_model();
        assert!(model.executable_by_name("VideoApplication").is_some());
    }
}
