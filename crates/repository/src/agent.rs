//! The Policy Agent (Section 6.2): processes register at startup with
//! identifying information (process id, application, executable, user
//! role); the agent resolves the applicable policies from the repository,
//! compiles them and ships them to the process's coordinator.

use qos_policy::compile::{compile, CompiledPolicy};
use qos_policy::parser::parse_policy;

use crate::filter::Filter;
use crate::schema::{Repository, StoredPolicy};

/// Registration data a starting process presents to the agent.
#[derive(Clone, Debug, PartialEq)]
pub struct Registration {
    /// Process identifier (opaque to the agent).
    pub process: String,
    /// Executable name.
    pub executable: String,
    /// Application name.
    pub application: String,
    /// User role this session runs under.
    pub role: String,
}

/// Why a stored policy could not be delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryError {
    /// Policy name.
    pub policy: String,
    /// Parse/compile message.
    pub msg: String,
}

/// Result of resolving policies for a registration.
#[derive(Debug, Default)]
pub struct Resolution {
    /// Compiled policies, ready for a coordinator.
    pub policies: Vec<CompiledPolicy>,
    /// Stored policies that failed to parse or compile (reported to the
    /// administrator, not fatal to the process).
    pub errors: Vec<DeliveryError>,
}

/// The Policy Agent.
#[derive(Debug, Default)]
pub struct PolicyAgent {
    registrations: Vec<Registration>,
}

impl PolicyAgent {
    /// New agent with no registrations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a process and resolve its policies from the repository.
    ///
    /// A stored policy applies when its executable and application match
    /// and its role is either `*` or equal to the session's role; disabled
    /// policies are never distributed.
    pub fn register(&mut self, repo: &Repository, reg: &Registration) -> Resolution {
        self.registrations.push(reg.clone());
        let filter = Filter::And(vec![
            Filter::Eq("execRef".into(), reg.executable.clone()),
            Filter::Eq("appRef".into(), reg.application.clone()),
            Filter::Eq("enabled".into(), "true".into()),
            Filter::Or(vec![
                Filter::Eq("userRole".into(), "*".into()),
                Filter::Eq("userRole".into(), reg.role.clone()),
            ]),
        ]);
        let mut res = Resolution::default();
        for stored in repo.search_policies(&filter) {
            match compile_stored(&stored) {
                Ok(c) => res.policies.push(c),
                Err(msg) => res.errors.push(DeliveryError {
                    policy: stored.name,
                    msg,
                }),
            }
        }
        res
    }

    /// Number of processes that have registered.
    pub fn registered_count(&self) -> usize {
        self.registrations.len()
    }

    /// Registrations seen so far.
    pub fn registrations(&self) -> &[Registration] {
        &self.registrations
    }
}

/// Parse + compile a stored policy.
pub fn compile_stored(stored: &StoredPolicy) -> Result<CompiledPolicy, String> {
    let ast = parse_policy(&stored.source).map_err(|e| e.to_string())?;
    compile(&ast).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(name: &str, exec: &str, app: &str, role: &str, enabled: bool) -> StoredPolicy {
        StoredPolicy {
            name: name.into(),
            application: app.into(),
            executable: exec.into(),
            role: role.into(),
            source: format!(
                "oblig {name} {{ subject (...)/{exec}/qosl_coordinator \
                 target fps_sensor \
                 on not (frame_rate = 25(+2)(-2)) \
                 do fps_sensor->read(out frame_rate); \
                    (...)QoSHostManager->notify(frame_rate); }}"
            ),
            enabled,
        }
    }

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.store_policy(&policy(
            "P1",
            "VideoApplication",
            "VideoPlayback",
            "*",
            true,
        ))
        .unwrap();
        r.store_policy(&policy(
            "P2",
            "VideoApplication",
            "VideoPlayback",
            "lecturer",
            true,
        ))
        .unwrap();
        r.store_policy(&policy("P3", "WebServer", "Portal", "*", true))
            .unwrap();
        r.store_policy(&policy(
            "P4",
            "VideoApplication",
            "VideoPlayback",
            "*",
            false,
        ))
        .unwrap();
        r
    }

    fn reg(role: &str) -> Registration {
        Registration {
            process: "h0:p1".into(),
            executable: "VideoApplication".into(),
            application: "VideoPlayback".into(),
            role: role.into(),
        }
    }

    #[test]
    fn role_scoping() {
        let repo = repo();
        let mut agent = PolicyAgent::new();
        // A student gets only the wildcard policy.
        let res = agent.register(&repo, &reg("student"));
        let names: Vec<&str> = res.policies.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["P1"]);
        // A lecturer additionally gets the lecturer policy — "different
        // sessions of the same application will have different QoS
        // requirements".
        let res = agent.register(&repo, &reg("lecturer"));
        let mut names: Vec<&str> = res.policies.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["P1", "P2"]);
        assert_eq!(agent.registered_count(), 2);
    }

    #[test]
    fn disabled_and_unrelated_policies_excluded() {
        let repo = repo();
        let mut agent = PolicyAgent::new();
        let res = agent.register(&repo, &reg("student"));
        assert!(
            res.policies.iter().all(|p| p.name != "P4"),
            "disabled excluded"
        );
        assert!(
            res.policies.iter().all(|p| p.name != "P3"),
            "other executable excluded"
        );
    }

    #[test]
    fn compiled_policies_are_usable() {
        let repo = repo();
        let mut agent = PolicyAgent::new();
        let res = agent.register(&repo, &reg("student"));
        let p = &res.policies[0];
        assert_eq!(p.conditions.len(), 2); // 23 < frame_rate < 27
        assert!(p.violated(&[false, true]));
        assert!(!p.violated(&[true, true]));
    }

    #[test]
    fn unparseable_policy_reported_not_fatal() {
        let mut repo = repo();
        repo.store_policy(&StoredPolicy {
            name: "Broken".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "*".into(),
            source: "oblig Broken { this is not valid }".into(),
            enabled: true,
        })
        .unwrap();
        let mut agent = PolicyAgent::new();
        let res = agent.register(&repo, &reg("student"));
        assert_eq!(res.policies.len(), 1, "good policy still delivered");
        assert_eq!(res.errors.len(), 1);
        assert_eq!(res.errors[0].policy, "Broken");
    }

    #[test]
    fn no_policies_is_empty_not_error() {
        let repo = Repository::new();
        let mut agent = PolicyAgent::new();
        let res = agent.register(&repo, &reg("student"));
        assert!(res.policies.is_empty());
        assert!(res.errors.is_empty());
    }
}
