//! Distinguished names, LDAP-style: `cn=NotifyQoSViolation,ou=policies,o=qos`.
//!
//! Attribute types are case-insensitive; values are compared
//! case-sensitively. The rightmost RDN is the root, as in LDAP.

use core::fmt;

/// One relative distinguished name: `attr=value`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rdn {
    /// Attribute type, normalised to lowercase.
    pub attr: String,
    /// Attribute value.
    pub value: String,
}

impl Rdn {
    /// Build an RDN (attribute type is lowercased).
    pub fn new(attr: &str, value: &str) -> Self {
        Rdn {
            attr: attr.to_ascii_lowercase(),
            value: value.to_string(),
        }
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A distinguished name: a sequence of RDNs from leaf to root.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

/// DN syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnError(pub String);

impl fmt::Display for DnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DN: {}", self.0)
    }
}
impl std::error::Error for DnError {}

impl Dn {
    /// The empty (root-of-tree) DN.
    pub fn root() -> Self {
        Dn::default()
    }

    /// Parse from string form. Empty string is the root DN.
    pub fn parse(s: &str) -> Result<Self, DnError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (attr, value) = part
                .split_once('=')
                .ok_or_else(|| DnError(format!("RDN '{part}' lacks '='")))?;
            let (attr, value) = (attr.trim(), value.trim());
            if attr.is_empty() || value.is_empty() {
                return Err(DnError(format!(
                    "RDN '{part}' has empty attribute or value"
                )));
            }
            rdns.push(Rdn::new(attr, value));
        }
        Ok(Dn { rdns })
    }

    /// Number of RDN components (0 for the root).
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// The leaf RDN.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// The parent DN (dropping the leaf RDN); `None` for the root.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    /// A child of this DN with the given leaf RDN.
    pub fn child(&self, attr: &str, value: &str) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(Rdn::new(attr, value));
        rdns.extend_from_slice(&self.rdns);
        Dn { rdns }
    }

    /// True if `self` equals `base` or lies underneath it.
    pub fn is_under(&self, base: &Dn) -> bool {
        if base.rdns.len() > self.rdns.len() {
            return false;
        }
        let offset = self.rdns.len() - base.rdns.len();
        self.rdns[offset..] == base.rdns[..]
    }

    /// True if `self` is an immediate child of `base`.
    pub fn is_child_of(&self, base: &Dn) -> bool {
        self.rdns.len() == base.rdns.len() + 1 && self.is_under(base)
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.rdns.iter().map(|r| r.to_string()).collect();
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let dn = Dn::parse("cn=NotifyQoSViolation, ou=policies, o=qos").unwrap();
        assert_eq!(dn.to_string(), "cn=NotifyQoSViolation,ou=policies,o=qos");
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.rdn().unwrap(), &Rdn::new("cn", "NotifyQoSViolation"));
    }

    #[test]
    fn attribute_type_case_insensitive() {
        let a = Dn::parse("CN=x,OU=y").unwrap();
        let b = Dn::parse("cn=x,ou=y").unwrap();
        assert_eq!(a, b);
        // Values stay case-sensitive.
        assert_ne!(Dn::parse("cn=X").unwrap(), Dn::parse("cn=x").unwrap());
    }

    #[test]
    fn parent_child_relations() {
        let base = Dn::parse("ou=policies,o=qos").unwrap();
        let leaf = base.child("cn", "p1");
        assert_eq!(leaf.to_string(), "cn=p1,ou=policies,o=qos");
        assert_eq!(leaf.parent().unwrap(), base);
        assert!(leaf.is_under(&base));
        assert!(leaf.is_child_of(&base));
        assert!(leaf.is_under(&leaf));
        assert!(!leaf.is_child_of(&leaf));
        assert!(!base.is_under(&leaf));
        let root = Dn::root();
        assert!(base.is_under(&root));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn grandchild_is_under_but_not_child() {
        let base = Dn::parse("o=qos").unwrap();
        let grand = Dn::parse("cn=p,ou=policies,o=qos").unwrap();
        assert!(grand.is_under(&base));
        assert!(!grand.is_child_of(&base));
    }

    #[test]
    fn bad_dns_rejected() {
        assert!(Dn::parse("nonsense").is_err());
        assert!(Dn::parse("cn=,o=x").is_err());
        assert!(Dn::parse("=v,o=x").is_err());
    }

    #[test]
    fn empty_is_root() {
        let r = Dn::parse("").unwrap();
        assert_eq!(r, Dn::root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.to_string(), "");
    }
}
