//! # qos-repository — policy repository and distribution services
//!
//! The Section 6 policy-distribution architecture, with the prototype's
//! LDAP directory (Section 7) replaced by a from-scratch, in-process
//! directory that preserves its semantics:
//!
//! * [`dn`], [`entry`], [`dit`] — a directory information tree with
//!   distinguished names, multi-valued attributes and
//!   base/one-level/subtree search;
//! * [`filter`] — RFC 2254-style search filters
//!   (`(&(objectClass=qosPolicy)(execRef=VideoApplication))`);
//! * [`ldif`] — LDIF import/export, the prototype's upload format;
//! * [`schema`] — the Section 6.1 information-model classes mapped to
//!   directory entries, plus typed policy records ([`schema::Repository`]);
//! * [`agent`] — the Policy Agent: process registration → policy
//!   resolution (by executable, application and user role) → compiled
//!   policies for the coordinator;
//! * [`admin`] — the management application: add/remove/browse policies
//!   with the Section 7 integrity checks enforced up front.

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod admin;
pub mod agent;
pub mod dit;
pub mod dn;
pub mod entry;
pub mod filter;
pub mod ldif;
pub mod schema;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::admin::{AdminError, ManagementApp};
    pub use crate::agent::{compile_stored, DeliveryError, PolicyAgent, Registration, Resolution};
    pub use crate::dit::{Dit, DitError, Scope};
    pub use crate::dn::{Dn, DnError, Rdn};
    pub use crate::entry::Entry;
    pub use crate::filter::{Filter, FilterError};
    pub use crate::ldif::{parse_ldif, to_ldif, LdifError};
    pub use crate::schema::{Repository, StoredPolicy, SUFFIX};
}

pub use prelude::*;
