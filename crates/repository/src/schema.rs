//! Mapping of the Section 6.1 information model onto directory entries —
//! "each of the classes defined in the information model were mapped to
//! LDAP classes" (Section 7).
//!
//! Layout under the `o=qos` suffix:
//!
//! ```text
//! o=qos
//! ├── ou=sensors        cn=<sensor>      objectClass: qosSensor
//! ├── ou=executables    cn=<executable>  objectClass: qosExecutable
//! ├── ou=applications   cn=<application> objectClass: qosApplication
//! └── ou=policies       cn=<policy>      objectClass: qosPolicy
//! ```

use qos_policy::model::InfoModel;

use crate::dit::{Dit, DitError, Scope};
use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;

/// Directory suffix all QoS data lives under.
pub const SUFFIX: &str = "o=qos";

/// A policy as stored in the repository, scoped by names (the directory
/// is name-keyed; numeric model ids are a client-side concern).
#[derive(Clone, Debug, PartialEq)]
pub struct StoredPolicy {
    /// Unique policy name (the `cn`).
    pub name: String,
    /// Application the policy belongs to.
    pub application: String,
    /// Executable it instruments.
    pub executable: String,
    /// User role it applies to (`*` = any).
    pub role: String,
    /// Full policy source in the Section 4 notation.
    pub source: String,
    /// Disabled policies are retained but not distributed.
    pub enabled: bool,
}

/// The repository service: a DIT plus the QoS schema conventions.
#[derive(Debug, Default, Clone)]
pub struct Repository {
    dit: Dit,
}

impl Repository {
    /// An empty repository with the standard containers created.
    pub fn new() -> Self {
        let mut dit = Dit::new();
        let suffix = Dn::parse(SUFFIX).expect("static suffix");
        dit.add(Entry::new(suffix.clone()).with("objectClass", "organization"))
            .expect("fresh dit");
        for ou in ["sensors", "executables", "applications", "policies"] {
            dit.add(Entry::new(suffix.child("ou", ou)).with("objectClass", "organizationalUnit"))
                .expect("fresh dit");
        }
        Repository { dit }
    }

    /// Raw directory access.
    pub fn dit(&self) -> &Dit {
        &self.dit
    }

    /// Mutable raw directory access.
    pub fn dit_mut(&mut self) -> &mut Dit {
        &mut self.dit
    }

    fn container(&self, ou: &str) -> Dn {
        Dn::parse(SUFFIX).expect("static suffix").child("ou", ou)
    }

    // ------------------------------------------------------------------
    // Information model
    // ------------------------------------------------------------------

    /// Store (or refresh) the information model in the directory.
    pub fn store_model(&mut self, model: &InfoModel) -> Result<(), DitError> {
        for s in model.sensors() {
            let dn = self.container("sensors").child("cn", &s.name);
            if self.dit.get(&dn).is_some() {
                self.dit.delete(&dn)?;
            }
            let mut e = Entry::new(dn)
                .with("objectClass", "qosSensor")
                .with("cn", &s.name);
            for a in &s.attributes {
                e.add("attrName", a);
            }
            self.dit.add(e)?;
        }
        for x in model.executables() {
            let dn = self.container("executables").child("cn", &x.name);
            if self.dit.get(&dn).is_some() {
                self.dit.delete(&dn)?;
            }
            let mut e = Entry::new(dn)
                .with("objectClass", "qosExecutable")
                .with("cn", &x.name);
            for sid in &x.sensors {
                let sensor = model.sensor(*sid).expect("model is internally consistent");
                e.add("sensorRef", &sensor.name);
            }
            self.dit.add(e)?;
        }
        for a in model.applications() {
            let dn = self.container("applications").child("cn", &a.name);
            if self.dit.get(&dn).is_some() {
                self.dit.delete(&dn)?;
            }
            let mut e = Entry::new(dn)
                .with("objectClass", "qosApplication")
                .with("cn", &a.name);
            for xid in &a.executables {
                let exec = model
                    .executable(*xid)
                    .expect("model is internally consistent");
                e.add("execRef", &exec.name);
            }
            self.dit.add(e)?;
        }
        Ok(())
    }

    /// Rebuild an [`InfoModel`] from the directory.
    pub fn load_model(&self) -> InfoModel {
        let mut model = InfoModel::new();
        let any = Filter::Present("cn".into());
        let mut sensor_ids = std::collections::BTreeMap::new();
        for e in self
            .dit
            .search(&self.container("sensors"), Scope::One, &any)
        {
            let name = e.get("cn").unwrap_or_default();
            let attrs: Vec<&str> = e.get_all("attrname").iter().map(String::as_str).collect();
            let id = model.add_sensor(name, &attrs);
            sensor_ids.insert(name.to_string(), id);
        }
        let mut exec_ids = std::collections::BTreeMap::new();
        for e in self
            .dit
            .search(&self.container("executables"), Scope::One, &any)
        {
            let name = e.get("cn").unwrap_or_default();
            let sensors: Vec<_> = e
                .get_all("sensorref")
                .iter()
                .filter_map(|s| sensor_ids.get(s).copied())
                .collect();
            let id = model.add_executable(name, &sensors);
            exec_ids.insert(name.to_string(), id);
        }
        for e in self
            .dit
            .search(&self.container("applications"), Scope::One, &any)
        {
            let name = e.get("cn").unwrap_or_default();
            let execs: Vec<_> = e
                .get_all("execref")
                .iter()
                .filter_map(|s| exec_ids.get(s).copied())
                .collect();
            model.add_application(name, &execs);
        }
        model
    }

    // ------------------------------------------------------------------
    // Policies
    // ------------------------------------------------------------------

    /// Store a policy record (replacing an existing one with the same
    /// name).
    pub fn store_policy(&mut self, p: &StoredPolicy) -> Result<(), DitError> {
        let dn = self.container("policies").child("cn", &p.name);
        if self.dit.get(&dn).is_some() {
            self.dit.delete(&dn)?;
        }
        self.dit.add(
            Entry::new(dn)
                .with("objectClass", "qosPolicy")
                .with("cn", &p.name)
                .with("appRef", &p.application)
                .with("execRef", &p.executable)
                .with("userRole", &p.role)
                .with("enabled", if p.enabled { "true" } else { "false" })
                .with("policySource", &p.source),
        )
    }

    /// Fetch a policy by name.
    pub fn policy(&self, name: &str) -> Option<StoredPolicy> {
        let dn = self.container("policies").child("cn", name);
        self.dit.get(&dn).map(entry_to_policy)
    }

    /// Delete a policy by name; true if it existed.
    pub fn delete_policy(&mut self, name: &str) -> bool {
        let dn = self.container("policies").child("cn", name);
        self.dit.delete(&dn).is_ok()
    }

    /// All stored policies matching an optional extra filter.
    pub fn search_policies(&self, filter: &Filter) -> Vec<StoredPolicy> {
        let f = Filter::And(vec![
            Filter::Eq("objectClass".into(), "qosPolicy".into()),
            filter.clone(),
        ]);
        self.dit
            .search(&self.container("policies"), Scope::One, &f)
            .into_iter()
            .map(entry_to_policy)
            .collect()
    }

    /// All stored policies.
    pub fn policies(&self) -> Vec<StoredPolicy> {
        self.search_policies(&Filter::And(Vec::new()))
    }
}

fn entry_to_policy(e: &Entry) -> StoredPolicy {
    StoredPolicy {
        name: e.get("cn").unwrap_or_default().to_string(),
        application: e.get("appref").unwrap_or_default().to_string(),
        executable: e.get("execref").unwrap_or_default().to_string(),
        role: e.get("userrole").unwrap_or("*").to_string(),
        source: e.get("policysource").unwrap_or_default().to_string(),
        enabled: e.get("enabled") != Some("false"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_policy::model::video_example_model;

    fn sample_policy() -> StoredPolicy {
        StoredPolicy {
            name: "NotifyQoSViolation".into(),
            application: "VideoPlayback".into(),
            executable: "VideoApplication".into(),
            role: "*".into(),
            source: "oblig NotifyQoSViolation { subject (...)/VideoApplication/qosl_coordinator \
                     target fps_sensor on not (frame_rate = 25(+2)(-2)) \
                     do fps_sensor->read(out frame_rate); \
                        (...)QoSHostManager->notify(frame_rate); }"
                .into(),
            enabled: true,
        }
    }

    #[test]
    fn model_roundtrip_through_directory() {
        let (model, _, exec) = video_example_model();
        let mut repo = Repository::new();
        repo.store_model(&model).unwrap();
        let loaded = repo.load_model();
        let lexec = loaded.executable_by_name("VideoApplication").unwrap();
        assert_eq!(
            loaded.executable_attributes(lexec.id),
            model.executable_attributes(exec)
        );
        assert_eq!(loaded.applications().count(), 1);
        assert_eq!(loaded.sensors().count(), 3);
    }

    #[test]
    fn store_model_is_idempotent() {
        let (model, _, _) = video_example_model();
        let mut repo = Repository::new();
        repo.store_model(&model).unwrap();
        let n = repo.dit().len();
        repo.store_model(&model).unwrap();
        assert_eq!(repo.dit().len(), n);
    }

    #[test]
    fn policy_store_fetch_delete() {
        let mut repo = Repository::new();
        let p = sample_policy();
        repo.store_policy(&p).unwrap();
        assert_eq!(repo.policy("NotifyQoSViolation"), Some(p.clone()));
        assert_eq!(repo.policies().len(), 1);
        assert!(repo.delete_policy("NotifyQoSViolation"));
        assert!(!repo.delete_policy("NotifyQoSViolation"));
        assert!(repo.policy("NotifyQoSViolation").is_none());
    }

    #[test]
    fn policy_replacement_keeps_one_entry() {
        let mut repo = Repository::new();
        let mut p = sample_policy();
        repo.store_policy(&p).unwrap();
        p.enabled = false;
        repo.store_policy(&p).unwrap();
        assert_eq!(repo.policies().len(), 1);
        assert!(!repo.policy(&p.name).unwrap().enabled);
    }

    #[test]
    fn search_policies_by_scope() {
        let mut repo = Repository::new();
        let mut p = sample_policy();
        repo.store_policy(&p).unwrap();
        p.name = "Other".into();
        p.executable = "WebServer".into();
        repo.store_policy(&p).unwrap();
        let f = Filter::Eq("execRef".into(), "VideoApplication".into());
        let hits = repo.search_policies(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "NotifyQoSViolation");
    }
}
