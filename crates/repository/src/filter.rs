//! LDAP search filters (an RFC 2254 subset): equality, presence,
//! substring, ordering, and `&`/`|`/`!` combinators.
//!
//! Examples: `(objectClass=qosPolicy)`, `(&(app=video)(role=*))`,
//! `(|(cn=a*)(cn=*b))`, `(!(enabled=false))`, `(salience>=10)`.

use core::fmt;

use crate::entry::Entry;

/// A parsed search filter.
#[derive(Clone, Debug, PartialEq)]
pub enum Filter {
    /// All of the sub-filters hold.
    And(Vec<Filter>),
    /// Any of the sub-filters holds.
    Or(Vec<Filter>),
    /// The sub-filter does not hold.
    Not(Box<Filter>),
    /// `(attr=value)` — case-sensitive equality on any value.
    Eq(String, String),
    /// `(attr=*)` — the attribute is present.
    Present(String),
    /// `(attr=a*b*c)` — substring match with `*` wildcards.
    Substr(String, Vec<SubstrPart>),
    /// `(attr>=value)` — numeric if both parse, else lexicographic.
    Ge(String, String),
    /// `(attr<=value)`.
    Le(String, String),
}

/// Pieces of a substring pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum SubstrPart {
    /// Anchored at the start.
    Initial(String),
    /// Anywhere in the middle, in order.
    Any(String),
    /// Anchored at the end.
    Final(String),
}

/// Filter syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError(pub String);

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.0)
    }
}
impl std::error::Error for FilterError {}

impl Filter {
    /// Parse a filter string.
    pub fn parse(s: &str) -> Result<Filter, FilterError> {
        let s = s.trim();
        let (f, rest) = parse_inner(s)?;
        if !rest.trim().is_empty() {
            return Err(FilterError(format!("trailing input '{rest}'")));
        }
        Ok(f)
    }

    /// Does the entry match?
    pub fn matches(&self, e: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(e)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(e)),
            Filter::Not(f) => !f.matches(e),
            Filter::Eq(attr, v) => e.get_all(attr).iter().any(|x| x == v),
            Filter::Present(attr) => e.has(attr),
            Filter::Substr(attr, parts) => e.get_all(attr).iter().any(|x| substr_match(x, parts)),
            Filter::Ge(attr, v) => e.get_all(attr).iter().any(|x| ord_cmp(x, v) >= 0),
            Filter::Le(attr, v) => e.get_all(attr).iter().any(|x| ord_cmp(x, v) <= 0),
        }
    }
}

/// Numeric comparison when both sides parse as f64, else lexicographic.
fn ord_cmp(a: &str, b: &str) -> i32 {
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => {
            if x < y {
                -1
            } else if x > y {
                1
            } else {
                0
            }
        }
        _ => match a.cmp(b) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        },
    }
}

fn substr_match(value: &str, parts: &[SubstrPart]) -> bool {
    let mut pos = 0usize;
    for part in parts {
        match part {
            SubstrPart::Initial(p) => {
                if !value.starts_with(p.as_str()) {
                    return false;
                }
                pos = p.len();
            }
            SubstrPart::Any(p) => match value[pos..].find(p.as_str()) {
                Some(ix) => pos = pos + ix + p.len(),
                None => return false,
            },
            SubstrPart::Final(p) => {
                return value.len() >= pos + p.len() && value.ends_with(p.as_str());
            }
        }
    }
    true
}

/// Parse one parenthesised filter; returns it plus remaining input.
fn parse_inner(s: &str) -> Result<(Filter, &str), FilterError> {
    let s = s.trim_start();
    let rest = s
        .strip_prefix('(')
        .ok_or_else(|| FilterError(format!("expected '(' at '{s}'")))?;
    let rest = rest.trim_start();
    if let Some(mut rest) = rest.strip_prefix('&') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix(')') {
                return Ok((Filter::And(items), r));
            }
            let (f, r) = parse_inner(rest)?;
            items.push(f);
            rest = r;
        }
    }
    if let Some(mut rest) = rest.strip_prefix('|') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix(')') {
                return Ok((Filter::Or(items), r));
            }
            let (f, r) = parse_inner(rest)?;
            items.push(f);
            rest = r;
        }
    }
    if let Some(rest) = rest.strip_prefix('!') {
        let (f, r) = parse_inner(rest)?;
        let r = r
            .trim_start()
            .strip_prefix(')')
            .ok_or_else(|| FilterError("expected ')' after (!...)".into()))?;
        return Ok((Filter::Not(Box::new(f)), r));
    }
    // Simple item: attr OP value ).
    let close = rest
        .find(')')
        .ok_or_else(|| FilterError("unclosed filter item".into()))?;
    let item = &rest[..close];
    let remainder = &rest[close + 1..];
    let (attr, op, value) = if let Some(ix) = item.find(">=") {
        (&item[..ix], ">=", &item[ix + 2..])
    } else if let Some(ix) = item.find("<=") {
        (&item[..ix], "<=", &item[ix + 2..])
    } else if let Some(ix) = item.find('=') {
        (&item[..ix], "=", &item[ix + 1..])
    } else {
        return Err(FilterError(format!("no operator in item '{item}'")));
    };
    let attr = attr.trim();
    if attr.is_empty() {
        return Err(FilterError(format!("empty attribute in '{item}'")));
    }
    let f = match op {
        ">=" => Filter::Ge(attr.to_string(), value.to_string()),
        "<=" => Filter::Le(attr.to_string(), value.to_string()),
        _ => {
            if value == "*" {
                Filter::Present(attr.to_string())
            } else if value.contains('*') {
                Filter::Substr(attr.to_string(), parse_substr(value))
            } else {
                Filter::Eq(attr.to_string(), value.to_string())
            }
        }
    };
    Ok((f, remainder))
}

fn parse_substr(pattern: &str) -> Vec<SubstrPart> {
    let mut parts = Vec::new();
    let pieces: Vec<&str> = pattern.split('*').collect();
    let n = pieces.len();
    for (i, piece) in pieces.iter().enumerate() {
        if piece.is_empty() {
            continue;
        }
        if i == 0 {
            parts.push(SubstrPart::Initial(piece.to_string()));
        } else if i == n - 1 {
            parts.push(SubstrPart::Final(piece.to_string()));
        } else {
            parts.push(SubstrPart::Any(piece.to_string()));
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn entry() -> Entry {
        Entry::new(Dn::parse("cn=p1,ou=policies").unwrap())
            .with("objectClass", "top")
            .with("objectClass", "qosPolicy")
            .with("cn", "p1")
            .with("app", "VideoPlayback")
            .with("salience", "10")
            .with("enabled", "true")
    }

    #[test]
    fn equality_and_presence() {
        assert!(Filter::parse("(cn=p1)").unwrap().matches(&entry()));
        assert!(!Filter::parse("(cn=p2)").unwrap().matches(&entry()));
        assert!(Filter::parse("(app=*)").unwrap().matches(&entry()));
        assert!(!Filter::parse("(missing=*)").unwrap().matches(&entry()));
        // Multi-valued equality matches any value.
        assert!(Filter::parse("(objectClass=qosPolicy)")
            .unwrap()
            .matches(&entry()));
    }

    #[test]
    fn combinators() {
        let f = Filter::parse("(&(objectClass=qosPolicy)(enabled=true))").unwrap();
        assert!(f.matches(&entry()));
        let f = Filter::parse("(|(cn=zzz)(cn=p1))").unwrap();
        assert!(f.matches(&entry()));
        let f = Filter::parse("(!(enabled=false))").unwrap();
        assert!(f.matches(&entry()));
        let f = Filter::parse("(&(cn=p1)(!(app=VideoPlayback)))").unwrap();
        assert!(!f.matches(&entry()));
    }

    #[test]
    fn substrings() {
        assert!(Filter::parse("(app=Video*)").unwrap().matches(&entry()));
        assert!(Filter::parse("(app=*Playback)").unwrap().matches(&entry()));
        assert!(Filter::parse("(app=*deoPl*)").unwrap().matches(&entry()));
        assert!(Filter::parse("(app=V*o*k)").unwrap().matches(&entry()));
        assert!(!Filter::parse("(app=V*x*k)").unwrap().matches(&entry()));
        assert!(
            !Filter::parse("(app=video*)").unwrap().matches(&entry()),
            "case-sensitive"
        );
    }

    #[test]
    fn ordering_numeric_and_lexicographic() {
        assert!(Filter::parse("(salience>=10)").unwrap().matches(&entry()));
        assert!(
            Filter::parse("(salience>=9)").unwrap().matches(&entry()),
            "numeric, not lexicographic"
        );
        assert!(Filter::parse("(salience<=10)").unwrap().matches(&entry()));
        assert!(!Filter::parse("(salience>=11)").unwrap().matches(&entry()));
        assert!(Filter::parse("(cn<=p9)").unwrap().matches(&entry()));
    }

    #[test]
    fn nested_combinators() {
        let f = Filter::parse("(&(|(cn=a)(cn=p1))(&(enabled=true)(salience>=5)))").unwrap();
        assert!(f.matches(&entry()));
    }

    #[test]
    fn empty_and_matches_everything() {
        // (&) is the standard "true" filter.
        assert!(Filter::parse("(&)").unwrap().matches(&entry()));
        assert!(
            !Filter::parse("(|)").unwrap().matches(&entry()),
            "(|) is false"
        );
    }

    #[test]
    fn errors() {
        assert!(Filter::parse("cn=p1").is_err(), "missing parens");
        assert!(Filter::parse("(cn=p1").is_err(), "unclosed");
        assert!(Filter::parse("(cn=p1)(x=y)").is_err(), "trailing");
        assert!(Filter::parse("(nooperator)").is_err());
        assert!(Filter::parse("(=v)").is_err());
    }
}
