//! A hand-rolled explicit-state model checker, stateright-style.
//!
//! A [`Model`] is a nondeterministic state machine: initial states, the
//! actions enabled in each state, and a transition function. [`check`]
//! runs a breadth-first search over the reachable state space, testing
//! every discovered state against the model's invariants. BFS order
//! means the first violation found is a *shortest* counterexample, and
//! parent pointers let us reconstruct it as a readable trace: the exact
//! action sequence that drives the protocol from an initial state into
//! the bad one.
//!
//! Two invariant flavors:
//!
//! - **Safety** ([`Model::invariants`]): must hold in every reachable
//!   state ("a pid never holds two concurrent adaptations").
//! - **Quiescent** ([`Model::quiescent_invariants`]): must hold in
//!   states with no enabled actions — the small-model rendering of
//!   "eventually": once all chaos budgets are spent and the system has
//!   run dry, the good thing must have happened ("every reaped pid's
//!   resources are reclaimed").
//!
//! The checker is deliberately tiny (no symmetry reduction, no
//! partial-order reduction); small-model abstractions with bounded
//! nondeterminism budgets keep the state space in the tens of thousands
//! and an exhaustive run under a second.

use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// A nondeterministic state machine, checkable by [`check`].
pub trait Model {
    /// A state. Equality/hashing define when two states are "the same"
    /// for exploration purposes — abstract away anything irrelevant.
    type State: Clone + Eq + Hash + Debug;
    /// A transition label; shows up verbatim in counterexample traces.
    type Action: Clone + Debug;

    /// The initial state(s).
    fn init_states(&self) -> Vec<Self::State>;

    /// Append every action enabled in `state` to `out`.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// The successor of `state` under `action`, or `None` if the action
    /// turns out to be a no-op/disabled (such transitions are skipped).
    fn next(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// Safety invariants, checked in every reachable state.
    fn invariants(&self) -> Vec<Invariant<Self>>
    where
        Self: Sized;

    /// Invariants checked only in quiescent states (no enabled
    /// actions). Default: none.
    fn quiescent_invariants(&self) -> Vec<Invariant<Self>>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

/// A named predicate over model states. Plain function pointers keep
/// the checker dependency-free; model parameters (e.g. seeded-bug
/// flags) ride on `&M`.
pub struct Invariant<M: Model> {
    /// Shown in violation reports.
    pub name: &'static str,
    /// Must return `true` for the invariant to hold in `state`.
    pub holds: fn(&M, &M::State) -> bool,
}

impl<M: Model> Invariant<M> {
    /// Convenience constructor.
    pub fn new(name: &'static str, holds: fn(&M, &M::State) -> bool) -> Self {
        Invariant { name, holds }
    }
}

/// Exploration bounds. The checker stops *expanding* past them and
/// reports `truncated`, so a run over an unexpectedly large space
/// degrades to a bounded smoke test instead of hanging CI.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum BFS depth (actions from an initial state). States at the
    /// frontier are still invariant-checked, just not expanded.
    pub max_depth: usize,
    /// Maximum number of distinct states to discover.
    pub max_states: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_depth: usize::MAX,
            max_states: 2_000_000,
        }
    }
}

/// Exploration statistics, reported on both pass and violation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Distinct states discovered.
    pub states: usize,
    /// Transitions taken (including ones that rediscovered a state).
    pub transitions: usize,
    /// Deepest layer reached.
    pub depth: usize,
    /// Quiescent states encountered (no enabled actions).
    pub quiescent: usize,
    /// True if a bound stopped the search before exhaustion.
    pub truncated: bool,
}

/// One step of a counterexample: the action taken (None for the initial
/// state) and the state reached.
#[derive(Debug, Clone)]
pub struct TraceStep<M: Model> {
    /// Action that produced this state; `None` on the initial state.
    pub action: Option<M::Action>,
    /// The state reached.
    pub state: M::State,
}

/// Outcome of a [`check`] run.
pub enum Outcome<M: Model> {
    /// Every reachable state satisfied every invariant.
    Pass(Report),
    /// Shortest-path counterexample to `invariant`.
    Violation {
        /// Name of the violated invariant.
        invariant: &'static str,
        /// Initial state to violating state, one action per step.
        trace: Vec<TraceStep<M>>,
        /// Statistics up to the moment of discovery.
        report: Report,
    },
}

impl<M: Model> Outcome<M> {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }

    /// The exploration statistics, either way.
    pub fn report(&self) -> Report {
        match self {
            Outcome::Pass(r) => *r,
            Outcome::Violation { report, .. } => *report,
        }
    }

    /// Render a violation as a numbered, human-readable trace; `None`
    /// when the run passed.
    pub fn trace_string(&self) -> Option<String> {
        let Outcome::Violation {
            invariant,
            trace,
            report,
        } = self
        else {
            return None;
        };
        let mut out = String::new();
        out.push_str(&format!(
            "invariant violated: {invariant}\n\
             counterexample ({} steps, shortest by BFS; {} states / {} transitions explored):\n",
            trace.len().saturating_sub(1),
            report.states,
            report.transitions,
        ));
        for (i, step) in trace.iter().enumerate() {
            match &step.action {
                None => out.push_str(&format!("  [init]   {:?}\n", step.state)),
                Some(a) => out.push_str(&format!(
                    "  [step {i}] {:?}\n           -> {:?}\n",
                    a, step.state
                )),
            }
        }
        Some(out)
    }
}

/// Exhaustively explore `model` (subject to `cfg` bounds) by BFS,
/// checking invariants in every discovered state and quiescent
/// invariants in every dead-end state.
pub fn check<M: Model>(model: &M, cfg: CheckConfig) -> Outcome<M> {
    let safety = model.invariants();
    let quiescent = model.quiescent_invariants();

    // Arena of discovered states + parent pointers for trace rebuild.
    let mut states: Vec<M::State> = Vec::new();
    let mut parent: Vec<Option<(usize, M::Action)>> = Vec::new();
    let mut depth_of: Vec<usize> = Vec::new();
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut report = Report::default();

    let mut violation: Option<(&'static str, usize)> = None;
    let intern = |s: M::State,
                  from: Option<(usize, M::Action)>,
                  depth: usize,
                  states: &mut Vec<M::State>,
                  parent: &mut Vec<Option<(usize, M::Action)>>,
                  depth_of: &mut Vec<usize>,
                  index: &mut HashMap<M::State, usize>,
                  queue: &mut VecDeque<usize>|
     -> usize {
        if let Some(&ix) = index.get(&s) {
            return ix;
        }
        let ix = states.len();
        index.insert(s.clone(), ix);
        states.push(s);
        parent.push(from);
        depth_of.push(depth);
        queue.push_back(ix);
        ix
    };

    for s in model.init_states() {
        let ix = intern(
            s,
            None,
            0,
            &mut states,
            &mut parent,
            &mut depth_of,
            &mut index,
            &mut queue,
        );
        if violation.is_none() {
            for inv in &safety {
                if !(inv.holds)(model, &states[ix]) {
                    violation = Some((inv.name, ix));
                    break;
                }
            }
        }
    }

    let mut actions: Vec<M::Action> = Vec::new();
    while let Some(ix) = queue.pop_front() {
        if violation.is_some() {
            break;
        }
        let depth = depth_of[ix];
        report.depth = report.depth.max(depth);

        actions.clear();
        model.actions(&states[ix], &mut actions);
        if actions.is_empty() {
            report.quiescent += 1;
            for inv in &quiescent {
                if !(inv.holds)(model, &states[ix]) {
                    violation = Some((inv.name, ix));
                    break;
                }
            }
            continue;
        }
        if depth >= cfg.max_depth {
            report.truncated = true;
            continue;
        }
        let step_actions: Vec<M::Action> = actions.clone();
        for a in step_actions {
            let Some(succ) = model.next(&states[ix], &a) else {
                continue;
            };
            report.transitions += 1;
            if states.len() >= cfg.max_states && !index.contains_key(&succ) {
                report.truncated = true;
                continue;
            }
            let succ_ix = intern(
                succ,
                Some((ix, a)),
                depth + 1,
                &mut states,
                &mut parent,
                &mut depth_of,
                &mut index,
                &mut queue,
            );
            if violation.is_none() {
                for inv in &safety {
                    if !(inv.holds)(model, &states[succ_ix]) {
                        violation = Some((inv.name, succ_ix));
                        break;
                    }
                }
            }
            if violation.is_some() {
                break;
            }
        }
    }

    report.states = states.len();
    match violation {
        None => Outcome::Pass(report),
        Some((name, mut ix)) => {
            let mut trace = Vec::new();
            loop {
                match &parent[ix] {
                    Some((pix, a)) => {
                        trace.push(TraceStep {
                            action: Some(a.clone()),
                            state: states[ix].clone(),
                        });
                        ix = *pix;
                    }
                    None => {
                        trace.push(TraceStep {
                            action: None,
                            state: states[ix].clone(),
                        });
                        break;
                    }
                }
            }
            trace.reverse();
            Outcome::Violation {
                invariant: name,
                trace,
                report,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded counter that may tick up or down; with `broken` set it
    /// can overshoot the cap — an invariant violation 4 steps deep.
    struct Counter {
        cap: i32,
        broken: bool,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct CState {
        n: i32,
        budget: u8,
    }

    #[derive(Clone, Debug)]
    enum CAction {
        Up,
        Down,
    }

    impl Model for Counter {
        type State = CState;
        type Action = CAction;

        fn init_states(&self) -> Vec<CState> {
            vec![CState { n: 0, budget: 4 }]
        }

        fn actions(&self, s: &CState, out: &mut Vec<CAction>) {
            if s.budget == 0 {
                return;
            }
            let limit = if self.broken { self.cap + 1 } else { self.cap };
            if s.n < limit {
                out.push(CAction::Up);
            }
            if s.n > 0 {
                out.push(CAction::Down);
            }
        }

        fn next(&self, s: &CState, a: &CAction) -> Option<CState> {
            let n = match a {
                CAction::Up => s.n + 1,
                CAction::Down => s.n - 1,
            };
            Some(CState {
                n,
                budget: s.budget - 1,
            })
        }

        fn invariants(&self) -> Vec<Invariant<Self>> {
            vec![Invariant::new("n-within-cap", |m: &Counter, s: &CState| {
                s.n <= m.cap
            })]
        }

        fn quiescent_invariants(&self) -> Vec<Invariant<Self>> {
            // With the budget spent, the counter must be a legal value
            // (trivially true; exercises the quiescent path).
            vec![Invariant::new(
                "final-n-nonneg",
                |_: &Counter, s: &CState| s.n >= 0,
            )]
        }
    }

    #[test]
    fn exhaustive_pass_reports_counts() {
        let out = check(
            &Counter {
                cap: 3,
                broken: false,
            },
            CheckConfig::default(),
        );
        assert!(out.passed());
        let r = out.report();
        // States are (n, budget) pairs with n <= min(4 - budget, 3).
        assert!(r.states > 5 && r.transitions > r.states / 2, "{r:?}");
        assert_eq!(r.depth, 4);
        assert!(r.quiescent > 0, "budget-exhausted states are quiescent");
        assert!(!r.truncated);
        assert!(out.trace_string().is_none());
    }

    #[test]
    fn violation_yields_shortest_trace() {
        let out = check(
            &Counter {
                cap: 3,
                broken: true,
            },
            CheckConfig::default(),
        );
        let Outcome::Violation {
            invariant, trace, ..
        } = &out
        else {
            panic!("broken counter must violate");
        };
        assert_eq!(*invariant, "n-within-cap");
        // Shortest path to n == 4 is four Up steps.
        assert_eq!(trace.len(), 5, "init + 4 actions");
        assert!(trace[0].action.is_none());
        let text = out.trace_string().unwrap();
        assert!(
            text.contains("n-within-cap") && text.contains("[init]"),
            "{text}"
        );
    }

    #[test]
    fn depth_bound_truncates() {
        let out = check(
            &Counter {
                cap: 3,
                broken: true,
            },
            CheckConfig {
                max_depth: 2,
                max_states: 1_000_000,
            },
        );
        assert!(out.passed(), "bug lives at depth 4, below the bound");
        assert!(out.report().truncated);
    }

    #[test]
    fn state_bound_truncates() {
        let out = check(
            &Counter {
                cap: 3,
                broken: false,
            },
            CheckConfig {
                max_depth: usize::MAX,
                max_states: 3,
            },
        );
        assert!(out.passed());
        let r = out.report();
        assert!(r.truncated);
        assert!(r.states <= 4, "{r:?}");
    }
}
