//! The hand-rolled epoll reactor: every accepted peer multiplexed onto
//! a small worker pool (Linux only, no tokio — raw epoll via [`crate::sys`]).
//!
//! Shape:
//!
//! * one **poller** thread owns the epoll instance and the listener:
//!   `epoll_wait` → accept bursts, drain the wake pipe, and push ready
//!   peer ids onto a shared ready list;
//! * `workers` **worker** threads pop peer ids and run one bounded
//!   *turn* each: drain the peer's write queue (until `WouldBlock` —
//!   EPOLLOUT interest is armed only while writes are pending), then
//!   read up to a byte budget, reassemble frames through
//!   [`PeerReader`](crate::peer::PeerReader) and hand them to the
//!   [`EventSink`]. A peer with work left over is re-queued at the
//!   tail, so one firehose peer cannot starve a thousand quiet ones;
//! * a `scheduled` flag per peer keeps a peer on the ready list at most
//!   once (turns never run concurrently for one peer), and a `kicked`
//!   flag re-schedules peers that received outbound frames mid-turn —
//!   the classic lost-wakeup guard;
//! * **backpressure**: each peer's outbound queue is bounded
//!   ([`OutQueueConfig`]); control frames report `Full`, telemetry
//!   batches evict oldest-first. A `WouldBlock` write parks the peer on
//!   EPOLLOUT instead of spinning;
//! * **one-shot arming**: peer fds are registered `EPOLLONESHOT`, so a
//!   peer with a turn queued (or running) generates no further poller
//!   wakeups; the turn re-arms the fd — with EPOLLOUT while writes are
//!   pending — only when the peer goes idle. Without this, level-
//!   triggered epoll re-reports every scheduled-but-unread peer on
//!   every `epoll_wait`, and the poller burns the CPU the workers need;
//! * **deterministic shutdown**: `shutdown()` sets the stop flag, wakes
//!   the poller and every worker, joins them all, then closes every
//!   peer socket.
//!
//! Chaos points (no-ops in release / `buggify-off`):
//! `net.epoll.spurious` (schedule a peer with no real readiness),
//! `net.accept.burst` (cut an accept burst short — level-triggered
//! epoll re-reports the rest), `net.write.wouldblock` (treat a write as
//! `WouldBlock`, forcing the EPOLLOUT path). All three are lossless.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Weak};
use std::thread::JoinHandle;
use std::{io, thread};

use parking_lot::Mutex;
use qos_telemetry::{Counter, Gauge, Telemetry};

use crate::peer::{Enqueue, OutQueueConfig, PeerOutQueue, PeerReader, SendClass};
use crate::sock::{SockListener, SockStream};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT};

/// Registration token for the wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX;
/// Registration token for the listener.
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Where the reactor delivers protocol input. Implementations must be
/// cheap to call from worker threads; blocking (e.g. on a bounded
/// manager queue) is allowed and is how ingest backpressure propagates
/// to the socket.
pub trait EventSink: Send + Sync + 'static {
    /// One complete raw frame from a peer. Return `false` to ask the
    /// reactor to close this peer.
    fn on_frame(&self, frame: Vec<u8>, peer: &PeerSender) -> bool;

    /// A peer's byte stream was corrupt beyond reframing; the reactor
    /// is closing it.
    fn on_corrupt(&self);
}

/// Outcome of a [`PeerSender`] delivery attempt — mirrors the manager's
/// sink contract: `Full` means retry the same frame later, `Gone` means
/// forget the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerSend {
    /// Queued for writing (possibly after evicting older telemetry).
    Sent,
    /// The peer's control lane has no room right now.
    Full,
    /// The peer is closed; drop the sender.
    Gone,
}

/// Reactor tunables.
#[derive(Clone)]
pub struct ReactorConfig {
    /// Worker threads running peer turns (the C10k budget is ≤ 4).
    pub workers: usize,
    /// Max bytes one peer may read per turn before being re-queued at
    /// the tail (fairness under a firehose peer).
    pub read_budget: usize,
    /// Per-peer outbound queue bounds.
    pub out: OutQueueConfig,
    /// Metrics sink for the `net.*` gauges/counters (`None` = no-op).
    pub telemetry: Option<Telemetry>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 4,
            read_budget: 64 * 1024,
            out: OutQueueConfig::default(),
            telemetry: None,
        }
    }
}

/// Live counters for the reactor (plain atomics; also mirrored to
/// `net.*` telemetry series when a [`Telemetry`] was configured).
#[derive(Default)]
pub struct NetStats {
    /// Connections accepted over the reactor's lifetime.
    pub accepted: AtomicU64,
    /// Currently connected peers.
    pub peers: AtomicU64,
    /// Complete frames read from peers.
    pub frames_in: AtomicU64,
    /// `epoll_wait` returns that reported at least one event.
    pub wakeups: AtomicU64,
    /// Writes that hit `WouldBlock` (peer parked on EPOLLOUT).
    pub backpressure_stalls: AtomicU64,
    /// Telemetry frames evicted or refused by bounded peer queues.
    pub telemetry_dropped: AtomicU64,
    /// Chaos-injected spurious schedules (`net.epoll.spurious`).
    pub spurious: AtomicU64,
    /// High-water mark of the ready-list depth.
    pub ready_high_water: AtomicU64,
}

struct Gauges {
    peers: Gauge,
    ready_depth: Gauge,
    wakeups: Counter,
    stalls: Counter,
    spurious: Counter,
    telemetry_dropped: Counter,
}

impl Gauges {
    fn new(t: Option<&Telemetry>) -> Gauges {
        match t {
            Some(t) => Gauges {
                peers: t.gauge("net.peers", "reactor"),
                ready_depth: t.gauge("net.ready_depth", "reactor"),
                wakeups: t.counter("net.wakeups", "reactor"),
                stalls: t.counter("net.backpressure_stalls", "reactor"),
                spurious: t.counter("net.spurious", "reactor"),
                telemetry_dropped: t.counter("net.telemetry_dropped", "reactor"),
            },
            None => Gauges {
                peers: Gauge::noop(),
                ready_depth: Gauge::noop(),
                wakeups: Counter::noop(),
                stalls: Counter::noop(),
                spurious: Counter::noop(),
                telemetry_dropped: Counter::noop(),
            },
        }
    }
}

struct Slot {
    id: u64,
    fd: RawFd,
    stream: Mutex<SockStream>,
    reader: Mutex<PeerReader>,
    out: Mutex<PeerOutQueue>,
    /// On the ready list or mid-turn (keeps each peer queued at most
    /// once; turns for one peer never run concurrently).
    scheduled: AtomicBool,
    /// Outbound frames arrived mid-turn; re-schedule when the turn ends.
    kicked: AtomicBool,
    closed: AtomicBool,
}

struct Ready {
    queue: StdMutex<VecDeque<u64>>,
    cv: Condvar,
}

struct Shared {
    epoll: Epoll,
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    ready: Ready,
    kicks: Mutex<Vec<u64>>,
    wake_tx: Mutex<UnixStream>,
    stop: AtomicBool,
    next_id: AtomicU64,
    stats: Arc<NetStats>,
    sink: Arc<dyn EventSink>,
    cfg: ReactorConfig,
    gauges: Gauges,
}

impl Shared {
    fn wake(&self) {
        // One pending byte is enough; WouldBlock means a wake is
        // already queued.
        let _ = self.wake_tx.lock().write(&[1u8]);
    }

    /// Put a peer on the ready list (idempotent while scheduled).
    fn schedule(&self, id: u64) {
        self.schedule_batch(std::slice::from_ref(&id));
    }

    /// Put many peers on the ready list under one lock pass — the
    /// poller calls this once per `epoll_wait` batch.
    fn schedule_batch(&self, ids: &[u64]) {
        let mut fresh: Vec<u64> = Vec::with_capacity(ids.len());
        {
            let slots = self.slots.lock();
            for &id in ids {
                let Some(slot) = slots.get(&id) else {
                    continue;
                };
                if slot.closed.load(Ordering::Acquire) {
                    continue;
                }
                if !slot.scheduled.swap(true, Ordering::AcqRel) {
                    fresh.push(id);
                }
            }
        }
        if fresh.is_empty() {
            return;
        }
        let depth = {
            let mut q = self.ready.queue.lock().expect("ready lock");
            q.extend(fresh.iter().copied());
            q.len() as u64
        };
        self.stats
            .ready_high_water
            .fetch_max(depth, Ordering::Relaxed);
        self.gauges.ready_depth.set(depth as f64);
        if fresh.len() == 1 {
            self.ready.cv.notify_one();
        } else {
            self.ready.cv.notify_all();
        }
    }

    /// A sender delivered frames to a peer: make sure a turn runs soon.
    fn kick(&self, slot: &Slot) {
        if slot.kicked.swap(true, Ordering::AcqRel) {
            return;
        }
        self.kicks.lock().push(slot.id);
        self.wake();
    }

    fn close_peer(&self, slot: &Slot) {
        if slot.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = self.epoll.del(slot.fd);
        slot.stream.lock().shutdown();
        self.slots.lock().remove(&slot.id);
        let n = self.stats.peers.fetch_sub(1, Ordering::Relaxed) - 1;
        self.gauges.peers.set(n as f64);
    }
}

/// A cloneable handle the manager uses to push frames to one reactor
/// peer (the reactor twin of the blocking driver's shared write half).
#[derive(Clone)]
pub struct PeerSender {
    slot: Weak<Slot>,
    shared: Weak<Shared>,
}

impl PeerSender {
    fn send(&self, class: SendClass, frame: &[u8]) -> PeerSend {
        let (Some(slot), Some(shared)) = (self.slot.upgrade(), self.shared.upgrade()) else {
            return PeerSend::Gone;
        };
        if slot.closed.load(Ordering::Acquire) {
            return PeerSend::Gone;
        }
        let r = slot.out.lock().enqueue(class, frame);
        match r {
            Enqueue::Queued | Enqueue::DroppedOldest | Enqueue::DroppedNew => {
                if matches!(r, Enqueue::DroppedOldest | Enqueue::DroppedNew) {
                    shared
                        .stats
                        .telemetry_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    shared.gauges.telemetry_dropped.inc();
                }
                shared.kick(&slot);
                PeerSend::Sent
            }
            Enqueue::Full => PeerSend::Full,
        }
    }

    /// Queue a protocol reply (sync ack). `Full` asks the caller to
    /// retry later.
    pub fn send_control(&self, frame: &[u8]) -> PeerSend {
        self.send(SendClass::Control, frame)
    }

    /// Queue a telemetry batch (lossy lane: drop-oldest under
    /// pressure — a drop still reports `Sent`, and is counted in
    /// [`NetStats::telemetry_dropped`]).
    pub fn send_telemetry(&self, frame: &[u8]) -> PeerSend {
        self.send(SendClass::Telemetry, frame)
    }

    /// The reactor-assigned peer id.
    pub fn peer_id(&self) -> Option<u64> {
        self.slot.upgrade().map(|s| s.id)
    }
}

/// A running reactor; dropping without [`ReactorHandle::shutdown`]
/// leaks the threads, so the owner must call it.
pub struct ReactorHandle {
    shared: Arc<Shared>,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Start a reactor on an already-bound listener. Frames are
    /// delivered to `sink` from worker threads.
    pub fn spawn(
        listener: SockListener,
        sink: Arc<dyn EventSink>,
        cfg: ReactorConfig,
    ) -> io::Result<ReactorHandle> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::create()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        epoll.add(wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;

        let gauges = Gauges::new(cfg.telemetry.as_ref());
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            epoll,
            slots: Mutex::new(HashMap::new()),
            ready: Ready {
                queue: StdMutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            kicks: Mutex::new(Vec::new()),
            wake_tx: Mutex::new(wake_tx),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            stats: Arc::new(NetStats::default()),
            sink,
            cfg,
            gauges,
        });

        // Reactor threads inherit the spawner's buggify schedule so
        // chaos tests can arm net.* points deterministically.
        let chaos = qos_buggify::config();

        let poller = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("qos-net-poller".into())
                .spawn(move || {
                    if let Some(c) = chaos {
                        qos_buggify::adopt(c);
                    }
                    poller_loop(&shared, listener, wake_rx);
                })
                .map_err(|e| io::Error::other(format!("spawn poller: {e}")))?
        };

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let shared = Arc::clone(&shared);
            let h = thread::Builder::new()
                .name(format!("qos-net-worker-{i}"))
                .spawn(move || {
                    if let Some(c) = chaos {
                        qos_buggify::adopt(c);
                    }
                    worker_loop(&shared);
                })
                .map_err(|e| io::Error::other(format!("spawn worker: {e}")))?;
            workers.push(h);
        }

        Ok(ReactorHandle {
            shared,
            poller: Some(poller),
            workers,
        })
    }

    /// Live reactor counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Stop the reactor deterministically: stop flag → wake poller and
    /// workers → join all threads → close every peer socket.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake();
        self.shared.ready.cv.notify_all();
        if let Some(p) = self.poller.take() {
            let _ = p.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let slots: Vec<Arc<Slot>> = self.shared.slots.lock().values().cloned().collect();
        for slot in slots {
            self.shared.close_peer(&slot);
        }
    }
}

fn poller_loop(shared: &Arc<Shared>, listener: SockListener, mut wake_rx: UnixStream) {
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
    let mut drain = [0u8; 64];
    while !shared.stop.load(Ordering::Acquire) {
        // The wake pipe bounds the wait; 250 ms is a safety net against
        // a lost wake, not the scheduling latency.
        let n = match shared.epoll.wait(&mut events, 250) {
            Ok(n) => n,
            Err(_) => break,
        };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if n > 0 {
            shared.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            shared.gauges.wakeups.inc();
        }
        let mut batch: Vec<u64> = Vec::with_capacity(n);
        for ev in &events[..n] {
            let e = *ev;
            let (bits, token) = (e.events, e.data);
            match token {
                TOKEN_WAKE => while wake_rx.read(&mut drain).is_ok_and(|r| r > 0) {},
                TOKEN_LISTENER => accept_burst(shared, &listener),
                id => {
                    if qos_buggify::buggify!("net.epoll.spurious") {
                        // Chaos: wake a peer with no real readiness —
                        // its turn reads WouldBlock and must be a
                        // harmless no-op. Copy the id out first: holding
                        // the slots guard across `schedule` (which locks
                        // slots again) would self-deadlock the poller.
                        let other = shared.slots.lock().keys().next().copied();
                        if let Some(other) = other {
                            shared.stats.spurious.fetch_add(1, Ordering::Relaxed);
                            shared.gauges.spurious.inc();
                            shared.schedule(other);
                        }
                    }
                    let _ = bits & (EPOLLIN | EPOLLOUT | EPOLLERR | EPOLLHUP);
                    batch.push(id);
                }
            }
        }
        // Kicks arrive from sender threads (manager pushing acks or
        // telemetry); drain them every pass regardless of what woke us.
        batch.extend(std::mem::take(&mut *shared.kicks.lock()));
        // One lock pass and at most one condvar notify per epoll batch.
        shared.schedule_batch(&batch);
    }
}

fn accept_burst(shared: &Arc<Shared>, listener: &SockListener) {
    loop {
        match listener.accept() {
            Ok(stream) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let fd = stream.as_raw_fd();
                let slot = Arc::new(Slot {
                    id,
                    fd,
                    stream: Mutex::new(stream),
                    reader: Mutex::new(PeerReader::new()),
                    out: Mutex::new(PeerOutQueue::new(shared.cfg.out)),
                    scheduled: AtomicBool::new(false),
                    kicked: AtomicBool::new(false),
                    closed: AtomicBool::new(false),
                });
                shared.slots.lock().insert(id, Arc::clone(&slot));
                if shared.epoll.add(fd, EPOLLIN | EPOLLONESHOT, id).is_err() {
                    shared.slots.lock().remove(&id);
                    continue;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let peers = shared.stats.peers.fetch_add(1, Ordering::Relaxed) + 1;
                shared.gauges.peers.set(peers as f64);
                if qos_buggify::buggify!("net.accept.burst") {
                    // Chaos: cut the burst short. Level-triggered epoll
                    // re-reports the listener, so pending connections
                    // are delayed, never lost.
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut q = shared.ready.queue.lock().expect("ready lock");
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    break id;
                }
                q = shared.ready.cv.wait(q).expect("ready wait");
            }
        };
        let slot = shared.slots.lock().get(&id).cloned();
        if let Some(slot) = slot {
            run_turn(shared, &slot);
        }
    }
}

/// One bounded unit of work for one peer: drain writes, then read up to
/// the budget. Exactly one worker runs a given peer's turn at a time
/// (the `scheduled` flag).
fn run_turn(shared: &Arc<Shared>, slot: &Arc<Slot>) {
    if slot.closed.load(Ordering::Acquire) {
        slot.scheduled.store(false, Ordering::Release);
        return;
    }
    let mut closed = false;
    let mut corrupt = false;
    let mut more = false;

    // --- write drain: until empty or WouldBlock ----------------------
    {
        let mut out = slot.out.lock();
        let mut stream = slot.stream.lock();
        while let Some(chunk) = out.write_chunk() {
            if qos_buggify::buggify!("net.write.wouldblock") {
                // Chaos: pretend the kernel buffer is full — the frame
                // stays queued and EPOLLOUT must finish the job.
                shared
                    .stats
                    .backpressure_stalls
                    .fetch_add(1, Ordering::Relaxed);
                shared.gauges.stalls.inc();
                break;
            }
            match stream.write(chunk) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => out.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    shared
                        .stats
                        .backpressure_stalls
                        .fetch_add(1, Ordering::Relaxed);
                    shared.gauges.stalls.inc();
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
    }

    // --- read up to the fairness budget ------------------------------
    let mut frames: Vec<Vec<u8>> = Vec::new();
    if !closed {
        let mut reader = slot.reader.lock();
        let mut stream = slot.stream.lock();
        let mut budget = shared.cfg.read_budget;
        let mut buf = [0u8; 8192];
        loop {
            if budget == 0 {
                more = true;
                break;
            }
            match stream.read(&mut buf) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    reader.on_bytes(&buf[..n]);
                    loop {
                        match reader.next_frame() {
                            Ok(Some(f)) => frames.push(f),
                            Ok(None) => break,
                            Err(_) => {
                                corrupt = true;
                                closed = true;
                                break;
                            }
                        }
                    }
                    if closed {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
    }

    // --- deliver frames with no slot locks held (the sink may block
    // on the manager's bounded queue; senders only need the out lock,
    // so backpressure propagates without deadlock) -------------------
    if !frames.is_empty() {
        shared
            .stats
            .frames_in
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        let sender = PeerSender {
            slot: Arc::downgrade(slot),
            shared: Arc::downgrade(shared),
        };
        for f in frames {
            if !shared.sink.on_frame(f, &sender) {
                closed = true;
                break;
            }
        }
    }
    if corrupt {
        shared.sink.on_corrupt();
    }

    if closed {
        shared.close_peer(slot);
        slot.scheduled.store(false, Ordering::Release);
        return;
    }

    // --- hand the slot back. The fd is EPOLLONESHOT-disarmed while the
    // peer is scheduled; clear `scheduled` first (so a racing kick can
    // re-queue), then either re-queue at the tail (work left over) or
    // re-arm the fd — with EPOLLOUT only while writes are pending.
    // `epoll_ctl(MOD)` re-checks level-triggered readiness, so bytes
    // that arrived between our last read and the re-arm fire instantly.
    slot.scheduled.store(false, Ordering::Release);
    if more | slot.kicked.swap(false, Ordering::AcqRel) {
        shared.schedule(slot.id);
    } else {
        let want = EPOLLIN
            | EPOLLONESHOT
            | if slot.out.lock().has_pending() {
                EPOLLOUT
            } else {
                0
            };
        let _ = shared.epoll.modify(slot.fd, want, slot.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sock::SockAddr;
    use qos_wire::WireMsg;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    struct CountSink {
        frames: AtomicU64,
        corrupt: AtomicU64,
        echo: bool,
    }

    impl EventSink for CountSink {
        fn on_frame(&self, frame: Vec<u8>, peer: &PeerSender) -> bool {
            self.frames.fetch_add(1, Ordering::Relaxed);
            if self.echo {
                // Echo the frame back as a control reply.
                let _ = peer.send_control(&frame);
            }
            true
        }
        fn on_corrupt(&self) {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn uds_addr(name: &str) -> SockAddr {
        let dir = std::env::temp_dir().join(format!("qos-net-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        SockAddr::Uds(dir.join(name))
    }

    fn wait_until(d: Duration, mut f: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        f()
    }

    #[test]
    fn reactor_echoes_frames_across_many_peers() {
        let addr = uds_addr("echo.sock");
        let listener = SockListener::bind(&addr).unwrap();
        let sink = Arc::new(CountSink {
            frames: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            echo: true,
        });
        let h = ReactorHandle::spawn(
            listener,
            sink.clone(),
            ReactorConfig {
                workers: 2,
                ..ReactorConfig::default()
            },
        )
        .unwrap();

        let mut streams = Vec::new();
        for i in 0..8u64 {
            let mut s = SockStream::connect(&addr).unwrap();
            let f = WireMsg::SyncReq { token: i }.encode_frame();
            s.write_all(&f).unwrap();
            streams.push((s, f));
        }
        // Every peer gets its own frame echoed back.
        for (s, f) in &mut streams {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut got = vec![0u8; f.len()];
            s.read_exact(&mut got).unwrap();
            assert_eq!(&got, f);
        }
        assert_eq!(sink.frames.load(Ordering::Relaxed), 8);
        let stats = h.stats();
        assert_eq!(stats.accepted.load(Ordering::Relaxed), 8);
        assert_eq!(stats.peers.load(Ordering::Relaxed), 8);
        drop(streams);
        assert!(
            wait_until(Duration::from_secs(5), || stats
                .peers
                .load(Ordering::Relaxed)
                == 0),
            "closed peers must be reaped"
        );
        h.shutdown();
    }

    #[test]
    fn corrupt_stream_closes_peer_and_reports() {
        let addr = uds_addr("corrupt.sock");
        let listener = SockListener::bind(&addr).unwrap();
        let sink = Arc::new(CountSink {
            frames: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            echo: false,
        });
        let h = ReactorHandle::spawn(listener, sink.clone(), ReactorConfig::default()).unwrap();
        let mut s = SockStream::connect(&addr).unwrap();
        let mut bad = WireMsg::Bye.encode_frame();
        bad[0] ^= 0xff;
        s.write_all(&bad).unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || sink
                .corrupt
                .load(Ordering::Relaxed)
                == 1),
            "corruption must be reported"
        );
        let stats = h.stats();
        assert!(wait_until(Duration::from_secs(5), || stats
            .peers
            .load(Ordering::Relaxed)
            == 0));
        h.shutdown();
    }

    #[test]
    fn shutdown_joins_threads_deterministically() {
        let addr = uds_addr("shutdown.sock");
        let listener = SockListener::bind(&addr).unwrap();
        let sink = Arc::new(CountSink {
            frames: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            echo: false,
        });
        let h = ReactorHandle::spawn(listener, sink, ReactorConfig::default()).unwrap();
        let _s = SockStream::connect(&addr).unwrap();
        let t0 = Instant::now();
        h.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown must not hang on the 250ms poll tick"
        );
    }

    #[test]
    fn telemetry_lane_drops_oldest_under_backpressure() {
        let addr = uds_addr("pressure.sock");
        let listener = SockListener::bind(&addr).unwrap();
        let sink = Arc::new(CountSink {
            frames: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            echo: false,
        });
        let h = ReactorHandle::spawn(
            listener,
            sink,
            ReactorConfig {
                out: OutQueueConfig {
                    max_bytes: 1 << 20,
                    max_telemetry_frames: 4,
                },
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let mut s = SockStream::connect(&addr).unwrap();
        s.write_all(&WireMsg::Bye.encode_frame()).unwrap();
        let stats = h.stats();
        assert!(wait_until(Duration::from_secs(5), || stats
            .frames_in
            .load(Ordering::Relaxed)
            == 1));
        // The peer never reads; flood its telemetry lane with frames
        // far larger than the kernel socket buffer so writes park on
        // EPOLLOUT and the 4-frame cap forces drop-oldest eviction.
        // (The queue does not validate frame bytes, and this peer never
        // decodes them.)
        let slot = h.shared.slots.lock().values().next().cloned().unwrap();
        let sender = PeerSender {
            slot: Arc::downgrade(&slot),
            shared: Arc::downgrade(&h.shared),
        };
        let big = vec![0u8; 32 * 1024];
        // Keep flooding until both effects are observed: the worker's
        // write parks on a full kernel buffer (stall), and the bounded
        // queue evicts oldest-first behind it.
        assert!(
            wait_until(Duration::from_secs(10), || {
                assert_eq!(sender.send_telemetry(&big), PeerSend::Sent);
                stats.telemetry_dropped.load(Ordering::Relaxed) > 0
                    && stats.backpressure_stalls.load(Ordering::Relaxed) > 0
            }),
            "flooding a non-reading peer must stall on EPOLLOUT and evict oldest"
        );
        h.shutdown();
        assert_eq!(sender.send_telemetry(&big), PeerSend::Gone);
    }
}
