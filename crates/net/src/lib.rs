//! # qos-net — sans-io peer protocol + socket drivers
//!
//! The transport seam between instrumented processes and a live host
//! manager, split the way `redis-rust` splits `production/` from
//! `simulator/`: **one protocol state machine, several drivers**.
//!
//! The machines are pure — bytes in, bytes out, explicit `Instant`s for
//! every timer decision, no syscalls — so the same logic runs under:
//!
//! * the blocking **thread-per-peer** driver (kept for sim parity and
//!   non-Linux hosts) in `qos-manager`,
//! * the hand-rolled **epoll reactor** ([`reactor`], Linux only): all
//!   accepted peers on a small worker pool, per-peer bounded write
//!   queues with drop-oldest telemetry backpressure, EPOLLOUT-driven
//!   flush, fair ready-list scheduling and deterministic shutdown,
//! * unit tests, which drive the machines with plain byte slices and
//!   fabricated clocks.
//!
//! Module map:
//!
//! * [`sock`] — `SockAddr` / `SockStream` / `SockListener`, the TCP/UDS
//!   primitives (moved here from `qos-manager::transport`);
//! * [`policy`] — [`FlushPolicy`], [`ReconnectPolicy`] and the jittered
//!   doubling [`Backoff`] envelope;
//! * [`peer`] — the accepted-peer half: [`PeerReader`] (frame
//!   reassembly) and [`PeerOutQueue`] (classed, bounded outbound queue);
//! * [`client`] — [`ClientConn`], the dialing half: greeting replay,
//!   backoff reconnect scheduling, and `FlushPolicy` write coalescing;
//! * [`sys`] — a thin raw-FFI epoll surface (Linux only, no `libc`
//!   crate — the workspace is hermetic);
//! * [`reactor`] — the epoll driver itself (Linux only).

#![warn(missing_docs)]

pub mod client;
pub mod peer;
pub mod policy;
pub mod sock;

#[cfg(target_os = "linux")]
pub mod sys;

#[cfg(target_os = "linux")]
pub mod reactor;

pub use client::{ClientConn, FlushBatch};
pub use peer::{Enqueue, OutQueueConfig, PeerOutQueue, PeerReader, SendClass};
pub use policy::{Backoff, FlushPolicy, ReconnectPolicy};
pub use sock::{SockAddr, SockListener, SockStream};

#[cfg(target_os = "linux")]
pub use reactor::{EventSink, NetStats, PeerSend, PeerSender, ReactorConfig, ReactorHandle};
