//! The accepted-peer half of the protocol: pure state machines the
//! drivers feed bytes and drain bytes from.
//!
//! * [`PeerReader`] — reassembles the inbound byte stream into raw,
//!   header-validated frames (decode happens centrally in the manager
//!   thread so malformed frames are counted in one place).
//! * [`PeerOutQueue`] — the outbound side: a bounded, *classed* queue.
//!   Control frames (sync acks) report `Full` under pressure so the
//!   sender can retry; telemetry frames are lossy by contract and evict
//!   the oldest pending telemetry batch instead of growing without
//!   bound — the reactor twin of the manager's per-subscriber
//!   drop-oldest queue.
//!
//! Neither type performs IO: the thread-per-peer driver wraps
//! [`PeerReader`] around blocking reads, the epoll reactor wraps both
//! around non-blocking reads/writes, and tests drive them with plain
//! slices.

use std::collections::VecDeque;

use qos_wire::{FrameBuffer, WireError};

/// Reassembles one peer's inbound byte stream into raw frames.
#[derive(Default)]
pub struct PeerReader {
    fb: FrameBuffer,
    frames: u64,
}

impl PeerReader {
    /// An empty reader.
    pub fn new() -> Self {
        PeerReader::default()
    }

    /// Feed bytes as they arrive from the driver.
    pub fn on_bytes(&mut self, chunk: &[u8]) {
        self.fb.extend(chunk);
    }

    /// The next complete raw frame (header validated, payload not yet
    /// decoded), if one is buffered. An `Err` means the stream is
    /// corrupt beyond reframing — the driver must drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let r = self.fb.next_raw();
        if let Ok(Some(_)) = r {
            self.frames += 1;
        }
        r
    }

    /// Complete frames produced so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes buffered but not yet framed.
    pub fn pending_bytes(&self) -> usize {
        self.fb.len()
    }
}

/// Which outbound lane a frame travels in — the queue's backpressure
/// decision differs per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendClass {
    /// Protocol replies (sync acks): never silently dropped; the queue
    /// reports `Full` and the sender retries.
    Control,
    /// Telemetry batches: lossy by contract; oldest pending batch is
    /// evicted under pressure (drop-oldest, like the manager's
    /// subscriber queues).
    Telemetry,
}

/// Bounds for one peer's outbound queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutQueueConfig {
    /// Total queued bytes across both classes before control sends
    /// report `Full` (and telemetry sends are dropped).
    pub max_bytes: usize,
    /// Pending telemetry frames before drop-oldest eviction kicks in.
    pub max_telemetry_frames: usize,
}

impl Default for OutQueueConfig {
    fn default() -> Self {
        OutQueueConfig {
            max_bytes: 256 * 1024,
            max_telemetry_frames: 64,
        }
    }
}

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Frame queued.
    Queued,
    /// Control lane: no room — keep the frame and retry later.
    Full,
    /// Telemetry lane: queued after evicting the oldest pending
    /// telemetry frame (eviction is counted in
    /// [`PeerOutQueue::dropped_telemetry`]).
    DroppedOldest,
    /// Telemetry lane: the *new* frame was dropped — every evictable
    /// slot is held by an in-flight (partially written) frame.
    DroppedNew,
}

/// One peer's bounded outbound queue with partial-write tracking.
pub struct PeerOutQueue {
    cfg: OutQueueConfig,
    q: VecDeque<(SendClass, Vec<u8>)>,
    /// Bytes of the front frame already handed to the OS.
    head_off: usize,
    bytes: usize,
    telemetry_frames: usize,
    dropped_telemetry: u64,
}

impl PeerOutQueue {
    /// An empty queue with the given bounds.
    pub fn new(cfg: OutQueueConfig) -> Self {
        PeerOutQueue {
            cfg,
            q: VecDeque::new(),
            head_off: 0,
            bytes: 0,
            telemetry_frames: 0,
            dropped_telemetry: 0,
        }
    }

    /// Queue a frame for writing.
    pub fn enqueue(&mut self, class: SendClass, frame: &[u8]) -> Enqueue {
        match class {
            SendClass::Control => {
                if self.bytes + frame.len() > self.cfg.max_bytes {
                    return Enqueue::Full;
                }
                self.push(class, frame);
                Enqueue::Queued
            }
            SendClass::Telemetry => {
                let mut evicted = false;
                while self.telemetry_frames >= self.cfg.max_telemetry_frames {
                    if !self.evict_oldest_telemetry() {
                        break;
                    }
                    evicted = true;
                }
                if self.telemetry_frames >= self.cfg.max_telemetry_frames
                    || self.bytes + frame.len() > self.cfg.max_bytes
                {
                    self.dropped_telemetry += 1;
                    return Enqueue::DroppedNew;
                }
                self.push(class, frame);
                if evicted {
                    Enqueue::DroppedOldest
                } else {
                    Enqueue::Queued
                }
            }
        }
    }

    fn push(&mut self, class: SendClass, frame: &[u8]) {
        self.bytes += frame.len();
        if class == SendClass::Telemetry {
            self.telemetry_frames += 1;
        }
        self.q.push_back((class, frame.to_vec()));
    }

    /// Remove the oldest telemetry frame that is *not* partially
    /// written (a frame already half-handed to the OS must finish or
    /// the stream corrupts). `false` if nothing was evictable.
    fn evict_oldest_telemetry(&mut self) -> bool {
        let start = usize::from(self.head_off > 0);
        let Some(ix) = self
            .q
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, (c, _))| *c == SendClass::Telemetry)
            .map(|(i, _)| i)
        else {
            return false;
        };
        let (_, frame) = self.q.remove(ix).expect("index in range");
        self.bytes -= frame.len();
        self.telemetry_frames -= 1;
        self.dropped_telemetry += 1;
        true
    }

    /// The unwritten remainder of the front frame, if any — hand this
    /// to the OS, then [`PeerOutQueue::advance`] by what was accepted.
    pub fn write_chunk(&self) -> Option<&[u8]> {
        self.q.front().map(|(_, f)| &f[self.head_off..])
    }

    /// Record that the OS accepted `n` bytes of the front frame(s).
    pub fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let Some((class, front)) = self.q.front() else {
                debug_assert!(false, "advance past queue end");
                return;
            };
            let rem = front.len() - self.head_off;
            if n >= rem {
                n -= rem;
                self.bytes -= front.len();
                if *class == SendClass::Telemetry {
                    self.telemetry_frames -= 1;
                }
                self.q.pop_front();
                self.head_off = 0;
            } else {
                self.head_off += n;
                n = 0;
            }
        }
    }

    /// Anything still waiting to be written?
    pub fn has_pending(&self) -> bool {
        !self.q.is_empty()
    }

    /// Total unwritten bytes queued.
    pub fn pending_bytes(&self) -> usize {
        self.bytes - self.head_off
    }

    /// Telemetry frames evicted or refused under pressure so far.
    pub fn dropped_telemetry(&self) -> u64 {
        self.dropped_telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_wire::WireMsg;

    fn frame(token: u64) -> Vec<u8> {
        WireMsg::SyncReq { token }.encode_frame()
    }

    #[test]
    fn reader_reassembles_across_chunk_boundaries() {
        let mut r = PeerReader::new();
        let a = frame(1);
        let b = frame(2);
        let mut bytes = a.clone();
        bytes.extend_from_slice(&b);
        // Feed in awkward splits: mid-header and mid-payload.
        for chunk in bytes.chunks(3) {
            r.on_bytes(chunk);
        }
        assert_eq!(r.next_frame().unwrap().unwrap(), a);
        assert_eq!(r.next_frame().unwrap().unwrap(), b);
        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.frames(), 2);
    }

    #[test]
    fn reader_reports_corruption_as_error() {
        let mut r = PeerReader::new();
        let mut bad = frame(1);
        bad[0] ^= 0xff;
        r.on_bytes(&bad);
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn out_queue_preserves_order_across_partial_writes() {
        let mut q = PeerOutQueue::new(OutQueueConfig::default());
        let a = frame(1);
        let b = frame(2);
        assert_eq!(q.enqueue(SendClass::Control, &a), Enqueue::Queued);
        assert_eq!(q.enqueue(SendClass::Telemetry, &b), Enqueue::Queued);
        // The OS accepts the first frame one byte at a time.
        let mut written = Vec::new();
        while let Some(chunk) = q.write_chunk() {
            written.push(chunk[0]);
            q.advance(1);
        }
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        assert_eq!(written, expect, "byte stream must be frame-ordered");
        assert!(!q.has_pending());
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn telemetry_evicts_oldest_never_control() {
        let mut q = PeerOutQueue::new(OutQueueConfig {
            max_bytes: 1 << 20,
            max_telemetry_frames: 2,
        });
        let ctrl = frame(100);
        assert_eq!(q.enqueue(SendClass::Control, &ctrl), Enqueue::Queued);
        assert_eq!(q.enqueue(SendClass::Telemetry, &frame(1)), Enqueue::Queued);
        assert_eq!(q.enqueue(SendClass::Telemetry, &frame(2)), Enqueue::Queued);
        // Third telemetry frame evicts frame(1), not the control frame.
        assert_eq!(
            q.enqueue(SendClass::Telemetry, &frame(3)),
            Enqueue::DroppedOldest
        );
        assert_eq!(q.dropped_telemetry(), 1);
        let mut drained = Vec::new();
        while let Some(chunk) = q.write_chunk() {
            let n = chunk.len();
            drained.extend_from_slice(chunk);
            q.advance(n);
        }
        let mut expect = ctrl.clone();
        expect.extend_from_slice(&frame(2));
        expect.extend_from_slice(&frame(3));
        assert_eq!(drained, expect);
    }

    #[test]
    fn partially_written_front_is_never_evicted() {
        let mut q = PeerOutQueue::new(OutQueueConfig {
            max_bytes: 1 << 20,
            max_telemetry_frames: 1,
        });
        let a = frame(1);
        assert_eq!(q.enqueue(SendClass::Telemetry, &a), Enqueue::Queued);
        q.advance(1); // one byte already on the wire
                      // The only evictable slot is in flight: the new frame loses.
        assert_eq!(
            q.enqueue(SendClass::Telemetry, &frame(2)),
            Enqueue::DroppedNew
        );
        // The in-flight frame still drains intact.
        let mut drained = vec![a[0]];
        while let Some(chunk) = q.write_chunk() {
            let n = chunk.len();
            drained.extend_from_slice(chunk);
            q.advance(n);
        }
        assert_eq!(drained, a);
    }

    #[test]
    fn control_reports_full_at_byte_cap() {
        let a = frame(1);
        let mut q = PeerOutQueue::new(OutQueueConfig {
            max_bytes: a.len(),
            max_telemetry_frames: 4,
        });
        assert_eq!(q.enqueue(SendClass::Control, &a), Enqueue::Queued);
        assert_eq!(q.enqueue(SendClass::Control, &a), Enqueue::Full);
        // Draining frees the budget again.
        let n = q.write_chunk().unwrap().len();
        q.advance(n);
        assert_eq!(q.enqueue(SendClass::Control, &a), Enqueue::Queued);
    }
}
