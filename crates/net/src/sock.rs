//! TCP / Unix-domain socket primitives shared by every live-mode
//! driver (moved here from `qos-manager::transport` so the reactor and
//! the blocking driver agree on one address/stream surface).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Address of a socket-mode manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockAddr {
    /// TCP, e.g. `127.0.0.1:7401`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl std::fmt::Display for SockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SockAddr::Tcp(a) => write!(f, "tcp:{a}"),
            SockAddr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

/// A connected stream of either flavour.
#[derive(Debug)]
pub enum SockStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Uds(UnixStream),
}

impl SockStream {
    /// Connect to a manager.
    pub fn connect(addr: &SockAddr) -> io::Result<SockStream> {
        match addr {
            SockAddr::Tcp(a) => TcpStream::connect(a.as_str()).map(SockStream::Tcp),
            SockAddr::Uds(p) => UnixStream::connect(p).map(SockStream::Uds),
        }
    }

    /// Clone the handle (independent read/write positions on the same
    /// connection).
    pub fn try_clone(&self) -> io::Result<SockStream> {
        match self {
            SockStream::Tcp(s) => s.try_clone().map(SockStream::Tcp),
            SockStream::Uds(s) => s.try_clone().map(SockStream::Uds),
        }
    }

    /// Bound blocking reads.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_read_timeout(t),
            SockStream::Uds(s) => s.set_read_timeout(t),
        }
    }

    /// Toggle non-blocking mode (the reactor drives every peer
    /// non-blocking; the thread-per-peer driver leaves streams
    /// blocking).
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_nonblocking(on),
            SockStream::Uds(s) => s.set_nonblocking(on),
        }
    }

    /// Close both directions.
    pub fn shutdown(&self) {
        match self {
            SockStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            SockStream::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl AsRawFd for SockStream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            SockStream::Tcp(s) => s.as_raw_fd(),
            SockStream::Uds(s) => s.as_raw_fd(),
        }
    }
}

impl Read for SockStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.read(buf),
            SockStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SockStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.write(buf),
            SockStream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.flush(),
            SockStream::Uds(s) => s.flush(),
        }
    }
}

/// A listening socket of either flavour.
#[derive(Debug)]
pub enum SockListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Uds(UnixListener),
}

impl SockListener {
    /// Bind. For UDS, a stale socket file from a crashed previous run is
    /// removed first (the standard UDS idiom).
    pub fn bind(addr: &SockAddr) -> io::Result<SockListener> {
        match addr {
            SockAddr::Tcp(a) => TcpListener::bind(a.as_str()).map(SockListener::Tcp),
            SockAddr::Uds(p) => {
                let _ = std::fs::remove_file(p);
                UnixListener::bind(p).map(SockListener::Uds)
            }
        }
    }

    /// The bound address — for TCP this resolves port 0 to the real port.
    pub fn local_addr(&self) -> io::Result<SockAddr> {
        match self {
            SockListener::Tcp(l) => l.local_addr().map(|a| SockAddr::Tcp(a.to_string())),
            SockListener::Uds(l) => {
                let a = l.local_addr()?;
                let p = a
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed UDS"))?;
                Ok(SockAddr::Uds(p.to_path_buf()))
            }
        }
    }

    /// Non-blocking accept (pair with `set_nonblocking(true)`).
    pub fn accept(&self) -> io::Result<SockStream> {
        match self {
            SockListener::Tcp(l) => l.accept().map(|(s, _)| SockStream::Tcp(s)),
            SockListener::Uds(l) => l.accept().map(|(s, _)| SockStream::Uds(s)),
        }
    }

    /// Toggle non-blocking mode.
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            SockListener::Tcp(l) => l.set_nonblocking(on),
            SockListener::Uds(l) => l.set_nonblocking(on),
        }
    }
}

impl AsRawFd for SockListener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            SockListener::Tcp(l) => l.as_raw_fd(),
            SockListener::Uds(l) => l.as_raw_fd(),
        }
    }
}
