//! Thin raw-FFI surface over Linux `epoll` — the workspace is hermetic
//! (no `libc` crate), so the three syscall wrappers the reactor needs
//! are declared directly against the C library. Everything above this
//! module is safe Rust.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Disarm the fd after delivering one event; re-arm with
/// [`Epoll::modify`]. The reactor uses this so a peer whose turn is
/// still queued generates no further wakeups.
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel declares it
/// packed (a 12-byte struct); other 64-bit ABIs use natural alignment —
/// mirror glibc's layout exactly or `epoll_wait` scribbles garbage.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's registration token.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// A safe owner of one epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// A fresh epoll instance (close-on-exec).
    pub fn create() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        // SAFETY: `evp` is either null (DEL ignores it) or points at a
        // live, correctly-laid-out EpollEvent for the duration of the
        // call.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, evp) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest set; readiness for it is
    /// reported with `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Remove a registration (safe to call on an already-closed fd —
    /// the error is reported, not panicked on).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block for ready events, at most `timeout_ms` (negative = forever).
    /// Returns how many entries of `events` were filled. `EINTR` is
    /// retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the pointer/len pair describes a live mutable
            // slice the kernel fills up to `maxevents` entries of.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        unsafe {
            let _ = close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readable_pair() {
        let ep = Epoll::create().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut evs = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing written yet: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = evs[0];
        let (events, data) = (ev.events, ev.data);
        assert_eq!(data, 7);
        assert!(events & EPOLLIN != 0);

        // Interest can be switched to write readiness.
        ep.modify(b.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = evs[0];
        let events = ev.events;
        assert!(events & EPOLLOUT != 0);

        ep.del(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);
    }
}
