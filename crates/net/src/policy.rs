//! Timing policies shared by the protocol machines: write-coalescing
//! ([`FlushPolicy`]), reconnect scheduling ([`ReconnectPolicy`]) and
//! the jittered doubling [`Backoff`] envelope behind it.

use std::time::Duration;

/// First reconnect delay after a send failure.
pub const BACKOFF_INITIAL: Duration = Duration::from_millis(50);
/// Reconnect backoff ceiling.
pub const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Doubling reconnect backoff with a hard cap and seeded jitter.
///
/// Without jitter, every client of a crashed manager arms the same
/// 50/100/200… ms schedule and the whole population reconnects in
/// lockstep — a thundering herd against the freshly restarted listener.
/// Each delay is drawn uniformly from `[cur/2, cur)` (decorrelated but
/// still bounded by the doubling envelope), and `cur` never exceeds the
/// cap, so a long outage cannot push retries apart indefinitely.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    cur: Duration,
    rng: u64,
}

impl Backoff {
    /// A doubling backoff from `base` to `cap`, jittered from `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            cur: base,
            rng: seed,
        }
    }

    /// The configured ceiling.
    pub fn cap(&self) -> Duration {
        self.cap
    }

    /// SplitMix64 step — hermetic, deterministic per seed.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draw the next delay and advance the envelope. The returned delay
    /// is strictly below the current envelope value, which is itself
    /// capped — so no delay ever exceeds [`Backoff::cap`].
    pub fn next_delay(&mut self) -> Duration {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let d = self.cur.mul_f64(0.5 + 0.5 * u);
        self.cur = (self.cur * 2).min(self.cap);
        d.min(self.cap)
    }

    /// Back to the initial envelope (call after a successful connect).
    pub fn reset(&mut self) {
        self.cur = self.base;
    }
}

/// Reconnect/backoff configuration for a dialing transport — one plain
/// struct on the builder instead of scattered `with_*` setters.
///
/// `seed: None` (the default) decorrelates co-hosted processes and
/// transports without coordination (pid ⊕ a per-process counter); pin a
/// seed for deterministic tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// First retry delay after a lost connection.
    pub base: Duration,
    /// Backoff ceiling — no retry delay ever exceeds this.
    pub cap: Duration,
    /// Jitter seed; `None` derives a per-process, per-transport seed.
    pub seed: Option<u64>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base: BACKOFF_INITIAL,
            cap: BACKOFF_MAX,
            seed: None,
        }
    }
}

impl ReconnectPolicy {
    /// The default envelope with a pinned jitter seed (deterministic
    /// tests).
    pub fn seeded(seed: u64) -> Self {
        ReconnectPolicy {
            seed: Some(seed),
            ..ReconnectPolicy::default()
        }
    }

    /// Materialize the backoff envelope, deriving a decorrelated seed
    /// when none was pinned.
    pub fn backoff(&self) -> Backoff {
        let seed = self.seed.unwrap_or_else(|| {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
            u64::from(std::process::id()).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        });
        Backoff::new(self.base, self.cap, seed)
    }
}

/// When a buffering client transport pushes its write buffer to the
/// OS: whichever of the two triggers fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush once the buffer holds at least this many bytes.
    pub max_bytes: usize,
    /// Flush once the oldest buffered frame has waited this long. The
    /// deadline is checked on the next send or explicit flush — the
    /// machine owns no timer thread, so a caller that stops sending
    /// must flush (or sync) to bound latency.
    pub max_delay: Duration,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            max_bytes: 16 * 1024,
            max_delay: Duration::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_never_exceeds_cap() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut b = Backoff::new(base, cap, 0xDEAD_BEEF);
        let mut saw_near_cap = false;
        for _ in 0..50 {
            let d = b.next_delay();
            assert!(d <= cap, "delay {d:?} exceeds cap {cap:?}");
            assert!(d >= base / 2, "delay {d:?} below half the base");
            if d >= cap / 2 {
                saw_near_cap = true;
            }
        }
        assert!(saw_near_cap, "envelope never grew near the cap");
        // After reset the envelope shrinks back to the base.
        b.reset();
        assert!(b.next_delay() < base);
    }

    #[test]
    fn backoff_jitter_is_seeded() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let draw = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(base, cap, seed);
            (0..16).map(|_| b.next_delay()).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay the same delays");
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
    }

    #[test]
    fn reconnect_policy_pins_and_derives_seeds() {
        let mut a = ReconnectPolicy::seeded(7).backoff();
        let mut b = ReconnectPolicy::seeded(7).backoff();
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        // Unpinned seeds must decorrelate transports within one process.
        let mut c = ReconnectPolicy::default().backoff();
        let mut d = ReconnectPolicy::default().backoff();
        let cs: Vec<_> = (0..8).map(|_| c.next_delay()).collect();
        let ds: Vec<_> = (0..8).map(|_| d.next_delay()).collect();
        assert_ne!(cs, ds, "derived seeds should differ per transport");
    }
}
