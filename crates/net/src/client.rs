//! The dialing half of the protocol: [`ClientConn`], a pure state
//! machine owning every decision a reconnecting, write-coalescing
//! client has to make — *when* to redial (jittered doubling backoff),
//! *what* to replay after a reconnect (the registration greeting),
//! *when* to flush the write buffer ([`FlushPolicy`] size/deadline
//! triggers) and *what* to count (flushes, deadline flushes, dropped
//! frames, reconnects).
//!
//! The machine performs no IO: the blocking `SocketTransport` driver in
//! `qos-manager` asks it questions (`connect_due`?, `flush due`?) and
//! reports outcomes (`on_connected`, `finish_flush`), and tests drive
//! it with fabricated clocks.

use std::time::Instant;

use crate::policy::{FlushPolicy, ReconnectPolicy};
use crate::Backoff;

/// A batch of buffered frames handed to the driver for one coalesced
/// write. Return it to [`ClientConn::finish_flush`] with the outcome so
/// the machine can count (and recycle the allocation).
pub struct FlushBatch {
    bytes: Vec<u8>,
    frames: u64,
    deadline_hit: bool,
}

impl FlushBatch {
    /// The coalesced frame bytes to write.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Frames in the batch.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

/// Client-side connection state machine (sans-io).
pub struct ClientConn {
    connected: bool,
    greeting: Option<Vec<u8>>,
    backoff: Backoff,
    retry_at: Option<Instant>,
    reconnects: u64,
    next_token: u64,
    policy: Option<FlushPolicy>,
    wbuf: Vec<u8>,
    wbuf_frames: u64,
    oldest_buffered: Option<Instant>,
    flushes: u64,
    deadline_flushes: u64,
    dropped_frames: u64,
}

impl ClientConn {
    /// A machine for a connection the driver has already established
    /// (the initial dial succeeded; it does not count as a reconnect).
    pub fn connected(reconnect: &ReconnectPolicy) -> Self {
        ClientConn {
            connected: true,
            greeting: None,
            backoff: reconnect.backoff(),
            retry_at: None,
            reconnects: 0,
            next_token: 1,
            policy: None,
            wbuf: Vec::new(),
            wbuf_frames: 0,
            oldest_buffered: None,
            flushes: 0,
            deadline_flushes: 0,
            dropped_frames: 0,
        }
    }

    /// Install (or clear) the write-coalescing policy.
    pub fn set_flush_policy(&mut self, policy: Option<FlushPolicy>) {
        self.policy = policy;
    }

    /// The installed write-coalescing policy, if any.
    pub fn flush_policy(&self) -> Option<FlushPolicy> {
        self.policy
    }

    /// Install the frame to replay after every reconnect (the
    /// registration greeting).
    pub fn set_greeting(&mut self, frame: Vec<u8>) {
        self.greeting = Some(frame);
    }

    /// Whether the machine believes the connection is up.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// The driver lost the connection: arm the next retry time.
    pub fn on_disconnect(&mut self, now: Instant) {
        self.connected = false;
        self.retry_at = Some(now + self.backoff.next_delay());
    }

    /// Should the driver attempt a dial now? (`false` while connected
    /// or inside the backoff window.)
    pub fn connect_due(&self, now: Instant) -> bool {
        if self.connected {
            return false;
        }
        match self.retry_at {
            Some(t) => now >= t,
            None => true,
        }
    }

    /// The driver's dial succeeded: reset the backoff envelope and
    /// return the greeting frame to replay (restores the manager's view
    /// of this process after either side restarted).
    pub fn on_connected(&mut self, _now: Instant) -> Option<Vec<u8>> {
        self.connected = true;
        self.backoff.reset();
        self.retry_at = None;
        self.reconnects += 1;
        self.greeting.clone()
    }

    /// The driver's dial failed: arm the next retry time.
    pub fn on_connect_failed(&mut self, now: Instant) {
        self.retry_at = Some(now + self.backoff.next_delay());
    }

    /// Successful reconnects after a lost connection (the initial
    /// connect does not count).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The next sync-barrier token (monotonic per connection).
    pub fn next_sync_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    // --- write coalescing -------------------------------------------

    /// Buffer a frame (buffered mode only — callers without a policy
    /// write frames directly). Returns `true` if a flush trigger fired:
    /// the driver should [`ClientConn::begin_flush`] now.
    pub fn buffer_frame(&mut self, frame: &[u8], now: Instant) -> bool {
        let Some(policy) = self.policy else {
            debug_assert!(false, "buffer_frame without a FlushPolicy");
            return false;
        };
        if self.wbuf.is_empty() {
            self.oldest_buffered = Some(now);
        }
        self.wbuf.extend_from_slice(frame);
        self.wbuf_frames += 1;
        self.wbuf.len() >= policy.max_bytes || self.flush_due(now)
    }

    /// Whether the deadline trigger has fired for the oldest buffered
    /// frame — callers with their own tick loop use this to decide when
    /// to flush during send lulls.
    pub fn flush_due(&self, now: Instant) -> bool {
        match (self.policy, self.oldest_buffered) {
            (Some(p), Some(t)) => now.duration_since(t) >= p.max_delay,
            _ => false,
        }
    }

    /// Anything buffered and unflushed?
    pub fn has_buffered(&self) -> bool {
        !self.wbuf.is_empty()
    }

    /// Frames currently sitting in the write buffer.
    pub fn buffered_frames(&self) -> u64 {
        self.wbuf_frames
    }

    /// Take the buffered frames for one coalesced write. `None` if the
    /// buffer is empty. The buffer is empty afterwards; report the
    /// write's outcome via [`ClientConn::finish_flush`].
    pub fn begin_flush(&mut self, now: Instant) -> Option<FlushBatch> {
        if self.wbuf.is_empty() {
            return None;
        }
        let deadline_hit = self.flush_due(now);
        let bytes = std::mem::take(&mut self.wbuf);
        let frames = self.wbuf_frames;
        self.wbuf_frames = 0;
        self.oldest_buffered = None;
        Some(FlushBatch {
            bytes,
            frames,
            deadline_hit,
        })
    }

    /// Count the outcome of a flush write and recycle the batch's
    /// allocation as the next write buffer.
    pub fn finish_flush(&mut self, batch: FlushBatch, ok: bool) {
        if ok {
            self.flushes += 1;
            if batch.deadline_hit {
                self.deadline_flushes += 1;
            }
        } else {
            self.dropped_frames += batch.frames;
        }
        if self.wbuf.is_empty() {
            let mut bytes = batch.bytes;
            bytes.clear();
            self.wbuf = bytes;
        }
    }

    /// The connection is down and staying down: discard the buffer,
    /// counting the loss (a dead manager costs the reports, never the
    /// sensor loop).
    pub fn drop_buffered(&mut self) -> u64 {
        let n = self.wbuf_frames;
        self.dropped_frames += n;
        self.wbuf.clear();
        self.wbuf_frames = 0;
        self.oldest_buffered = None;
        n
    }

    /// Completed flushes (buffered mode only).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Flushes forced by the deadline trigger rather than the size one.
    pub fn deadline_flushes(&self) -> u64 {
        self.deadline_flushes
    }

    /// Frames dropped because a flush failed or the buffer was
    /// discarded while disconnected.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn policy(max_bytes: usize, max_delay: Duration) -> FlushPolicy {
        FlushPolicy {
            max_bytes,
            max_delay,
        }
    }

    #[test]
    fn greeting_replays_on_every_reconnect() {
        let mut c = ClientConn::connected(&ReconnectPolicy::seeded(1));
        let now = Instant::now();
        assert_eq!(c.on_connected(now), None, "no greeting installed yet");
        c.set_greeting(vec![1, 2, 3]);
        c.on_disconnect(now);
        assert!(!c.is_connected());
        assert_eq!(c.on_connected(now), Some(vec![1, 2, 3]));
        c.on_disconnect(now);
        assert_eq!(c.on_connected(now), Some(vec![1, 2, 3]));
        assert_eq!(c.reconnects(), 3);
    }

    #[test]
    fn connect_due_respects_backoff_window() {
        let mut c = ClientConn::connected(&ReconnectPolicy::seeded(42));
        let t0 = Instant::now();
        c.on_disconnect(t0);
        assert!(!c.connect_due(t0), "must wait out the backoff delay");
        // The first delay is drawn from [base/2, base); base/1ms later
        // it must certainly be due.
        let base = ReconnectPolicy::default().base;
        assert!(c.connect_due(t0 + base));
        c.on_connect_failed(t0 + base);
        assert!(!c.connect_due(t0 + base), "failed dial re-arms the window");
    }

    #[test]
    fn size_trigger_fires_flush() {
        let mut c = ClientConn::connected(&ReconnectPolicy::seeded(1));
        c.set_flush_policy(Some(policy(8, Duration::from_secs(60))));
        let now = Instant::now();
        assert!(!c.buffer_frame(&[0u8; 4], now));
        assert!(c.buffer_frame(&[0u8; 4], now), "8 bytes reaches max_bytes");
        let batch = c.begin_flush(now).unwrap();
        assert_eq!(batch.frames(), 2);
        assert_eq!(batch.bytes().len(), 8);
        c.finish_flush(batch, true);
        assert_eq!(c.flushes(), 1);
        assert_eq!(c.deadline_flushes(), 0);
        assert_eq!(c.buffered_frames(), 0);
    }

    #[test]
    fn deadline_trigger_counts_separately() {
        let mut c = ClientConn::connected(&ReconnectPolicy::seeded(1));
        c.set_flush_policy(Some(policy(1 << 20, Duration::from_millis(5))));
        let t0 = Instant::now();
        assert!(!c.buffer_frame(&[1, 2], t0));
        assert!(!c.flush_due(t0));
        let later = t0 + Duration::from_millis(6);
        assert!(c.flush_due(later));
        let batch = c.begin_flush(later).unwrap();
        c.finish_flush(batch, true);
        assert_eq!(c.deadline_flushes(), 1);
    }

    #[test]
    fn failed_flush_and_drop_buffered_count_frames() {
        let mut c = ClientConn::connected(&ReconnectPolicy::seeded(1));
        c.set_flush_policy(Some(policy(1 << 20, Duration::from_secs(60))));
        let now = Instant::now();
        c.buffer_frame(&[1], now);
        c.buffer_frame(&[2], now);
        let batch = c.begin_flush(now).unwrap();
        c.finish_flush(batch, false);
        assert_eq!(c.dropped_frames(), 2);
        c.buffer_frame(&[3], now);
        assert_eq!(c.drop_buffered(), 1);
        assert_eq!(c.dropped_frames(), 3);
        assert!(!c.has_buffered());
    }

    #[test]
    fn sync_tokens_are_monotonic() {
        let mut c = ClientConn::connected(&ReconnectPolicy::seeded(1));
        assert_eq!(c.next_sync_token(), 1);
        assert_eq!(c.next_sync_token(), 2);
    }
}
