//! Batching under faults: coalesced report frames must survive split
//! writes, torn streams, and manager restarts without losing or
//! double-counting violations — and a batched run must produce exactly
//! the lifecycle chains an unbatched run does.
//!
//! These drive the real `LiveProcess` / `LiveHostManager` pair (threads
//! and sockets, no simulator) with the transport-layer chaos points
//! (`sock.write.split_batch`, `sock.write.tear`) armed deterministically
//! via `qos_buggify::force` — no background dice.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use qos_manager::prelude::*;
use qos_repository::prelude::Registration;
use qos_telemetry::{Stage, Telemetry};

fn registration(process: &str) -> Registration {
    Registration {
        process: process.into(),
        executable: "VideoApplication".into(),
        application: "VideoPlayback".into(),
        role: "*".into(),
    }
}

/// Drive the fps sensor below spec with manual timestamps (frames
/// 200 ms apart → 5 fps) and push every resulting report. Returns the
/// number of reports generated.
fn force_violation_reports(p: &mut LiveProcess) -> usize {
    let fps = p.sensors.fps().unwrap();
    let mut now = 0u64;
    let mut alarms = Vec::new();
    for _ in 0..20 {
        now += 200_000;
        alarms.extend(fps.frame_displayed(now));
    }
    let mut generated = 0;
    for a in &alarms {
        for pix in p.coordinator.on_alarm(a) {
            if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, now) {
                p.report(r);
                generated += 1;
            }
        }
    }
    generated
}

/// One re-notification round for the policies `force_violation_reports`
/// left in violation: advance the manual clock past the re-notify
/// interval and push the resulting reports. (The alarm path is
/// edge-triggered, so repeated rounds must come from `poll`, not from
/// replaying the same fps collapse.)
fn renotify_round(p: &mut LiveProcess, now_us: &mut u64) -> usize {
    *now_us += 60_000_000; // comfortably past any re-notify interval
    let mut generated = 0;
    for pix in p.coordinator.poll(*now_us) {
        if let Some(r) = p.coordinator.execute_actions(pix, &p.sensors, *now_us) {
            p.report(r);
            generated += 1;
        }
    }
    generated
}

fn temp_sock(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qos-batch-{}-{name}.sock", std::process::id()))
}

/// Every coalesced flush split in two by chaos: the peer's FrameBuffer
/// must reassemble across the write boundary, so nothing is lost and
/// nothing is counted twice.
#[test]
fn split_writes_deliver_every_batched_report_exactly_once() {
    if !qos_buggify::compiled_in() {
        return; // release / buggify-off build: no chaos points to arm
    }
    let path = temp_sock("split");
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .spawn()
        .expect("spawn socket manager");
    let addr = mgr.local_addr().expect("bound");

    let (repo, mut agent) = standard_live_repo();
    let sock = SocketTransport::builder(addr)
        .flush(FlushPolicy {
            max_bytes: 1 << 20, // flush only at the sync barrier
            max_delay: Duration::from_secs(60),
        })
        .connect_retry(Duration::from_secs(5))
        .unwrap();
    let mut p = LiveProcess::start(&registration("live:p1"), &repo, &mut agent, Box::new(sock))
        .expect("manager reachable");
    p.enable_report_batching(ReportBatchPolicy {
        max_msgs: 1024,
        max_delay: Duration::from_secs(60),
    });

    // Split every multi-byte write from here on.
    qos_buggify::force("sock.write.split_batch", 1_000);
    let generated = force_violation_reports(&mut p) as u64;
    assert!(generated >= 1);
    assert!(p.sync(), "sync barrier through split writes");
    qos_buggify::clear("sock.write.split_batch");

    assert_eq!(p.reports_sent(), generated);
    assert_eq!(p.reports_dropped(), 0);
    assert_eq!(mgr.stats.violations.load(Ordering::Relaxed), generated);
    assert_eq!(mgr.stats.decode_errors.load(Ordering::Relaxed), 0);
    assert!(mgr.stats.rules_fired.load(Ordering::Relaxed) >= 1);
    mgr.shutdown();
}

/// A torn write (process preempted mid-write, connection stays up)
/// corrupts the stream: the manager must drop the connection and count
/// it, the process must reconnect and re-register, and reports sent
/// after recovery must be counted exactly once.
#[test]
fn torn_batch_write_recovers_without_double_counting() {
    if !qos_buggify::compiled_in() {
        return;
    }
    let path = temp_sock("tear");
    let mgr = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .spawn()
        .expect("spawn socket manager");
    let addr = mgr.local_addr().expect("bound");

    let (repo, mut agent) = standard_live_repo();
    let sock = SocketTransport::builder(addr)
        .reconnect(ReconnectPolicy::seeded(7))
        .flush(FlushPolicy {
            max_bytes: 1 << 20,
            max_delay: Duration::from_secs(60),
        })
        .connect_retry(Duration::from_secs(5))
        .unwrap();
    let mut p = LiveProcess::start(&registration("live:p1"), &repo, &mut agent, Box::new(sock))
        .expect("manager reachable");
    p.enable_report_batching(ReportBatchPolicy {
        max_msgs: 1024,
        max_delay: Duration::from_secs(60),
    });

    // Exactly one torn write: the next coalesced flush loses its tail,
    // leaving a partial frame on the manager's stream. The flush
    // "succeeds" client-side (the tear models a crash the sender never
    // observes); the corruption only becomes visible to the manager once
    // later bytes land behind the torn frame and misalign the stream.
    qos_buggify::force("sock.write.tear", 1);
    let torn = force_violation_reports(&mut p) as u64;
    assert!(torn >= 1);
    let _ = p.sync();
    qos_buggify::clear("sock.write.tear");

    // Recovery: keep sending re-notification rounds — the first ones
    // complete the torn frame with garbage (decode error, possibly a
    // dropped connection), then the transport reconnects with the
    // greeting replayed and a round lands in full.
    let mut now_us = 4_000_000u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let before = mgr.stats.violations.load(Ordering::Relaxed);
        let round = renotify_round(&mut p, &mut now_us) as u64;
        assert!(round >= 1, "the fps policy must still be in violation");
        if p.sync() {
            let now = mgr.stats.violations.load(Ordering::Relaxed);
            if now == before + round {
                break;
            }
        }
        assert!(Instant::now() < deadline, "reconnect never recovered");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        mgr.stats.decode_errors.load(Ordering::Relaxed) >= 1,
        "the torn stream must be detected and counted"
    );
    // Idempotent re-registration after the greeting replay.
    assert_eq!(mgr.stats.registrations.load(Ordering::Relaxed), 1);
    // Ledger: everything the process thinks it sent or dropped accounts
    // for everything generated — nothing vanishes untracked.
    assert!(mgr.stats.violations.load(Ordering::Relaxed) <= p.reports_sent());
    mgr.shutdown();
}

/// Kill the manager mid-stream and restart it on the same socket path:
/// the buffered, batching process must reconnect, re-register once, and
/// the combined ledger (old manager + new manager + dropped) must cover
/// every generated report with none counted twice.
#[test]
fn manager_restart_preserves_the_batched_report_ledger() {
    let path = temp_sock("restart");
    let mgr1 = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path.clone())))
        .spawn()
        .expect("spawn socket manager");
    let addr = mgr1.local_addr().expect("bound");

    let (repo, mut agent) = standard_live_repo();
    let sock = SocketTransport::builder(addr.clone())
        .reconnect(ReconnectPolicy::seeded(11))
        .flush(FlushPolicy {
            max_bytes: 1 << 20,
            max_delay: Duration::from_secs(60),
        })
        .connect_retry(Duration::from_secs(5))
        .unwrap();
    let mut p = LiveProcess::start(&registration("live:p1"), &repo, &mut agent, Box::new(sock))
        .expect("manager reachable");
    p.enable_report_batching(ReportBatchPolicy {
        max_msgs: 1024,
        max_delay: Duration::from_secs(60),
    });

    let mut generated = force_violation_reports(&mut p) as u64;
    assert!(p.sync());
    let mgr1_violations = mgr1.stats.violations.load(Ordering::Relaxed);
    assert_eq!(mgr1_violations, generated);
    mgr1.shutdown();

    // Manager gone: the next flushes fail and count drops, not hangs.
    let mut now_us = 4_000_000u64;
    generated += renotify_round(&mut p, &mut now_us) as u64;
    let _ = p.sync();

    let mgr2 = LiveHostManager::builder()
        .listen(ListenSpec::Sock(SockAddr::Uds(path)))
        .spawn()
        .expect("respawn on the same path");
    // Reconnect happens inside try_send after backoff; keep generating
    // rounds until one lands in full on the new manager.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let before = mgr2.stats.violations.load(Ordering::Relaxed);
        let round = renotify_round(&mut p, &mut now_us) as u64;
        assert!(round >= 1, "the fps policy must still be in violation");
        generated += round;
        if p.sync() {
            let now = mgr2.stats.violations.load(Ordering::Relaxed);
            if now == before + round {
                break;
            }
        }
        assert!(Instant::now() < deadline, "restart recovery never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Greeting replay re-registers exactly once on the new manager.
    assert_eq!(mgr2.stats.registrations.load(Ordering::Relaxed), 1);
    // Client-side ledger is exact: every report was either sent or
    // knowingly dropped.
    assert_eq!(p.reports_sent() + p.reports_dropped(), generated);
    // Neither manager counted anything the process never sent.
    let counted = mgr1_violations + mgr2.stats.violations.load(Ordering::Relaxed);
    assert!(counted <= p.reports_sent(), "double-counted violations");
    mgr2.shutdown();
}

/// Lifecycle chains per correlation id for a run, as ordered stage
/// sequences (timestamps are wall-clock and excluded), sorted for
/// set-wise comparison.
fn run_lifecycles(batched: bool) -> (u64, u64, Vec<(String, Vec<Stage>)>) {
    let (repo, mut agent) = standard_live_repo();
    let t = Telemetry::enabled();
    let mgr = LiveHostManager::builder().telemetry(&t).spawn().unwrap();
    let mut p = LiveProcess::start(&registration("live:p1"), &repo, &mut agent, mgr.connect())
        .expect("manager running");
    if batched {
        p.enable_report_batching(ReportBatchPolicy {
            max_msgs: 1024,
            max_delay: Duration::from_secs(60),
        });
    }
    let generated = force_violation_reports(&mut p) as u64;
    assert!(generated >= 1);
    assert!(p.sync());
    assert!(mgr.sync());
    let violations = mgr.stats.violations.load(Ordering::Relaxed);
    let fired = mgr.stats.rules_fired.load(Ordering::Relaxed);
    let mut chains: Vec<(String, Vec<Stage>)> = t
        .lifecycles()
        .iter()
        .map(|lc| {
            (
                lc.policy.clone(),
                lc.stages.iter().map(|&(s, _)| s).collect(),
            )
        })
        .collect();
    chains.sort();
    mgr.shutdown();
    (violations, fired, chains)
}

/// The acceptance gate: a batched run is indistinguishable from an
/// unbatched one — same violations, same rule firings, same lifecycle
/// chains stage for stage.
#[test]
fn batched_and_unbatched_runs_produce_identical_lifecycles() {
    let unbatched = run_lifecycles(false);
    let batched = run_lifecycles(true);
    assert_eq!(unbatched.0, batched.0, "violation counts diverged");
    assert_eq!(unbatched.1, batched.1, "rule firings diverged");
    assert_eq!(unbatched.2, batched.2, "lifecycle chains diverged");
    if Telemetry::enabled().is_enabled() {
        assert!(!batched.2.is_empty(), "lifecycles must be observed");
    }
}
