//! Management-plane message types and well-known ports.
//!
//! Instrumented processes talk to their QoS Host Manager over local IPC;
//! host managers talk to the QoS Domain Manager over the network; the
//! Policy Agent handles registration. These are the payloads carried by
//! `qos_sim` messages.

use qos_policy::compile::CompiledPolicy;
use qos_sim::{Dur, HostId, Pid, Port};

/// Port the QoS Host Manager listens on (every managed host).
pub const HOST_MANAGER_PORT: Port = 10;
/// Port the QoS Domain Manager listens on (management host).
pub const DOMAIN_MANAGER_PORT: Port = 11;
/// Port the Policy Agent listens on (management host).
pub const POLICY_AGENT_PORT: Port = 12;

/// Nominal wire size of a small control message, bytes.
pub const CTRL_MSG_BYTES: u32 = 256;

/// A violation notification from a coordinator, with enough context for
/// the host manager's rules to judge "how close the policy is to being
/// satisfied".
#[derive(Debug, Clone)]
pub struct ViolationMsg {
    /// The violating process.
    pub pid: Pid,
    /// Process/executable name.
    pub proc_name: String,
    /// Violated policy name.
    pub policy: String,
    /// Telemetry correlation id of the violation episode (0 = none),
    /// propagated from the reporting coordinator so detection, diagnosis
    /// and adaptation share one causal chain.
    pub corr: u64,
    /// Attribute readings from the policy's sensor-read actions.
    pub readings: Vec<(String, f64)>,
    /// Requirement bounds on the primary attribute `(attr, lo, hi)`,
    /// extracted from the compiled policy's condition list.
    pub bounds: Option<(String, f64, f64)>,
    /// Where the process's stream originates, if it is a network client
    /// (lets diagnosis escalate to the right server).
    pub upstream: Option<Upstream>,
}

/// Identity of the remote peer feeding a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Upstream {
    /// Server host.
    pub host: HostId,
    /// Server process.
    pub pid: Pid,
}

/// Registration of a starting process with its host manager (the
/// prototype's "instrumented processes communicate with the QoS Host
/// Manager ... at the initialisation of the processes").
#[derive(Debug, Clone)]
pub struct RegisterMsg {
    /// The registering process.
    pub pid: Pid,
    /// Port the process accepts control messages (e.g. [`AdaptMsg`]) on.
    pub control_port: Port,
    /// Executable name.
    pub executable: String,
    /// Application name.
    pub application: String,
    /// User role for this session.
    pub role: String,
    /// Relative importance for differentiated administrative policies
    /// (1.0 = default).
    pub weight: f64,
    /// If set, the process promises to re-register at least this often;
    /// the host manager treats a registration as a liveness heartbeat
    /// and, after several missed periods, declares the process dead and
    /// reclaims everything granted to it. `None` opts out (one-shot
    /// registrants are never reaped on silence).
    pub heartbeat: Option<Dur>,
}

/// Policy-distribution request to the Policy Agent.
#[derive(Debug, Clone)]
pub struct AgentRequest {
    /// The registering process.
    pub pid: Pid,
    /// Port to deliver the resolution to.
    pub reply_port: Port,
    /// Registration details.
    pub registration: RegisterMsg,
}

/// Policies resolved by the Policy Agent for a process.
#[derive(Debug, Clone)]
pub struct AgentReply {
    /// Compiled policies for the coordinator.
    pub policies: Vec<CompiledPolicy>,
}

/// Host manager → domain manager: a violation this host cannot explain
/// locally (small communication buffer ⇒ remote or network cause).
#[derive(Debug, Clone)]
pub struct DomainAlertMsg {
    /// Host raising the alert.
    pub from_host: HostId,
    /// The violating client process.
    pub client: Pid,
    /// The stream's server side.
    pub upstream: Upstream,
    /// Observed primary metric (e.g. frames per second).
    pub observed: f64,
    /// Telemetry correlation id of the violation episode being escalated
    /// (0 = none).
    pub corr: u64,
}

/// Domain manager → host manager: report your host statistics.
#[derive(Debug, Clone, Copy)]
pub struct StatsQueryMsg {
    /// Where to send the [`StatsReplyMsg`].
    pub reply_to: qos_sim::Endpoint,
    /// Correlation id assigned by the querier.
    pub correlation: u64,
}

/// Host manager → domain manager: host statistics.
#[derive(Debug, Clone, Copy)]
pub struct StatsReplyMsg {
    /// Reporting host.
    pub host: HostId,
    /// 1-minute load average.
    pub load_avg: f64,
    /// Memory utilization, `[0, 1]`.
    pub mem_utilization: f64,
    /// Correlation id from the query.
    pub correlation: u64,
}

/// Domain manager → server-side host manager: raise the CPU allocation of
/// a named server process ("tell a QoS Host Manager on a server machine
/// to increase the CPU priority of the server process").
#[derive(Debug, Clone)]
pub struct AdjustRequestMsg {
    /// The process to boost.
    pub pid: Pid,
    /// Boost size in TS user-priority steps.
    pub steps: i16,
    /// Telemetry correlation id of the violation episode this adjustment
    /// serves (0 = none).
    pub corr: u64,
}

/// Manager → instrumented process: invoke an actuator (the Section 5.1
/// control path — used for the Section 10 "overload" extension where the
/// application adapts its behaviour because no resource allocation can
/// satisfy the requirement).
#[derive(Debug, Clone)]
pub struct AdaptMsg {
    /// The actuator to invoke.
    pub actuator: String,
    /// Command understood by the actuator.
    pub command: String,
    /// Numeric argument.
    pub value: f64,
}

/// Dynamic rule distribution: add/remove rules in a running manager
/// without recompilation (Section 9).
#[derive(Debug, Clone)]
pub struct RuleUpdateMsg {
    /// CLIPS-format rule text to add (may contain several `defrule`s).
    pub add: Option<String>,
    /// Rule names to remove.
    pub remove: Vec<String>,
}

/// CPU cost model for manager message handling (drives simulated manager
/// overhead).
pub const MANAGER_PROCESSING_COST: Dur = Dur::from_micros(400);

/// How often a heartbeat-promising client re-sends its [`RegisterMsg`].
/// Re-registration doubles as state repair: a restarted host manager
/// rebuilds its registry within one period.
pub const REGISTRATION_HEARTBEAT_PERIOD: Dur = Dur::from_secs(2);

/// How long the domain manager waits for a [`StatsReplyMsg`] before
/// diagnosing from partial information. Generous against LAN latencies
/// (a round trip is milliseconds) so only real loss or partitions
/// trigger it.
pub const STATS_QUERY_DEADLINE: Dur = Dur::from_millis(500);
