//! Management-plane message types and well-known ports.
//!
//! The types themselves now live in [`qos_wire::messages`] — one crate
//! owns both the structs and their byte layout — and are re-exported
//! here unchanged so existing `qos_manager::messages::*` imports keep
//! working.

pub use qos_wire::messages::{
    AdaptMsg, AdjustRequestMsg, AgentReply, AgentRequest, DomainAlertMsg, LiveRegisterMsg,
    LiveViolationMsg, RegisterMsg, RuleUpdateMsg, StatsQueryMsg, StatsReplyMsg, Upstream,
    ViolationMsg, CTRL_MSG_BYTES, DISCOVERY_LEASE, DISCOVERY_PORT, DOMAIN_MANAGER_PORT,
    HOST_MANAGER_PORT, MANAGER_PROCESSING_COST, POLICY_AGENT_PORT, REGISTRATION_HEARTBEAT_PERIOD,
    STATS_QUERY_DEADLINE,
};
pub use qos_wire::{BatchMsg, WireMsg};
