//! The Policy Agent as a running management process (Section 6.2 /
//! Figure 2): processes register with it over IPC at startup; it resolves
//! the applicable policies from the repository (scoped by executable,
//! application and user role) and ships the compiled policies back to the
//! process's coordinator.
//!
//! The repository service is co-located with the agent process here (the
//! prototype ran slapd beside the agent on the management host); the
//! query interface between them is the in-process `Repository` API.

use qos_repository::agent::{PolicyAgent, Registration};
use qos_repository::schema::Repository;
use qos_sim::prelude::*;

use crate::messages::{AgentReply, WireMsg, POLICY_AGENT_PORT};
use crate::transport::{decode_ctrl, send_ctrl};

/// CPU cost of handling one registration (directory search + parse +
/// compile — the measured E7 cost, rounded up for 2000-era hardware).
const REGISTRATION_COST: Dur = Dur::from_micros(300);

/// Counters for experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct AgentProcStats {
    /// Registration requests served.
    pub requests: u64,
    /// Policies delivered in total.
    pub delivered: u64,
    /// Stored policies that failed to parse/compile.
    pub errors: u64,
}

/// The Policy Agent process.
pub struct PolicyAgentProcess {
    repository: Repository,
    agent: PolicyAgent,
    /// Counters.
    pub stats: AgentProcStats,
}

impl PolicyAgentProcess {
    /// An agent process serving policies from `repository`.
    pub fn new(repository: Repository) -> Self {
        PolicyAgentProcess {
            repository,
            agent: PolicyAgent::new(),
            stats: AgentProcStats::default(),
        }
    }

    /// The repository being served (e.g. for run-time administration).
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Mutable repository access: the management application updates
    /// policies in place; later registrations see the new state.
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repository
    }
}

impl ProcessLogic for PolicyAgentProcess {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        if let ProcEvent::Readable(port) = ev {
            let Some(msg) = ctx.recv(port) else { return };
            let Ok(Some(WireMsg::AgentRequest(req))) = decode_ctrl(&msg) else {
                return;
            };
            self.stats.requests += 1;
            let resolution = self.agent.register(
                &self.repository,
                &Registration {
                    process: crate::host::pid_to_string(req.pid),
                    executable: req.registration.executable.clone(),
                    application: req.registration.application.clone(),
                    role: req.registration.role.clone(),
                },
            );
            self.stats.delivered += resolution.policies.len() as u64;
            self.stats.errors += resolution.errors.len() as u64;
            // Chaos: the reply evaporates in flight — the registering
            // process must survive starting with zero policies.
            if qos_buggify::buggify!("agent.reply.drop") {
                ctx.run(REGISTRATION_COST);
                return;
            }
            send_ctrl(
                ctx,
                Endpoint::new(req.pid.host, req.reply_port),
                POLICY_AGENT_PORT,
                WireMsg::AgentReply(AgentReply {
                    policies: resolution.policies,
                }),
            );
            ctx.run(REGISTRATION_COST);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_repository::schema::StoredPolicy;

    #[test]
    fn construction_and_repository_access() {
        let mut repo = Repository::new();
        repo.store_policy(&StoredPolicy {
            name: "P".into(),
            application: "A".into(),
            executable: "E".into(),
            role: "*".into(),
            source: "oblig P { subject s on not (m > 5) do s->read(out m); }".into(),
            enabled: true,
        })
        .unwrap();
        let mut ap = PolicyAgentProcess::new(repo);
        assert_eq!(ap.repository().policies().len(), 1);
        ap.repository_mut().delete_policy("P");
        assert_eq!(ap.repository().policies().len(), 0);
    }
}
