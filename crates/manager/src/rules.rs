//! Default rule sets for the QoS Host Manager and QoS Domain Manager, in
//! the dynamic CLIPS-style text format so they can be distributed,
//! replaced and extended at run time (Section 9: "it is very important to
//! be able to dynamically add or delete rules").
//!
//! ## Host-manager fact vocabulary
//!
//! * `(violation (pid "h0:p2") (fps F) (lo L) (hi H) (buffer B) (weight W)
//!   (has-upstream true|false))` — asserted per coordinator notification.
//! * `(mem-deficit (pid "h0:p2") (pages N))` — resident-set shortfall at
//!   notification time.
//! * `(threshold (name buffer-cutoff) (value 1000))` — the Example 5
//!   heuristic's cutoff.
//!
//! ## Host-manager commands
//!
//! * `adjust-cpu pid fps lo weight` — grow the CPU allocation.
//! * `relax-cpu pid` — shrink it (metric exceeded the upper bound).
//! * `notify-domain pid fps` — escalate: the cause is not local.
//! * `adjust-memory pid pages` — grow the resident set.

/// The buffer-occupancy cutoff distinguishing "client cannot keep up"
/// (local CPU cause) from "frames are not arriving" (remote/network
/// cause), in bytes.
pub const BUFFER_CUTOFF: f64 = 1000.0;

/// Base facts every host manager starts with.
pub fn host_base_facts() -> String {
    format!("(deffacts thresholds (threshold (name buffer-cutoff) (value {BUFFER_CUTOFF})))")
}

/// The Section 5.3 host-manager rule set, fair-share variant: every
/// process is adjusted with weight 1 regardless of its user, so under
/// contention all applications degrade equally.
pub fn host_rules_fair() -> String {
    host_rules_common("1")
}

/// Differentiated variant: the adjustment is scaled by the process's
/// administrative weight ("adjust the priority based on the user of the
/// video application"), so higher-priority users win under contention.
pub fn host_rules_differentiated() -> String {
    host_rules_common("?w")
}

fn host_rules_common(weight_term: &str) -> String {
    format!(
        r#"
; Large communication buffer: frames are arriving faster than the client
; processes them, so the client is starved of CPU (Section 5.3).
(defrule local-cpu-starvation
  (declare (salience 10))
  (violation (pid ?p) (fps ?f) (lo ?lo) (buffer ?b) (weight ?w))
  (threshold (name buffer-cutoff) (value ?bt))
  (test (< ?f ?lo))
  (test (> ?b ?bt))
  =>
  (call adjust-cpu ?p ?f ?lo {weight_term})
  (retract 0))

; Small buffer and a remote stream: the client keeps up with whatever
; arrives, so the cause is the server or the network -> escalate to the
; QoS Domain Manager (Example 5).
(defrule remote-cause
  (declare (salience 10))
  (violation (pid ?p) (fps ?f) (lo ?lo) (buffer ?b) (has-upstream true))
  (threshold (name buffer-cutoff) (value ?bt))
  (test (< ?f ?lo))
  (test (<= ?b ?bt))
  =>
  (call notify-domain ?p ?f)
  (retract 0))

; Small buffer but no remote stream to blame: fall back to a local CPU
; adjustment (a purely local application that simply is not being
; scheduled often enough also presents an empty queue).
(defrule local-fallback
  (violation (pid ?p) (fps ?f) (lo ?lo) (has-upstream false))
  (test (< ?f ?lo))
  =>
  (call adjust-cpu ?p ?f ?lo {weight_term})
  (retract 0))

; Response-time attributes invert the frame-rate sense: HIGH is bad.
; A slow instrumented server (web server, transaction processor) gets
; its allocation nudged up.
(defrule response-time-slow
  (declare (salience 22))
  (violation (pid ?p) (attr response_time) (fps ?v) (hi ?hi) (weight ?w))
  (test (> ?v ?hi))
  =>
  (call nudge-cpu ?p ?w)
  (retract 0))

; Above the upper bound: give resources back (Section 2's feedback loop
; runs in both directions).
(defrule over-achieving
  (declare (salience 20))
  (violation (pid ?p) (fps ?f) (hi ?hi))
  (test (> ?f ?hi))
  =>
  (call relax-cpu ?p ?f ?hi)
  (retract 0))

; Resident-set shortfall accompanies a violation: grow it via the memory
; resource manager. Independent of the CPU rules (consumes only the
; mem-deficit fact).
(defrule memory-shortfall
  (declare (salience 30))
  (mem-deficit (pid ?p) (pages ?n))
  (test (> ?n 0))
  =>
  (call adjust-memory ?p ?n)
  (retract 0))

; No specific diagnosis matched — e.g. a jitter-only violation whose
; frame rate sits inside the band. Count it and retract it: unmatched
; reports must never accumulate in working memory.
(defrule unhandled-violation
  (declare (salience -10))
  (violation (pid ?p))
  =>
  (call unhandled-violation ?p)
  (retract 0))
"#
    )
}

/// Proactive rules (the Section 10 "proactive QoS" extension): a policy
/// over a *leading indicator* (socket-buffer occupancy) violates while
/// the primary metric is still in specification; the manager nudges the
/// allocation up before the user-visible requirement breaks. Load
/// with [`crate::host::QosHostManager::load_rules`] — inert unless
/// trend-attribute violations arrive.
pub fn proactive_rules() -> &'static str {
    r#"
; The communication buffer is filling: the client is falling behind even
; though the frame rate has not left specification yet. Nudge now.
(defrule proactive-buffer-pressure
  (declare (salience 25))
  (violation (pid ?p) (attr buffer_size) (weight ?w))
  =>
  (call nudge-cpu ?p ?w)
  (retract 0))
"#
}

/// Overload rules (the Section 10 "overload conditions" extension): when
/// a violation persists although the CPU allocation is already at its
/// maximum, no resource adjustment can help — ask the application to
/// adapt its own behaviour through an actuator (Section 5.1), e.g. a
/// video player dropping to a cheaper quality level.
pub fn overload_rules() -> &'static str {
    r#"
(defrule overload-adapt-application
  (declare (salience 15))
  (violation (pid ?p) (fps ?f) (lo ?lo))
  (alloc (pid ?p) (boost ?b))
  (test (< ?f ?lo))
  (test (>= ?b 60))
  =>
  (call adapt-app ?p)
  (retract 0))
"#
}

/// Domain-manager fact vocabulary:
///
/// * `(alert (corr N) (client "h0:p2") (client-host 0) (server "h1:p0")
///   (server-host 1) (fps F))`
/// * `(server-stats (corr N) (load L) (mem M))` — reply to the stats
///   query the domain manager sends on every alert.
/// * `(stats-timeout (corr N))` — asserted instead when the query's
///   deadline fires with no reply.
/// * `(dthreshold (name server-load) (value 1.5))`,
///   `(dthreshold (name server-mem) (value 0.9))`
///
/// Commands: `boost-server pid host`, `boost-server-memory pid host`,
/// `reroute client-host server-host`.
pub fn domain_base_facts() -> &'static str {
    "(deffacts dthresholds
       (dthreshold (name server-load) (value 1.5))
       (dthreshold (name server-mem) (value 0.9)))"
}

/// The Section 5.3 domain-manager rule set: on an alert, ask the
/// server-side host manager for CPU load and memory usage; a high load
/// means the server process is starved (boost it); high memory means a
/// resident-set problem; otherwise the problem is the network — reroute
/// around the congested switch. A query that times out unanswered is
/// indistinguishable from a partition on the path, so it is treated as a
/// network problem too (`stats-timeout-reroute`).
pub fn domain_rules() -> &'static str {
    r#"
(defrule server-cpu-problem
  (declare (salience 10))
  (alert (corr ?c) (server ?s) (server-host ?sh))
  (server-stats (corr ?c) (load ?l))
  (dthreshold (name server-load) (value ?lt))
  (test (> ?l ?lt))
  =>
  (call boost-server ?s ?sh)
  (retract 0)
  (retract 1))

(defrule server-memory-problem
  (declare (salience 5))
  (alert (corr ?c) (server ?s) (server-host ?sh))
  (server-stats (corr ?c) (mem ?m))
  (dthreshold (name server-mem) (value ?mt))
  (test (> ?m ?mt))
  =>
  (call boost-server-memory ?s ?sh)
  (retract 0)
  (retract 1))

(defrule network-problem
  (alert (corr ?c) (client-host ?ch) (server-host ?sh))
  (server-stats (corr ?c) (load ?l) (mem ?m))
  (dthreshold (name server-load) (value ?lt))
  (dthreshold (name server-mem) (value ?mt))
  (test (<= ?l ?lt))
  (test (<= ?m ?mt))
  =>
  (call reroute ?ch ?sh)
  (retract 0)
  (retract 1))

(defrule stats-timeout-reroute
  (alert (corr ?c) (client-host ?ch) (server-host ?sh))
  (stats-timeout (corr ?c))
  =>
  (call reroute ?ch ?sh)
  (retract 0)
  (retract 1))
"#
}

#[cfg(test)]
mod tests {
    use qos_inference::prelude::*;

    fn engine_with(rules: &str, facts: &str) -> Engine {
        let mut e = Engine::new();
        for r in parse_program(rules).unwrap().rules {
            e.add_rule(r);
        }
        for f in parse_program(facts).unwrap().facts {
            e.assert_fact(f);
        }
        e
    }

    fn violation(pid: &str, fps: f64, buffer: f64, upstream: bool) -> Fact {
        Fact::new("violation")
            .with("pid", Value::str(pid))
            .with("fps", fps)
            .with("lo", 23.0)
            .with("hi", 27.0)
            .with("buffer", buffer)
            .with("weight", 2.0)
            .with("has-upstream", upstream)
    }

    #[test]
    fn big_buffer_is_local_cpu_cause() {
        let mut e = engine_with(&super::host_rules_fair(), &super::host_base_facts());
        e.assert_fact(violation("h0:p2", 15.0, 50_000.0, true));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "adjust-cpu");
        assert_eq!(inv[0].args[0], Value::Str("h0:p2".into()));
        // Fair variant pins weight to 1.
        assert_eq!(inv[0].args[3], Value::Int(1));
        // Violation consumed.
        assert_eq!(e.facts().by_template("violation").count(), 0);
    }

    #[test]
    fn differentiated_variant_passes_weight() {
        let mut e = engine_with(
            &super::host_rules_differentiated(),
            &super::host_base_facts(),
        );
        e.assert_fact(violation("h0:p2", 15.0, 50_000.0, true));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv[0].args[3], Value::Float(2.0));
    }

    #[test]
    fn small_buffer_with_upstream_escalates() {
        let mut e = engine_with(&super::host_rules_fair(), &super::host_base_facts());
        e.assert_fact(violation("h0:p2", 15.0, 100.0, true));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "notify-domain");
    }

    #[test]
    fn small_buffer_without_upstream_falls_back_to_cpu() {
        let mut e = engine_with(&super::host_rules_fair(), &super::host_base_facts());
        e.assert_fact(violation("h0:p2", 15.0, 100.0, false));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "adjust-cpu");
    }

    #[test]
    fn over_achievement_relaxes() {
        let mut e = engine_with(&super::host_rules_fair(), &super::host_base_facts());
        e.assert_fact(violation("h0:p2", 31.0, 100.0, true));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "relax-cpu");
    }

    #[test]
    fn jitter_only_violation_is_consumed_by_the_catch_all() {
        // Frame rate inside the band: no diagnosis rule matches (the
        // report came through the jitter leg), but the fact must still
        // be consumed so working memory cannot accumulate.
        let mut e = engine_with(&super::host_rules_fair(), &super::host_base_facts());
        e.assert_fact(violation("h0:p2", 25.0, 50_000.0, true));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "unhandled-violation");
        assert_eq!(e.facts().by_template("violation").count(), 0);
    }

    #[test]
    fn memory_rule_fires_alongside_cpu_rule() {
        let mut e = engine_with(&super::host_rules_fair(), &super::host_base_facts());
        e.assert_fact(violation("h0:p2", 15.0, 50_000.0, true));
        e.assert_fact(
            Fact::new("mem-deficit")
                .with("pid", Value::str("h0:p2"))
                .with("pages", 40),
        );
        e.run(100);
        let cmds: Vec<String> = e
            .take_invocations()
            .into_iter()
            .map(|i| i.command)
            .collect();
        assert!(cmds.contains(&"adjust-cpu".to_string()));
        assert!(cmds.contains(&"adjust-memory".to_string()));
    }

    fn alert(corr: i64) -> Fact {
        Fact::new("alert")
            .with("corr", corr)
            .with("client", Value::str("h0:p2"))
            .with("client-host", 0)
            .with("server", Value::str("h1:p0"))
            .with("server-host", 1)
            .with("fps", 12.0)
    }

    fn stats(corr: i64, load: f64, mem: f64) -> Fact {
        Fact::new("server-stats")
            .with("corr", corr)
            .with("load", load)
            .with("mem", mem)
    }

    #[test]
    fn domain_diagnoses_server_cpu() {
        let mut e = engine_with(super::domain_rules(), super::domain_base_facts());
        e.assert_fact(alert(1));
        e.assert_fact(stats(1, 6.0, 0.2));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "boost-server");
        assert_eq!(inv[0].args, vec![Value::Str("h1:p0".into()), Value::Int(1)]);
    }

    #[test]
    fn domain_diagnoses_server_memory() {
        let mut e = engine_with(super::domain_rules(), super::domain_base_facts());
        e.assert_fact(alert(2));
        e.assert_fact(stats(2, 0.5, 0.97));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv[0].command, "boost-server-memory");
    }

    #[test]
    fn domain_blames_network_by_elimination() {
        let mut e = engine_with(super::domain_rules(), super::domain_base_facts());
        e.assert_fact(alert(3));
        e.assert_fact(stats(3, 0.4, 0.2));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "reroute");
        assert_eq!(inv[0].args, vec![Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn domain_treats_stats_timeout_as_network_problem() {
        let mut e = engine_with(super::domain_rules(), super::domain_base_facts());
        e.assert_fact(alert(4));
        e.assert_fact(Fact::new("stats-timeout").with("corr", 4));
        e.run(100);
        let inv = e.take_invocations();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].command, "reroute");
        assert_eq!(inv[0].args, vec![Value::Int(0), Value::Int(1)]);
        assert_eq!(e.facts().by_template("alert").count(), 0, "alert consumed");
        assert_eq!(e.facts().by_template("stats-timeout").count(), 0);
    }

    /// The shipped rule sets, driven through a violation-storm scenario
    /// under both matchers: the incremental Rete-lite engine must fire
    /// exactly the sequence the naive full-rematch oracle fires.
    #[test]
    fn incremental_matcher_matches_naive_oracle_on_shipped_rules() {
        let scenario = |naive: bool| {
            let mut e = Engine::new();
            e.use_naive_matcher(naive);
            e.set_trace_capacity(4096);
            for r in parse_program(&super::host_rules_differentiated())
                .unwrap()
                .rules
            {
                e.add_rule(r);
            }
            for r in parse_program(super::overload_rules()).unwrap().rules {
                e.add_rule(r);
            }
            for r in parse_program(super::proactive_rules()).unwrap().rules {
                e.add_rule(r);
            }
            for f in parse_program(&super::host_base_facts()).unwrap().facts {
                e.assert_fact(f);
            }
            // Persistent per-process allocation facts (as the host
            // manager maintains them), then storms of mixed violations.
            for p in 0..8 {
                e.assert_fact(
                    Fact::new("alloc")
                        .with("pid", Value::str(format!("h0:p{p}")))
                        .with("boost", if p % 2 == 0 { 80 } else { 10 }),
                );
            }
            for round in 0..4u32 {
                for p in 0..8 {
                    let pid = format!("h0:p{p}");
                    let fps = match (p + round as usize) % 4 {
                        0 => 15.0, // below band
                        1 => 31.0, // above band
                        2 => 25.0, // inside band -> catch-all
                        _ => 12.0,
                    };
                    let buffer = if p % 3 == 0 { 50_000.0 } else { 100.0 };
                    e.assert_fact(violation(&pid, fps, buffer, p % 2 == 0));
                    if p == round as usize {
                        e.assert_fact(
                            Fact::new("mem-deficit")
                                .with("pid", Value::str(&pid))
                                .with("pages", 40),
                        );
                    }
                }
                e.run(200);
            }
            (
                e.take_trace(),
                e.take_invocations(),
                e.facts().len(),
                e.join_work_total(),
            )
        };
        let (naive_trace, naive_inv, naive_facts, naive_work) = scenario(true);
        let (rete_trace, rete_inv, rete_facts, rete_work) = scenario(false);
        assert_eq!(naive_trace, rete_trace, "identical firing sequences");
        assert_eq!(naive_inv, rete_inv, "identical command streams");
        assert_eq!(naive_facts, rete_facts);
        assert!(
            rete_work < naive_work,
            "incremental matching examines fewer candidates ({rete_work} vs {naive_work})"
        );
    }

    #[test]
    fn correlation_prevents_cross_matching() {
        let mut e = engine_with(super::domain_rules(), super::domain_base_facts());
        e.assert_fact(alert(1));
        e.assert_fact(stats(2, 6.0, 0.2)); // different correlation
        e.run(100);
        assert!(
            e.take_invocations().is_empty(),
            "mismatched corr must not fire"
        );
    }
}
