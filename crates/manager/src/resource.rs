//! Resource managers (Section 7): "a collection of resource managers that
//! each manage a single system resource" — CPU (time-sharing priorities or
//! real-time CPU units) and memory (resident pages).
//!
//! A resource manager is pure decision logic: it receives the context of a
//! violation and plans concrete kernel commands; the QoS Host Manager
//! issues them. This keeps the managers testable without a simulation.

use std::collections::HashMap;

use qos_sim::{Dur, Pid, PriocntlCmd, RtBudget, SchedClass};

/// Which way a metric missed its requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Below the lower bound: the process needs more resources.
    Under,
    /// Above the upper bound: the allocation can be reduced ("if it
    /// exceeds the specified expectation, the resource allocation is
    /// reduced", Section 2).
    Over,
}

/// How the CPU manager adjusts allocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuStrategy {
    /// Nudge the TS user priority up/down (the prototype's
    /// "manipulating time-sharing priorities").
    TsBoost {
        /// Base boost step per adjustment.
        step: i16,
        /// Upper bound on the cumulative boost.
        max_boost: i16,
    },
    /// Move the process into the RT class with a CPU budget
    /// ("allocating units of real-time CPU cycles"); each unit is
    /// `unit` CPU time per second, adjusted up/down by violations.
    RtUnits {
        /// RT priority level used.
        rtpri: u8,
        /// CPU time per unit per second.
        unit: Dur,
        /// Initial units on first adjustment.
        initial_units: u32,
        /// Maximum units.
        max_units: u32,
    },
}

/// Per-process CPU allocation state.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuAllocation {
    /// Current TS boost (TsBoost strategy).
    pub boost: i16,
    /// Current RT units (RtUnits strategy; 0 = still in TS).
    pub units: u32,
    /// Adjustments made.
    pub adjustments: u64,
    /// Consecutive over-achievement reports (drives patient relaxation).
    pub over_streak: u32,
}

/// Over-achievement below this severity is "close enough" to the
/// requirement that no reclamation happens (the paper's own prototype sat
/// steadily at 28 fps against a 27 fps upper bound — reclaiming for a
/// barely-exceeded bound buys nothing and destabilises the loop).
pub const RELAX_DEADBAND: f64 = 0.12;

/// The CPU resource manager.
#[derive(Debug)]
pub struct CpuManager {
    strategy: CpuStrategy,
    allocs: HashMap<Pid, CpuAllocation>,
    /// Consecutive over-achievement reports required before one
    /// relaxation step. Reclaiming resources is deliberately much slower
    /// than granting them: the scheduler's response to a boost is
    /// strongly non-linear (a small reduction can tip the process from
    /// fully served to starved), so eager reclamation oscillates deeply
    /// where the paper's prototype held a steady ~28 fps.
    relax_patience: u32,
}

impl CpuManager {
    /// Manager with the given strategy.
    pub fn new(strategy: CpuStrategy) -> Self {
        CpuManager {
            strategy,
            allocs: HashMap::new(),
            relax_patience: 3,
        }
    }

    /// The prototype's default: TS boosts of 10, capped at +60.
    pub fn ts_default() -> Self {
        CpuManager::new(CpuStrategy::TsBoost {
            step: 10,
            max_boost: 60,
        })
    }

    /// Change how many consecutive over-reports trigger one relaxation.
    pub fn set_relax_patience(&mut self, n: u32) {
        self.relax_patience = n.max(1);
    }

    /// Plan kernel commands for a violation of `severity` (0 = barely
    /// missed, 1 = missed by 100% of the target) in the given direction,
    /// scaled by the administrative `weight` of the process (1.0 under
    /// fair-share rules). "Additional rules are used to determine how
    /// much to increase CPU priority based on how close the policy is to
    /// being satisfied."
    pub fn plan(
        &mut self,
        pid: Pid,
        direction: Direction,
        severity: f64,
        weight: f64,
    ) -> Vec<PriocntlCmd> {
        // Barely-over readings are ignored entirely (dead band).
        if direction == Direction::Over && severity < RELAX_DEADBAND {
            return Vec::new();
        }
        let patience = self.relax_patience;
        let alloc = self.allocs.entry(pid).or_default();
        alloc.adjustments += 1;
        // Track over-achievement streaks; reclamation needs a sustained
        // streak, and any under-report resets it.
        let relax_now = match direction {
            Direction::Under => {
                alloc.over_streak = 0;
                false
            }
            Direction::Over => {
                alloc.over_streak += 1;
                if alloc.over_streak >= patience {
                    alloc.over_streak = 0;
                    true
                } else {
                    false
                }
            }
        };
        if direction == Direction::Over && !relax_now {
            return Vec::new();
        }
        match self.strategy {
            CpuStrategy::TsBoost { step, max_boost } => {
                let scale = (severity.clamp(0.0, 1.0) * 2.0).max(0.25) * weight.max(0.0);
                let delta = match direction {
                    Direction::Under => ((step as f64 * scale).round() as i16).max(1),
                    // Reductions scale with how far above the bound the
                    // metric sits, but stay gentler than increases so the
                    // loop settles instead of oscillating.
                    Direction::Over => {
                        -(1 + (step as f64 * severity.clamp(0.0, 1.0)).round() as i16)
                    }
                };
                // The full priocntl range: negative boosts push an
                // over-achieving interactive process below its competitors
                // (a floor at zero could never reclaim resources from a
                // process whose scheduler-side priority is already high).
                let new_boost = (alloc.boost + delta).clamp(-max_boost, max_boost);
                if new_boost == alloc.boost {
                    return Vec::new();
                }
                alloc.boost = new_boost;
                vec![PriocntlCmd::SetUpri(new_boost)]
            }
            CpuStrategy::RtUnits {
                rtpri,
                unit,
                initial_units,
                max_units,
            } => {
                let new_units = match direction {
                    Direction::Under => {
                        if alloc.units == 0 {
                            initial_units.max(1)
                        } else {
                            let grow = ((alloc.units as f64 * severity.clamp(0.1, 1.0)).ceil()
                                as u32)
                                .max(1);
                            (alloc.units + grow).min(max_units)
                        }
                    }
                    Direction::Over => alloc.units.saturating_sub(1),
                };
                if new_units == alloc.units {
                    return Vec::new();
                }
                alloc.units = new_units;
                if new_units == 0 {
                    vec![PriocntlCmd::SetClass(SchedClass::TimeShare)]
                } else {
                    vec![PriocntlCmd::SetClass(SchedClass::RealTime {
                        rtpri,
                        budget: Some(RtBudget {
                            per_window: Dur::from_micros(unit.as_micros() * new_units as u64),
                            window: Dur::from_secs(1),
                        }),
                    })]
                }
            }
        }
    }

    /// Current allocation of a process.
    pub fn allocation(&self, pid: Pid) -> CpuAllocation {
        self.allocs.get(&pid).copied().unwrap_or_default()
    }

    /// Forget a process (exit).
    pub fn release(&mut self, pid: Pid) {
        self.allocs.remove(&pid);
    }
}

/// The memory resource manager: plans resident-set adjustments.
#[derive(Debug, Default)]
pub struct MemoryManager {
    granted: HashMap<Pid, i64>,
}

impl MemoryManager {
    /// New manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan a resident-set change for a process missing `deficit_pages`
    /// of its working set (positive) or holding `-deficit_pages` of
    /// surplus (negative). Grants the full deficit; reclaims surplus
    /// conservatively (half at a time).
    pub fn plan(&mut self, pid: Pid, deficit_pages: i64) -> Option<i64> {
        let delta = if deficit_pages > 0 {
            deficit_pages
        } else if deficit_pages < 0 {
            deficit_pages / 2
        } else {
            return None;
        };
        *self.granted.entry(pid).or_default() += delta;
        Some(delta)
    }

    /// Net pages granted to a process so far.
    pub fn granted(&self, pid: Pid) -> i64 {
        self.granted.get(&pid).copied().unwrap_or(0)
    }

    /// Forget a process (exit): its resident-set grant is reclaimed by
    /// the pageout daemon, not by us, so just drop the book-keeping.
    pub fn release(&mut self, pid: Pid) {
        self.granted.remove(&pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_sim::HostId;

    fn pid(n: u32) -> Pid {
        Pid {
            host: HostId(0),
            local: n,
        }
    }

    #[test]
    fn ts_boost_grows_with_severity_and_caps() {
        let mut m = CpuManager::ts_default();
        let c1 = m.plan(pid(1), Direction::Under, 0.1, 1.0);
        assert_eq!(c1, vec![PriocntlCmd::SetUpri(3)], "mild miss, small step");
        let c2 = m.plan(pid(1), Direction::Under, 1.0, 1.0);
        assert_eq!(c2, vec![PriocntlCmd::SetUpri(23)], "severe miss, big step");
        for _ in 0..20 {
            m.plan(pid(1), Direction::Under, 1.0, 1.0);
        }
        assert_eq!(m.allocation(pid(1)).boost, 60, "capped at +60");
        assert!(
            m.plan(pid(1), Direction::Under, 1.0, 1.0).is_empty(),
            "no command when already at cap"
        );
    }

    #[test]
    fn ts_boost_reduces_when_over() {
        let mut m = CpuManager::ts_default();
        m.set_relax_patience(1);
        m.plan(pid(1), Direction::Under, 1.0, 1.0);
        let b = m.allocation(pid(1)).boost;
        m.plan(pid(1), Direction::Over, 1.0, 1.0);
        assert!(m.allocation(pid(1)).boost < b);
        // Bounded below by the priocntl floor.
        for _ in 0..200 {
            m.plan(pid(1), Direction::Over, 1.0, 1.0);
        }
        assert_eq!(m.allocation(pid(1)).boost, -60);
    }

    #[test]
    fn weight_scales_the_boost() {
        let mut m = CpuManager::ts_default();
        let fair = m.plan(pid(1), Direction::Under, 0.5, 1.0);
        let vip = m.plan(pid(2), Direction::Under, 0.5, 2.0);
        let (PriocntlCmd::SetUpri(a), PriocntlCmd::SetUpri(b)) = (fair[0], vip[0]) else {
            panic!("expected SetUpri");
        };
        assert!(b > a, "heavier weight, bigger boost: {a} vs {b}");
    }

    #[test]
    fn rt_units_enter_grow_and_leave() {
        let mut m = CpuManager::new(CpuStrategy::RtUnits {
            rtpri: 10,
            unit: Dur::from_millis(100),
            initial_units: 3,
            max_units: 8,
        });
        m.set_relax_patience(1);
        let c = m.plan(pid(1), Direction::Under, 1.0, 1.0);
        match c[0] {
            PriocntlCmd::SetClass(SchedClass::RealTime {
                rtpri: 10,
                budget: Some(b),
            }) => {
                assert_eq!(b.per_window, Dur::from_millis(300));
            }
            other => panic!("unexpected {other:?}"),
        }
        m.plan(pid(1), Direction::Under, 1.0, 1.0);
        assert_eq!(m.allocation(pid(1)).units, 6);
        for _ in 0..5 {
            m.plan(pid(1), Direction::Under, 1.0, 1.0);
        }
        assert_eq!(m.allocation(pid(1)).units, 8, "capped");
        // Shrink back to TS.
        for _ in 0..8 {
            m.plan(pid(1), Direction::Over, 1.0, 1.0);
        }
        assert_eq!(m.allocation(pid(1)).units, 0);
    }

    #[test]
    fn rt_exit_returns_to_timeshare() {
        let mut m = CpuManager::new(CpuStrategy::RtUnits {
            rtpri: 5,
            unit: Dur::from_millis(100),
            initial_units: 1,
            max_units: 4,
        });
        m.set_relax_patience(1);
        m.plan(pid(1), Direction::Under, 1.0, 1.0);
        let c = m.plan(pid(1), Direction::Over, 1.0, 1.0);
        assert_eq!(c, vec![PriocntlCmd::SetClass(SchedClass::TimeShare)]);
    }

    #[test]
    fn release_forgets_state() {
        let mut m = CpuManager::ts_default();
        m.plan(pid(1), Direction::Under, 1.0, 1.0);
        m.release(pid(1));
        assert_eq!(m.allocation(pid(1)).boost, 0);
    }

    #[test]
    fn relaxation_requires_sustained_over_achievement() {
        let mut m = CpuManager::ts_default(); // default patience: 3
        m.plan(pid(1), Direction::Under, 1.0, 1.0);
        // Two over-reports: nothing happens.
        for _ in 0..2 {
            assert!(m.plan(pid(1), Direction::Over, 1.0, 1.0).is_empty());
        }
        // An under-report resets the streak.
        m.plan(pid(1), Direction::Under, 0.0, 1.0);
        for _ in 0..2 {
            assert!(m.plan(pid(1), Direction::Over, 1.0, 1.0).is_empty());
        }
        // The third consecutive over-report finally relaxes.
        let pre_relax = m.allocation(pid(1)).boost;
        let cmds = m.plan(pid(1), Direction::Over, 1.0, 1.0);
        assert_eq!(cmds.len(), 1);
        assert!(m.allocation(pid(1)).boost < pre_relax);
    }

    #[test]
    fn memory_manager_grants_and_reclaims() {
        let mut m = MemoryManager::new();
        assert_eq!(m.plan(pid(1), 50), Some(50), "full deficit granted");
        assert_eq!(m.plan(pid(1), -20), Some(-10), "half the surplus reclaimed");
        assert_eq!(m.plan(pid(1), 0), None);
        assert_eq!(m.granted(pid(1)), 40);
        assert_eq!(m.granted(pid(9)), 0);
    }

    #[test]
    fn memory_release_forgets_the_grant() {
        let mut m = MemoryManager::new();
        m.plan(pid(1), 50);
        m.release(pid(1));
        assert_eq!(m.granted(pid(1)), 0);
        m.release(pid(1)); // idempotent
    }
}
